"""Wall-clock measurement helpers for the efficiency experiments (Table 14)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulates wall-clock time over repeated start/stop cycles.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.calls
    1
    """

    elapsed: float = 0.0
    calls: int = 0
    _started: float | None = field(default=None, repr=False)

    def start(self) -> None:
        """Begin a timing cycle."""
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        """Stop the current cycle; returns its duration in seconds."""
        if self._started is None:
            raise RuntimeError("stopwatch not running")
        delta = time.perf_counter() - self._started
        self._started = None
        self.elapsed += delta
        self.calls += 1
        return delta

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def mean_ms(self) -> float:
        """Mean time per call in milliseconds (0 if never called)."""
        if self.calls == 0:
            return 0.0
        return self.elapsed * 1000.0 / self.calls
