"""Deterministic random-number utilities.

Every stochastic component of the reproduction (world generation, corpus
noise, benchmark sampling) draws from a :class:`SeedStream` so that a single
top-level seed reproduces the entire pipeline bit-for-bit.  Sub-streams are
derived by name, which keeps modules order-independent: adding a new consumer
does not shift the randomness seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")

_MASK_64 = (1 << 64) - 1


def stable_hash(*parts: object) -> int:
    """Return a platform-stable 64-bit hash of ``parts``.

    Python's builtin ``hash`` is salted per process for strings, so it cannot
    seed reproducible RNGs.  This uses blake2b over the ``repr`` of each part.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "big") & _MASK_64


class SeedStream:
    """A named tree of deterministic :class:`random.Random` generators.

    >>> root = SeedStream(42)
    >>> a = root.substream("corpus").rng()
    >>> b = root.substream("corpus").rng()
    >>> a.random() == b.random()
    True
    """

    def __init__(self, seed: int, path: tuple[str, ...] = ()) -> None:
        self.seed = seed
        self.path = path

    def substream(self, name: str) -> "SeedStream":
        """Derive an independent child stream identified by ``name``."""
        return SeedStream(self.seed, self.path + (name,))

    def rng(self) -> random.Random:
        """Instantiate a fresh generator for this stream position."""
        return random.Random(stable_hash(self.seed, *self.path))

    # -- Convenience draws ------------------------------------------------

    def choice(self, seq: Sequence[T], salt: object = 0) -> T:
        """Pick one element of ``seq``; ``salt`` varies the draw."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        index = stable_hash(self.seed, *self.path, salt) % len(seq)
        return seq[index]

    def shuffled(self, seq: Sequence[T], salt: object = 0) -> list[T]:
        """Return a deterministically shuffled copy of ``seq``."""
        rng = random.Random(stable_hash(self.seed, *self.path, salt))
        out = list(seq)
        rng.shuffle(out)
        return out

    def ints(self, lo: int, hi: int, salt: object = 0) -> Iterator[int]:
        """Yield an endless stream of integers in ``[lo, hi]``."""
        rng = random.Random(stable_hash(self.seed, *self.path, salt))
        while True:
            yield rng.randint(lo, hi)
