"""Fixed-width table rendering for the benchmark harness.

Every experiment prints a table mirroring the paper's layout, typically with a
"paper" column next to a "measured" column.  The renderer is intentionally
dependency-free so benchmark output stays readable in plain pytest logs.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class Table:
    """A simple column-aligned text table.

    >>> t = Table(["system", "P"], title="demo")
    >>> t.add_row(["KBQA", 0.85])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo...
    """

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        """Append a row (must match the column count)."""
        row = [_format_cell(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """The table as column-aligned text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        """Print with surrounding blank lines so pytest -s output is legible."""
        print()
        print(self.render())
        print()


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value != int(value) else f"{value:.1f}"
    if value is None:
        return "-"
    return str(value)
