"""Small text-processing helpers shared by the NLP and corpus layers."""

from __future__ import annotations

import re
from typing import Iterator, Sequence

_WS_RE = re.compile(r"\s+")
_PUNCT_RE = re.compile(r"[?!.,;:'\"()\[\]]")


def normalize_space(text: str) -> str:
    """Collapse runs of whitespace and strip the ends."""
    return _WS_RE.sub(" ", text).strip()


def strip_punctuation(text: str) -> str:
    """Drop sentence punctuation (keeps hyphens and digits)."""
    return normalize_space(_PUNCT_RE.sub(" ", text))


def ngrams(tokens: Sequence[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield all contiguous ``n``-grams of ``tokens``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    for i in range(len(tokens) - n + 1):
        yield tuple(tokens[i : i + n])


def token_spans(tokens: Sequence[str], max_len: int | None = None) -> Iterator[tuple[int, int]]:
    """Yield ``(start, end)`` half-open index pairs for every contiguous span.

    Spans are produced shortest-first, matching the order the decomposition
    dynamic program consumes them in.
    """
    limit = len(tokens) if max_len is None else min(max_len, len(tokens))
    for length in range(1, limit + 1):
        for start in range(len(tokens) - length + 1):
            yield (start, start + length)


def join_tokens(tokens: Sequence[str]) -> str:
    """Inverse of whitespace tokenization used across the project."""
    return " ".join(tokens)
