"""Shared utilities: deterministic RNG streams, text helpers, timing, tables."""

from repro.utils.rng import SeedStream, stable_hash
from repro.utils.text import normalize_space, ngrams, token_spans
from repro.utils.timing import Stopwatch
from repro.utils.tables import Table

__all__ = [
    "SeedStream",
    "stable_hash",
    "normalize_space",
    "ngrams",
    "token_spans",
    "Stopwatch",
    "Table",
]
