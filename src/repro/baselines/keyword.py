"""Keyword-based QA baseline (Sec 1.2 category 2, e.g. Pythia [29]).

Maps question keywords directly onto knowledge-base predicate names: the
question answers if (a) an entity is found and (b) the tokens of some
predicate on the path to a value all appear in the question.  This answers
``what is the population of X?`` (token ``population`` names the predicate)
but — as the paper stresses — cannot answer ``how many people are there in
X?``, since no keyword matches.
"""

from __future__ import annotations

import re

from repro.core.kbview import KBView
from repro.core.online import AnswerResult, render_term
from repro.data.compile import CompiledKB
from repro.kb.paths import PredicatePath
from repro.nlp.ner import EntityRecognizer
from repro.nlp.tokenizer import tokenize

_CAMEL_RE = re.compile(r"[A-Z]?[a-z0-9]+")


def predicate_keywords(path: PredicatePath) -> frozenset[str]:
    """Tokens of a predicate path's first edge (camelCase / underscores split).

    The first edge names the relation; trailing ``name`` hops are plumbing.
    """
    head = path.predicates[0]
    words: set[str] = set()
    for part in head.replace("_", " ").split():
        words |= {w.lower() for w in _CAMEL_RE.findall(part)}
    return frozenset(w for w in words if len(w) > 2)


class KeywordQA:
    """Answers by entity detection + predicate-name keyword matching."""

    def __init__(self, kb: CompiledKB) -> None:
        self.kb = kb
        self.ner = EntityRecognizer(kb.gazetteer)
        self.kbview = KBView(kb.store)
        # Candidate paths are the schema paths (what a keyword system can
        # enumerate from the KB's predicate vocabulary).
        self._paths = [
            (path, predicate_keywords(path))
            for path in kb.path_for_intent.values()
            if predicate_keywords(path)
        ]

    def answer(self, question: str) -> AnswerResult:
        """Match question keywords against predicate names, then look up."""
        tokens = tuple(tokenize(question))
        token_set = set(tokens)
        mentions = self.ner.find_mentions(tokens)

        # Prefer the most specific (largest keyword set) matching predicate.
        matching = [
            (path, words) for path, words in self._paths if words <= token_set
        ]
        matching.sort(key=lambda pw: (-len(pw[1]), str(pw[0])))

        for mention in mentions:
            for entity in mention.candidates:
                for path, _words in matching:
                    values = self._values(entity, path)
                    if values:
                        rendered = tuple(sorted(render_term(v) for v in values))
                        return AnswerResult(
                            question=question, value=rendered[0], values=rendered,
                            score=1.0, entity=entity, template=None,
                            predicate=path, found_predicate=True,
                        )
        return AnswerResult(
            question=question, value=None, values=(), score=0.0, entity=None,
            template=None, predicate=None, found_predicate=bool(matching and mentions),
        )

    def _values(self, entity: str, path: PredicatePath) -> set[str]:
        from repro.kb.paths import follow

        if path.is_direct:
            return self.kb.store.objects(entity, path.predicates[0])
        return follow(self.kb.store, entity, path)
