"""Baseline QA systems the paper compares against (Sec 1.2, Sec 7).

* :class:`KeywordQA` — keyword matching against predicate names [29];
* :class:`RuleQA` — hand-written question patterns [23];
* :class:`SynonymQA` — DEANNA-like phrase-to-predicate mapping through a
  synonym lexicon with similarity scoring [33];
* :class:`BootstrapLearner` — BOA-pattern learning from declarative text
  (the coverage comparison of Table 12) [28, 14];
* :class:`HybridSystem` — KBQA first, baseline fallback (Table 11).

All QA baselines return the same :class:`repro.core.online.AnswerResult`
shape KBQA does, so one evaluation runner serves every system.
"""

from repro.baselines.keyword import KeywordQA
from repro.baselines.rule import RuleQA
from repro.baselines.synonym import SynonymQA, build_default_lexicon
from repro.baselines.bootstrapping import BootstrapLearner, BoaPattern
from repro.baselines.hybrid import HybridSystem

__all__ = [
    "KeywordQA",
    "RuleQA",
    "SynonymQA",
    "build_default_lexicon",
    "BootstrapLearner",
    "BoaPattern",
    "HybridSystem",
]
