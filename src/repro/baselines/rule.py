"""Rule-based QA baseline (Sec 1.2 category 1, Ou et al. [23]).

A handful of manually constructed question patterns, each mapping a property
phrase to a predicate by exact label match — e.g. ``what is the <xxx> of
<entity>?`` maps to the predicate labelled ``<xxx>``.  High precision, low
recall: anything outside the canned patterns is refused.
"""

from __future__ import annotations

import re

from repro.core.online import AnswerResult, render_term
from repro.data.compile import CompiledKB
from repro.data.world import SCHEMA_BY_INTENT
from repro.kb.paths import PredicatePath, follow
from repro.nlp.ner import EntityRecognizer

# Canned patterns; group 1 = property phrase, group 2 = entity phrase.
_PATTERNS = (
    re.compile(r"^what is the (.+?) of (.+?)\??$"),
    re.compile(r"^who is the (.+?) of (.+?)\??$"),
    re.compile(r"^what are the (.+?) of (.+?)\??$"),
    re.compile(r"^who are the (.+?) of (.+?)\??$"),
)


class RuleQA:
    """Answers only questions of the form ``wh- is the <label> of <entity>``."""

    def __init__(self, kb: CompiledKB) -> None:
        self.kb = kb
        self.ner = EntityRecognizer(kb.gazetteer)
        # property label -> path; labels come from the schema (the 'manually
        # constructed rules' the paper describes).
        self._label_to_path: dict[str, PredicatePath] = {}
        for intent, path in kb.path_for_intent.items():
            label = SCHEMA_BY_INTENT[intent].label
            self._label_to_path.setdefault(label, path)
            self._label_to_path.setdefault(intent.replace("_", " "), path)

    def answer(self, question: str) -> AnswerResult:
        """Apply the canned patterns; refuse anything off-pattern."""
        normalized = question.lower().strip()
        for pattern in _PATTERNS:
            match = pattern.match(normalized)
            if match is None:
                continue
            label, entity_text = match.group(1), match.group(2)
            path = self._label_to_path.get(label)
            if path is None:
                continue
            for entity in self.ner.lookup(entity_text):
                values = (
                    self.kb.store.objects(entity, path.predicates[0])
                    if path.is_direct
                    else follow(self.kb.store, entity, path)
                )
                if values:
                    rendered = tuple(sorted(render_term(v) for v in values))
                    return AnswerResult(
                        question=question, value=rendered[0], values=rendered,
                        score=1.0, entity=entity, template=None,
                        predicate=path, found_predicate=True,
                    )
            return AnswerResult(
                question=question, value=None, values=(), score=0.0,
                entity=None, template=None, predicate=path, found_predicate=True,
            )
        return AnswerResult(
            question=question, value=None, values=(), score=0.0, entity=None,
            template=None, predicate=None, found_predicate=False,
        )
