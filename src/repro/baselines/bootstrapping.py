"""Bootstrapping pattern learner (BOA-style, Gerber & Ngonga [14], Unger [28]).

The coverage comparison of Table 12 pits KBQA's template learning against
bootstrapping, which mines *BOA patterns* — the text between a subject
mention and an object mention in declarative sentences — and labels each
pattern with the KB predicate that connects the pair.

The learner here is faithful to that recipe: a pattern is recorded only when
a **direct** predicate connects the mentioned entity to the mentioned value,
because bootstrap systems align sentences against flat relation instances.
Consequently CVT-mediated and entity-valued relations (spouse, capital, ceo
— whose sentence objects are *names*, not directly connected literals) yield
nothing, reproducing the coverage gap the paper reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.extraction import ValueIndex
from repro.data.compile import CompiledKB
from repro.nlp.ner import EntityRecognizer
from repro.nlp.tokenizer import tokenize

MAX_PATTERN_GAP = 6  # max tokens between subject and object mentions


@dataclass(frozen=True, slots=True)
class BoaPattern:
    """A learned pattern: infix tokens + the predicate it signals."""

    infix: tuple[str, ...]
    predicate: str
    reversed_order: bool = False  # object appeared before subject


@dataclass
class BootstrapResult:
    patterns: set[BoaPattern] = field(default_factory=set)
    pattern_counts: Counter = field(default_factory=Counter)
    sentences_processed: int = 0
    sentences_matched: int = 0

    @property
    def n_patterns(self) -> int:
        return len(self.patterns)

    @property
    def predicates(self) -> set[str]:
        return {p.predicate for p in self.patterns}

    @property
    def n_predicates(self) -> int:
        return len(self.predicates)


class BootstrapLearner:
    """Mines BOA patterns from a sentence corpus against one KB."""

    def __init__(self, kb: CompiledKB) -> None:
        self.kb = kb
        self.ner = EntityRecognizer(kb.gazetteer)
        self.value_index = ValueIndex(kb.store)

    def learn(self, sentences: Iterable[str]) -> BootstrapResult:
        """Mine (infix, predicate) patterns from ``sentences``."""
        result = BootstrapResult()
        for sentence in sentences:
            result.sentences_processed += 1
            tokens = tokenize(sentence)
            mentions = self.ner.find_mentions(tokens)
            if not mentions:
                continue
            value_spans = self.value_index.find_value_spans(tokens)
            matched = False
            for mention in mentions:
                for v_start, v_end, value in value_spans:
                    if v_start < mention.end and mention.start < v_end:
                        continue  # overlapping spans
                    if v_start >= mention.end:
                        gap = tokens[mention.end : v_start]
                        reversed_order = False
                    else:
                        gap = tokens[v_end : mention.start]
                        reversed_order = True
                    if len(gap) > MAX_PATTERN_GAP:
                        continue
                    for entity in mention.candidates:
                        for predicate in self.kb.store.predicates_between(entity, value):
                            pattern = BoaPattern(tuple(gap), predicate, reversed_order)
                            result.patterns.add(pattern)
                            result.pattern_counts[pattern] += 1
                            matched = True
            if matched:
                result.sentences_matched += 1
        return result
