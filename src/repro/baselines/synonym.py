"""Synonym-based QA baseline — a DEANNA-like system (Yahya et al. [33]).

The pipeline mirrors the synonym-based category of Sec 1.2: extract
candidate phrases from the question, map each phrase to predicates through a
synonym lexicon (standing in for Wikipedia-derived semantic similarity),
apply type-coherence constraints (DEANNA's ILP does the same job), and
evaluate the best surviving (phrase, predicate) pair against the KB.

Designed-in limits, matching the paper's analysis:

* a phrase must be a *contiguous* token span — ``total number of people``
  maps to ``population``, but nothing contiguous in ``how many people are
  there in X?`` clears the similarity threshold, so exactly the paper's
  failure case a© fails here;
* the joint disambiguation scores every (phrase, predicate) pair, which is
  why this system is an order of magnitude slower than KBQA's template
  lookup (Table 14).
"""

from __future__ import annotations

from repro.core.online import AnswerResult, render_term
from repro.data.compile import CompiledKB
from repro.kb.paths import PredicatePath, follow
from repro.nlp.ner import EntityRecognizer
from repro.nlp.question_class import answer_types_compatible, classify_question
from repro.nlp.synonyms import SynonymLexicon, jaccard
from repro.nlp.tokenizer import tokenize

# Curated synonym phrases per intent: (phrase, association score).  Good but
# incomplete — the regime synonym systems actually operate in.
_INTENT_SYNONYMS: dict[str, tuple[tuple[str, float], ...]] = {
    "population": (("population", 1.0), ("number of people", 0.9),
                   ("total number of people", 0.95), ("inhabitants", 0.7),
                   ("residents", 0.7), ("people", 0.3)),
    "area": (("area", 1.0), ("size", 0.7), ("square kilometers", 0.6), ("large", 0.5)),
    "dob": (("date of birth", 1.0), ("birthday", 0.9), ("born", 0.75), ("birth", 0.6)),
    "pob": (("birthplace", 1.0), ("born in", 0.8), ("born", 0.7)),
    "residence": (("live", 0.8), ("lives", 0.8), ("living", 0.7)),
    "height": (("height", 1.0), ("tall", 0.8)),
    "elevation": (("elevation", 1.0), ("high", 0.6), ("height", 0.5), ("tall", 0.4)),
    "spouse": (("spouse", 1.0), ("wife", 0.9), ("husband", 0.9),
               ("married", 0.8), ("marry", 0.7)),
    "profession": (("profession", 1.0), ("occupation", 0.9), ("job", 0.8)),
    "instrument": (("instrument", 1.0),),
    "works_written": (("books", 0.7), ("write", 0.7), ("written", 0.6)),
    "mayor": (("mayor", 1.0),),
    "located_country": (("country", 0.9),),
    "founded": (("founded", 1.0), ("established", 0.9)),
    "capital": (("capital", 1.0), ("capital city", 1.0)),
    "currency": (("currency", 1.0), ("money", 0.6)),
    "language": (("language", 1.0), ("official language", 1.0), ("speak", 0.6)),
    "headquarters": (("headquarter", 1.0), ("headquartered", 0.9), ("head office", 0.8)),
    "ceo": (("ceo", 1.0), ("chief executive", 0.9)),
    "revenue": (("revenue", 1.0),),
    "employees": (("employees", 1.0), ("staff", 0.7)),
    "board_members": (("board members", 1.0), ("board", 0.8)),
    "river_length": (("length", 0.9), ("kilometers long", 0.8), ("long", 0.6)),
    "flows_through": (("flow through", 0.9), ("flow", 0.7), ("cross", 0.6)),
    "author": (("author", 1.0), ("writer", 0.9), ("written by", 0.9), ("wrote", 0.8)),
    "published": (("published", 1.0),),
    "pages": (("pages", 1.0),),
    "genre": (("genre", 1.0), ("kind of music", 0.7), ("style", 0.6)),
    "members": (("members", 1.0), ("lineup", 0.7)),
    "origin": (("formed in", 0.5),),
    "formed": (("formed", 0.9), ("form", 0.6), ("get together", 0.6), ("start", 0.5)),
    "songs": (("songs", 1.0), ("tracks", 0.7)),
    "director": (("director", 1.0), ("directed by", 0.95), ("directed", 0.9)),
    "release": (("released", 1.0), ("premiere", 0.8), ("come out", 0.7)),
    "runtime": (("runtime", 1.0), ("running time", 0.95), ("minutes", 0.5)),
    "students": (("students", 1.0), ("attend", 0.6)),
    "located_city": (("city", 0.5), ("located", 0.5)),
}


def build_default_lexicon(kb: CompiledKB) -> SynonymLexicon:
    """The lexicon a synonym system would derive for this KB's predicates."""
    lexicon = SynonymLexicon()
    for intent, entries in _INTENT_SYNONYMS.items():
        path = kb.path_for_intent.get(intent)
        if path is None:
            continue
        for phrase, score in entries:
            lexicon.add(str(path), phrase, score)
    return lexicon


class SynonymQA:
    """DEANNA-like answering over one compiled KB."""

    def __init__(
        self,
        kb: CompiledKB,
        lexicon: SynonymLexicon | None = None,
        threshold: float = 0.55,
    ) -> None:
        self.kb = kb
        self.lexicon = lexicon if lexicon is not None else build_default_lexicon(kb)
        self.threshold = threshold
        self.ner = EntityRecognizer(kb.gazetteer)
        self._max_phrase = max(self.lexicon.max_phrase_length(), 1)
        # Flat (path, synonym tokens, score) list: the similarity search space.
        self._entries: list[tuple[str, tuple[str, ...], float]] = []
        for path_key in self.lexicon.predicates():
            for phrase in self.lexicon.phrases_for_predicate(path_key):
                score = self.lexicon.predicates_for_phrase(phrase)[path_key]
                self._entries.append((path_key, phrase, score))

    def answer(self, question: str) -> AnswerResult:
        """Phrase extraction -> synonym/similarity scoring -> type filter ->
        KB evaluation, in DEANNA's pipeline order."""
        tokens = tuple(tokenize(question))
        mentions = self.ner.find_mentions(tokens)
        if not mentions:
            return self._refuse(question)
        question_type = classify_question(question)

        scored: list[tuple[float, str]] = []  # (score, path string)
        for phrase in self._candidate_phrases(tokens, mentions):
            # Direct lexicon hits.
            for path_key, assoc in self.lexicon.predicates_for_phrase(phrase).items():
                scored.append((assoc, path_key))
            # Similarity search over every (predicate, synonym) pair —
            # DEANNA's Wikipedia-similarity step, deliberately exhaustive.
            for path_key, syn_tokens, assoc in self._entries:
                similarity = jaccard(phrase, syn_tokens)
                if similarity > 0.0:
                    scored.append((similarity * assoc, path_key))

        candidates = [
            (score, path_key) for score, path_key in scored if score >= self.threshold
        ]
        # Type coherence: the predicate's answer category must fit the
        # question's expected type (the ILP constraint analogue).
        typed: list[tuple[float, str]] = []
        for score, path_key in candidates:
            path = PredicatePath.parse(path_key)
            if answer_types_compatible(question_type, self.kb.answer_type_for_path(path)):
                typed.append((score, path_key))
        typed.sort(key=lambda sc: (-sc[0], sc[1]))

        for score, path_key in typed:
            path = PredicatePath.parse(path_key)
            for mention in mentions:
                for entity in mention.candidates:
                    values = (
                        self.kb.store.objects(entity, path.predicates[0])
                        if path.is_direct
                        else follow(self.kb.store, entity, path)
                    )
                    if values:
                        rendered = tuple(sorted(render_term(v) for v in values))
                        return AnswerResult(
                            question=question, value=rendered[0], values=rendered,
                            score=score, entity=entity, template=None,
                            predicate=path, found_predicate=True,
                        )
        return self._refuse(question, found_predicate=bool(typed))

    def _candidate_phrases(self, tokens, mentions):
        """Contiguous n-grams outside entity mentions."""
        blocked = set()
        for mention in mentions:
            blocked.update(range(mention.start, mention.end))
        phrases = []
        n = len(tokens)
        for start in range(n):
            for end in range(start + 1, min(start + self._max_phrase, n) + 1):
                if any(i in blocked for i in range(start, end)):
                    continue
                phrases.append(tokens[start:end])
        return phrases

    @staticmethod
    def _refuse(question: str, found_predicate: bool = False) -> AnswerResult:
        return AnswerResult(
            question=question, value=None, values=(), score=0.0, entity=None,
            template=None, predicate=None, found_predicate=found_predicate,
        )
