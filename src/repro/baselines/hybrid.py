"""Hybrid QA composition (Sec 7.3.1, Table 11).

The paper shows KBQA lifts every baseline when composed as: feed the
question to KBQA first; if KBQA gives no reply (a likely non-BFQ or an
unlearned template), fall back to the baseline.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.online import AnswerResult


class AnswersQuestions(Protocol):
    """Anything that answers questions with an :class:`AnswerResult`."""

    def answer(self, question: str) -> AnswerResult: ...


class HybridSystem:
    """Primary system with a fallback — the paper's hybrid construction."""

    def __init__(self, primary: AnswersQuestions, fallback: AnswersQuestions) -> None:
        self.primary = primary
        self.fallback = fallback

    def answer(self, question: str) -> AnswerResult:
        """Primary's answer when it has one, the fallback's otherwise."""
        result = self.primary.answer(question)
        if result.answered:
            return result
        fallback_result = self.fallback.answer(question)
        if fallback_result.answered:
            return fallback_result
        # Neither side answered.  The fallback's result only wins when it
        # alone found a predicate (#pro accounting, Table 11); on a tie —
        # both found one or neither did — keep the primary's result, whose
        # diagnostics (entity, template, candidates) describe the system
        # under test, not the baseline.
        if result.found_predicate or not fallback_result.found_predicate:
            return result
        return fallback_result
