"""Deterministic hashed bag embeddings (the semantic fallback lane's vectors).

The fallback lane (``repro.core.fallback``) needs sentence vectors that are

* dependency-free — no model weights, no numpy requirement,
* deterministic across *processes* — serving snapshots pickle an index built
  in the trainer and score queries inside pool workers, so the same text must
  hash to the same vector everywhere (Python's builtin ``hash`` is salted per
  process and is therefore banned here; features hash through BLAKE2b),
* cheap — one pass over the tokens, a few hundred feature updates.

The construction is classic feature hashing (Weinberger et al.): each
feature string maps to a (bucket, sign) pair drawn from a keyed BLAKE2b
digest, weights accumulate into a fixed-width ``array('f')``, and the result
is L2-normalized so dot products are cosines.  Features are token unigrams,
token bigrams (word order), and boundary-padded character trigrams per token
(sub-word robustness: "founded"/"founder" share most trigrams).  The sign
trick keeps hash collisions unbiased in expectation.
"""

from __future__ import annotations

import math
from array import array
from hashlib import blake2b
from typing import Iterable, Sequence

DEFAULT_DIM = 256

# Relative weights of the three feature families.  Unigrams dominate
# (paraphrases mostly preserve content words), bigrams add word order, char
# trigrams add sub-word overlap for inflection/typo robustness.
_UNIGRAM_WEIGHT = 1.0
_BIGRAM_WEIGHT = 0.6
_TRIGRAM_WEIGHT = 0.3

# Tokens that carry no semantic signal for predicate matching; dropping them
# keeps "regarding X, any thoughts?"-style wrappers from diluting the cosine.
STOPWORDS = frozenset(
    "a an the of in on at to for by is are was were be been do does did "
    "'s ? $ and or".split()
)


def _bucket(feature: str, dim: int, seed: int) -> tuple[int, float]:
    """Map ``feature`` to a (bucket index, ±1 sign) pair, keyed by ``seed``."""
    digest = blake2b(
        feature.encode("utf-8"), digest_size=8, key=str(seed).encode("ascii")
    ).digest()
    value = int.from_bytes(digest, "big")
    return (value >> 1) % dim, 1.0 if value & 1 else -1.0


def _features(tokens: Sequence[str]) -> Iterable[tuple[str, float]]:
    """Yield (feature string, weight) pairs for one token sequence."""
    content = [t for t in tokens if t not in STOPWORDS]
    if not content:
        content = list(tokens)
    for token in content:
        yield "u:" + token, _UNIGRAM_WEIGHT
        padded = "^" + token + "$"
        if len(padded) >= 3:
            for i in range(len(padded) - 2):
                yield "c:" + padded[i : i + 3], _TRIGRAM_WEIGHT
    for left, right in zip(content, content[1:]):
        yield "b:" + left + " " + right, _BIGRAM_WEIGHT


def embed_tokens(
    tokens: Sequence[str], dim: int = DEFAULT_DIM, seed: int = 0
) -> array:
    """Embed a token sequence into a unit-normalized ``array('f')``.

    The zero sequence (no tokens at all) embeds to the zero vector, whose
    cosine against anything is 0.0 — it can never clear the fallback gate.
    """
    vec = array("f", bytes(4 * dim))
    for feature, weight in _features(tokens):
        index, sign = _bucket(feature, dim, seed)
        vec[index] += sign * weight
    return normalize(vec)


def accumulate(target: array, source: array, weight: float) -> None:
    """``target += weight * source`` in place (same-length float arrays)."""
    for i, value in enumerate(source):
        target[i] += weight * value


def normalize(vec: array) -> array:
    """L2-normalize ``vec`` in place (zero vectors pass through unchanged)."""
    norm = math.sqrt(math.fsum(v * v for v in vec))
    if norm > 0.0:
        inv = 1.0 / norm
        for i, value in enumerate(vec):
            vec[i] = value * inv
    return vec


def dot(a: array, b: array) -> float:
    """Plain dot product; cosine when both sides are unit-normalized."""
    return math.fsum(x * y for x, y in zip(a, b))
