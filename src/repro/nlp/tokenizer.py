"""Whitespace/punctuation tokenizer.

All layers of the pipeline (templates, pattern statistics, NER spans) agree
on this tokenization, so a token index computed anywhere is valid everywhere.
Questions are lowercased: the paper's templates are case-insensitive surface
forms.

Non-ASCII input is *folded*, not dropped: NFKC normalization rewrites
compatibility forms (fullwidth letters, ligatures), typographic punctuation
maps onto its ASCII equivalent (curly quotes -> ``'``, en/em-dash -> ``-``),
and combining diacritics are stripped ("São Paulo" -> "sao paulo",
"Zoë" -> "zoe").  Folding keeps the token class itself ASCII while making a
question and a gazetteer name that differ only typographically tokenize
identically; scripts with no ASCII fold (CJK, Cyrillic) still produce no
tokens, which downstream surfaces as an abstention rather than a wrong
answer.
"""

from __future__ import annotations

import re
import unicodedata

# Words and numbers (hyphens allowed inside); possessives split into their
# own token ("obama's" -> "obama", "'s"); sentence punctuation dropped except
# the question mark, which is part of template identity.
_TOKEN_RE = re.compile(r"[a-z0-9][a-z0-9\-]*|'s|\$[a-z_]+|[?$]")

# Typographic punctuation NFKC leaves alone, mapped to the ASCII form the
# token class understands.  (Fullwidth ？ etc. are already handled by NFKC.)
_PUNCT_FOLD = str.maketrans(
    {
        "’": "'",  # right single curly quote (apostrophe)
        "‘": "'",  # left single curly quote
        "‚": "'",  # single low quote
        "ʼ": "'",  # modifier letter apostrophe
        "“": '"',  # left double curly quote
        "”": '"',  # right double curly quote
        "„": '"',  # double low quote
        "‐": "-",  # hyphen
        "‑": "-",  # non-breaking hyphen
        "‒": "-",  # figure dash
        "–": "-",  # en dash
        "—": "-",  # em dash
        "−": "-",  # minus sign
        "…": " ",  # ellipsis
    }
)

_ASCII = re.compile(r"[\x00-\x7f]*\Z")


def _fold(text: str) -> str:
    """Fold ``text`` toward ASCII: punctuation map, NFKC, strip diacritics."""
    if _ASCII.match(text):
        return text
    text = unicodedata.normalize("NFKC", text.translate(_PUNCT_FOLD))
    decomposed = unicodedata.normalize("NFD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def tokenize(text: str) -> list[str]:
    """Lowercase and split ``text`` into tokens.

    >>> tokenize("When was Barack Obama's wife born?")
    ['when', 'was', 'barack', 'obama', "'s", 'wife', 'born', '?']
    """
    return _TOKEN_RE.findall(_fold(text).lower())


def detokenize(tokens: list[str]) -> str:
    """Best-effort inverse of :func:`tokenize` for display purposes."""
    text = " ".join(tokens)
    return text.replace(" 's", "'s").replace(" ?", "?")
