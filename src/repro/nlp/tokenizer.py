"""Whitespace/punctuation tokenizer.

All layers of the pipeline (templates, pattern statistics, NER spans) agree
on this tokenization, so a token index computed anywhere is valid everywhere.
Questions are lowercased: the paper's templates are case-insensitive surface
forms.
"""

from __future__ import annotations

import re

# Words and numbers (hyphens allowed inside); possessives split into their
# own token ("obama's" -> "obama", "'s"); sentence punctuation dropped except
# the question mark, which is part of template identity.
_TOKEN_RE = re.compile(r"[a-z0-9][a-z0-9\-]*|'s|\$[a-z_]+|[?$]")


def tokenize(text: str) -> list[str]:
    """Lowercase and split ``text`` into tokens.

    >>> tokenize("When was Barack Obama's wife born?")
    ['when', 'was', 'barack', 'obama', "'s", 'wife', 'born', '?']
    """
    return _TOKEN_RE.findall(text.lower().replace("’", "'"))


def detokenize(tokens: list[str]) -> str:
    """Best-effort inverse of :func:`tokenize` for display purposes."""
    text = " ".join(tokens)
    return text.replace(" 's", "'s").replace(" ?", "?")
