"""Predicate synonym lexicon for the synonym-based baseline (DEANNA-like).

Synonym-based systems (DEANNA, gAnswer; Sec 1.2) map question phrases to
predicates through a precomputed synonym list plus a surface-similarity
score.  This lexicon plays the role of their Wikipedia-derived similarity
resource: each predicate gets a handful of paraphrase phrases.  It is
deliberately *good but incomplete* — exactly the regime the paper analyses:
``what is the population of X`` resolves, ``how many people are there in X``
does not, because no contiguous phrase of the latter is a synonym of
``population``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence


class SynonymLexicon:
    """Maps phrases to predicates with an association score in (0, 1]."""

    def __init__(self) -> None:
        self._phrase_to_predicates: dict[tuple[str, ...], dict[str, float]] = defaultdict(dict)
        self._predicate_phrases: dict[str, set[tuple[str, ...]]] = defaultdict(set)

    def add(self, predicate: str, phrase: str, score: float = 1.0) -> None:
        """Associate ``phrase`` with ``predicate`` at the given strength."""
        if not 0.0 < score <= 1.0:
            raise ValueError(f"score must be in (0, 1], got {score}")
        tokens = tuple(phrase.lower().split())
        if not tokens:
            raise ValueError("empty synonym phrase")
        self._phrase_to_predicates[tokens][predicate] = max(
            score, self._phrase_to_predicates[tokens].get(predicate, 0.0)
        )
        self._predicate_phrases[predicate].add(tokens)

    def add_many(self, predicate: str, phrases: Iterable[str], score: float = 1.0) -> None:
        for phrase in phrases:
            self.add(predicate, phrase, score)

    def predicates_for_phrase(self, tokens: Sequence[str]) -> dict[str, float]:
        """Predicates associated with the exact phrase ``tokens``."""
        return dict(self._phrase_to_predicates.get(tuple(tokens), ()))

    def phrases_for_predicate(self, predicate: str) -> set[tuple[str, ...]]:
        return set(self._predicate_phrases.get(predicate, ()))

    def predicates(self) -> set[str]:
        return set(self._predicate_phrases)

    def max_phrase_length(self) -> int:
        if not self._phrase_to_predicates:
            return 0
        return max(len(p) for p in self._phrase_to_predicates)

    def __len__(self) -> int:
        """Number of (phrase, predicate) associations."""
        return sum(len(preds) for preds in self._phrase_to_predicates.values())


def jaccard(a: Sequence[str], b: Sequence[str]) -> float:
    """Token-set Jaccard similarity, the surface score synonym systems use."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 0.0
    return len(sa & sb) / len(sa | sb)
