"""Gazetteer-based named entity recognition and linking.

Stands in for Stanford NER (Sec 3.2): detects entity mentions in a token
sequence by longest-match lookup against the knowledge base's name
dictionary, and links each mention to the set of KB nodes carrying that name.
Ambiguity is preserved — a mention like ``apple`` links to both the company
and the fruit node, and downstream conceptualization disambiguates, exactly
as in the paper's pipeline.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.nlp.tokenizer import tokenize


@dataclass(frozen=True, slots=True)
class Mention:
    """An entity mention: token span [start, end) plus linked KB nodes."""

    start: int
    end: int
    surface: str
    candidates: tuple[str, ...]

    @property
    def length(self) -> int:
        return self.end - self.start


class EntityRecognizer:
    """Longest-match gazetteer matcher over KB entity names.

    >>> ner = EntityRecognizer({"barack obama": ["m.obama"], "obama": ["m.obama"]})
    >>> [m.surface for m in ner.find_mentions(tokenize("when was barack obama born?"))]
    ['barack obama']
    """

    def __init__(self, gazetteer: dict[str, Iterable[str]]) -> None:
        self._names: dict[tuple[str, ...], tuple[str, ...]] = {}
        by_first: dict[str, int] = defaultdict(int)
        for name, nodes in gazetteer.items():
            tokens = tuple(tokenize(name))
            if not tokens:
                continue
            self._names[tokens] = tuple(sorted(set(nodes)))
            by_first[tokens[0]] = max(by_first[tokens[0]], len(tokens))
        self._max_len_by_first = dict(by_first)

    def __len__(self) -> int:
        return len(self._names)

    def lookup(self, name: str) -> tuple[str, ...]:
        """Nodes whose name is exactly ``name`` (after tokenization)."""
        return self._names.get(tuple(tokenize(name)), ())

    def find_mentions(self, tokens: Sequence[str]) -> list[Mention]:
        """Greedy leftmost-longest scan for gazetteer matches.

        Overlapping matches are suppressed in favour of the longer, earlier
        one — mirroring how a chunking NER emits non-overlapping spans.
        """
        mentions: list[Mention] = []
        i = 0
        n = len(tokens)
        while i < n:
            longest = self._max_len_by_first.get(tokens[i], 0)
            match: Mention | None = None
            for length in range(min(longest, n - i), 0, -1):
                span = tuple(tokens[i : i + length])
                nodes = self._names.get(span)
                if nodes:
                    match = Mention(i, i + length, " ".join(span), nodes)
                    break
            if match is not None:
                mentions.append(match)
                i = match.end
            else:
                i += 1
        return mentions

    def find_all_spans(self, tokens: Sequence[str]) -> list[Mention]:
        """Every matching span, including overlapping ones.

        The decomposition statistics (Sec 5.2) need *all* valid entity spans,
        not a single segmentation, to count ``fv``.
        """
        mentions: list[Mention] = []
        n = len(tokens)
        for i in range(n):
            longest = self._max_len_by_first.get(tokens[i], 0)
            for length in range(1, min(longest, n - i) + 1):
                span = tuple(tokens[i : i + length])
                nodes = self._names.get(span)
                if nodes:
                    mentions.append(Mention(i, i + length, " ".join(span), nodes))
        return mentions
