"""NLP substrate: tokenization, gazetteer NER, UIUC question classification.

These replace the off-the-shelf components the paper relies on (Stanford NER,
the Li & Roth question classifier) with deterministic equivalents that
exercise the same interfaces.
"""

from repro.nlp.tokenizer import tokenize, detokenize
from repro.nlp.embed import embed_tokens, dot
from repro.nlp.ner import EntityRecognizer, Mention
from repro.nlp.question_class import AnswerType, classify_question
from repro.nlp.synonyms import SynonymLexicon

__all__ = [
    "tokenize",
    "detokenize",
    "embed_tokens",
    "dot",
    "EntityRecognizer",
    "Mention",
    "AnswerType",
    "classify_question",
    "SynonymLexicon",
]
