"""Question classification onto the UIUC answer-type taxonomy (Li & Roth).

The paper uses question classification only to *refine* extracted
entity-value pairs: the expected answer type of the question must agree with
the category of the candidate value's predicate (Sec 4.1.1).  This module
provides the coarse UIUC classes via deterministic wh-word + head-word rules,
the standard high-precision baseline for that taxonomy.
"""

from __future__ import annotations

from enum import Enum

from repro.nlp.tokenizer import tokenize


class AnswerType(Enum):
    """Coarse UIUC classes (DATE split out of NUM because the refinement
    step needs to distinguish birthdays from populations)."""

    HUMAN = "HUM"
    LOCATION = "LOC"
    NUMERIC = "NUM"
    DATE = "DATE"
    ENTITY = "ENTY"
    DESCRIPTION = "DESC"
    UNKNOWN = "UNK"


# Head nouns that force a class when they follow "what/which [is the]".
_HEAD_WORD_CLASSES = {
    "population": AnswerType.NUMERIC,
    "area": AnswerType.NUMERIC,
    "height": AnswerType.NUMERIC,
    "length": AnswerType.NUMERIC,
    "revenue": AnswerType.NUMERIC,
    "number": AnswerType.NUMERIC,
    "size": AnswerType.NUMERIC,
    "runtime": AnswerType.NUMERIC,
    "year": AnswerType.DATE,
    "date": AnswerType.DATE,
    "birthday": AnswerType.DATE,
    "city": AnswerType.LOCATION,
    "country": AnswerType.LOCATION,
    "capital": AnswerType.LOCATION,
    "place": AnswerType.LOCATION,
    "location": AnswerType.LOCATION,
    "headquarter": AnswerType.LOCATION,
    "headquarters": AnswerType.LOCATION,
    "river": AnswerType.LOCATION,
    "mountain": AnswerType.LOCATION,
    "wife": AnswerType.HUMAN,
    "husband": AnswerType.HUMAN,
    "spouse": AnswerType.HUMAN,
    "author": AnswerType.HUMAN,
    "ceo": AnswerType.HUMAN,
    "mayor": AnswerType.HUMAN,
    "director": AnswerType.HUMAN,
    "founder": AnswerType.HUMAN,
    "president": AnswerType.HUMAN,
    "members": AnswerType.HUMAN,
    "member": AnswerType.HUMAN,
    "currency": AnswerType.ENTITY,
    "language": AnswerType.ENTITY,
    "genre": AnswerType.ENTITY,
    "instrument": AnswerType.ENTITY,
    "name": AnswerType.ENTITY,
    "book": AnswerType.ENTITY,
    "books": AnswerType.ENTITY,
    "song": AnswerType.ENTITY,
    "songs": AnswerType.ENTITY,
}


def classify_question(question: str) -> AnswerType:
    """Classify ``question`` into a coarse UIUC answer type.

    >>> classify_question("When was Barack Obama born?")
    <AnswerType.DATE: 'DATE'>
    >>> classify_question("How many people are there in Honolulu?")
    <AnswerType.NUMERIC: 'NUM'>
    """
    tokens = tokenize(question)
    if not tokens:
        return AnswerType.UNKNOWN

    head = _first_head_word(tokens)

    first = tokens[0]
    if first == "when":
        return AnswerType.DATE
    if first in {"who", "whom", "whose"}:
        return AnswerType.HUMAN
    if first == "where":
        return AnswerType.LOCATION
    if first == "why":
        return AnswerType.DESCRIPTION
    if first == "how":
        if len(tokens) > 1 and tokens[1] in {"many", "much", "long", "tall", "big", "large", "high", "old"}:
            return AnswerType.NUMERIC
        return AnswerType.DESCRIPTION
    if first in {"what", "which", "list", "name", "give", "in", "on"}:
        if head is not None:
            return head
        return AnswerType.ENTITY
    if first in {"is", "are", "was", "were", "does", "do", "did"}:
        return AnswerType.DESCRIPTION  # boolean questions: not BFQs
    if head is not None:
        return head
    return AnswerType.UNKNOWN


def _first_head_word(tokens: list[str]) -> AnswerType | None:
    """First token with a known head-word class (skipping the wh-word)."""
    for token in tokens[1:]:
        cls = _HEAD_WORD_CLASSES.get(token)
        if cls is not None:
            return cls
    return None


def answer_types_compatible(question_type: AnswerType, value_type: AnswerType) -> bool:
    """Agreement test used by the EV refinement step (Sec 4.1.1).

    Unknown/DESC question types never veto a pair — the paper's filter only
    fires when both sides are confidently typed.  DATE is accepted where NUM
    is expected because UIUC folds dates under NUM at the coarse level.
    """
    if question_type in (AnswerType.UNKNOWN, AnswerType.DESCRIPTION):
        return True
    if value_type == AnswerType.UNKNOWN:
        return True
    if question_type == value_type:
        return True
    if question_type == AnswerType.NUMERIC and value_type == AnswerType.DATE:
        return True
    if question_type == AnswerType.ENTITY and value_type in (
        AnswerType.HUMAN,
        AnswerType.LOCATION,
    ):
        return True
    return False
