"""The learned template model: ``P(p|t)`` plus template frequencies.

This is the offline procedure's artifact (Figure 3): a distribution over
predicate paths for every learned template, with JSON persistence so a
trained model can be shipped and loaded without retraining.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.kb.paths import PredicatePath

MODEL_FORMAT_VERSION = 1


class TemplateModel:
    """``template text -> {path string -> probability}`` with support counts."""

    def __init__(self) -> None:
        self._theta: dict[str, dict[str, float]] = {}
        self._support: dict[str, float] = {}
        self.n_observations: int = 0

    # -- Construction ---------------------------------------------------------

    def set_distribution(
        self, template_text: str, distribution: dict[str, float], support: float = 0.0
    ) -> None:
        """Store (re-normalized) ``P(p|t)`` for one template."""
        if not distribution:
            raise ValueError(f"empty distribution for template {template_text!r}")
        total = sum(distribution.values())
        if total <= 0:
            raise ValueError(f"non-positive mass for template {template_text!r}")
        self._theta[template_text] = {
            path: prob / total for path, prob in distribution.items() if prob > 0
        }
        self._support[template_text] = support

    # -- Lookup ----------------------------------------------------------------

    def __contains__(self, template_text: str) -> bool:
        return template_text in self._theta

    def __len__(self) -> int:
        return len(self._theta)

    def predicates_for(self, template_text: str) -> dict[PredicatePath, float]:
        """``P(p|t)`` for a template (empty dict when the template is unknown)."""
        row = self._theta.get(template_text)
        if not row:
            return {}
        return {PredicatePath.parse(path): prob for path, prob in row.items()}

    def best_path(self, template_text: str) -> tuple[PredicatePath, float] | None:
        """The argmax predicate path and its probability (None if unknown)."""
        row = self._theta.get(template_text)
        if not row:
            return None
        path, prob = max(row.items(), key=lambda kv: (kv[1], kv[0]))
        return PredicatePath.parse(path), prob

    def support(self, template_text: str) -> float:
        return self._support.get(template_text, 0.0)

    def templates(self) -> Iterable[str]:
        return self._theta.keys()

    def top_templates(self, count: int) -> list[str]:
        """Templates ordered by observed frequency (Table 13's selection)."""
        ordered = sorted(self._theta, key=lambda t: (-self._support.get(t, 0.0), t))
        return ordered[:count]

    # -- Inventory statistics (Tables 12 and 16) ----------------------------------

    @property
    def n_templates(self) -> int:
        return len(self._theta)

    def distinct_paths(self) -> set[str]:
        """All predicate paths any template assigns mass to."""
        paths: set[str] = set()
        for row in self._theta.values():
            paths.update(row)
        return paths

    @property
    def n_predicates(self) -> int:
        return len(self.distinct_paths())

    def templates_per_predicate(self) -> float:
        """The n:1 coverage ratio reported in Table 12."""
        n_paths = self.n_predicates
        if n_paths == 0:
            return 0.0
        return self.n_templates / n_paths

    def stats_by_path_length(self) -> dict[int, dict[str, int]]:
        """Template/predicate counts grouped by the argmax path's length
        (the Table 16 breakdown: direct vs expanded predicates)."""
        by_length: dict[int, dict[str, set | int]] = {}
        for template in self._theta:
            best = self.best_path(template)
            if best is None:
                continue
            length = len(best[0])
            bucket = by_length.setdefault(length, {"templates": 0, "paths": set()})
            bucket["templates"] += 1
            bucket["paths"].add(str(best[0]))
        return {
            length: {"templates": bucket["templates"], "predicates": len(bucket["paths"])}
            for length, bucket in by_length.items()
        }

    def templates_for_path(self, path: PredicatePath, count: int | None = None) -> list[str]:
        """Templates whose argmax predicate is ``path``, by support
        (the Table 17 case study)."""
        key = str(path)
        matching = [
            t for t in self._theta
            if (best := self.best_path(t)) is not None and str(best[0]) == key
        ]
        matching.sort(key=lambda t: (-self._support.get(t, 0.0), t))
        return matching if count is None else matching[:count]

    # -- Persistence ---------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialize the model (versioned JSON)."""
        payload = {
            "format_version": MODEL_FORMAT_VERSION,
            "n_observations": self.n_observations,
            "templates": {
                template: {"support": self._support.get(template, 0.0), "theta": row}
                for template, row in self._theta.items()
            },
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, ensure_ascii=False)

    @classmethod
    def load(cls, path: str | Path) -> "TemplateModel":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        version = payload.get("format_version")
        if version != MODEL_FORMAT_VERSION:
            raise ValueError(f"unsupported model format version: {version}")
        model = cls()
        model.n_observations = payload.get("n_observations", 0)
        for template, entry in payload["templates"].items():
            model.set_distribution(template, entry["theta"], entry.get("support", 0.0))
        return model
