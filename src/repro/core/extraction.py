"""Entity-value extraction from QA pairs (Sec 4.1.1).

For each QA pair ``(q, a)`` we extract

    ``EV_i = {(e, v) | e ⊂ q, v ⊂ a, ∃p (e, p, v) ∈ K}``     (Eq 8)

— entity mentions in the question, value mentions in the answer, kept only
when some (possibly expanded) predicate connects them.  The *refinement*
step then filters pairs whose predicate category conflicts with the
question's expected answer type (the UIUC-classifier check that removes
``(obama, politician)`` from a birthday question — Example 2).

Each surviving pair becomes an :class:`Observation` ``x_i = (q_i, e_i, v_i)``
carrying ``P(e|q_i)`` (Eq 4) and the pruned candidate path set used by the
EM algorithm's M-step (Eq 24).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.kbview import KBView
from repro.kb.paths import PredicatePath
from repro.kb.backend import KBBackend
from repro.kb.triple import is_literal
from repro.nlp.ner import EntityRecognizer
from repro.nlp.question_class import (
    AnswerType,
    answer_types_compatible,
    classify_question,
)
from repro.nlp.tokenizer import tokenize


@dataclass(frozen=True, slots=True)
class Observation:
    """One extracted triple ``x_i = (q_i, e_i, v_i)`` with its context."""

    question_tokens: tuple[str, ...]
    mention_span: tuple[int, int]
    entity: str
    value: str  # literal term (with the quote prefix)
    entity_weight: float  # P(e|q_i), Eq 4
    paths: tuple[PredicatePath, ...]  # predicates connecting (e, v)


@dataclass(frozen=True, slots=True)
class ExtractionConfig:
    use_refinement: bool = True
    max_values_per_answer: int = 8
    max_mentions_per_question: int = 4


@dataclass
class ExtractionStats:
    """Counters reported by Table-6-style diagnostics and tests."""

    qa_pairs: int = 0
    pairs_with_mentions: int = 0
    candidate_ev: int = 0
    connected_ev: int = 0
    refined_ev: int = 0
    refinement_rejections: int = 0
    entity_candidates_total: int = 0


class ValueIndex:
    """Token-sequence index over every literal in the store.

    Candidate values in an answer are token spans matching a known literal
    (the paper looks values up 'in the knowledge base').  Longest-match scan,
    same convention as the entity gazetteer.
    """

    def __init__(self, store: KBBackend) -> None:
        self._by_tokens: dict[tuple[str, ...], str] = {}
        by_first: dict[str, int] = defaultdict(int)
        for term in store.dictionary.terms():
            if not is_literal(term):
                continue
            tokens = tuple(tokenize(term[1:]))
            if not tokens:
                continue
            self._by_tokens[tokens] = term
            by_first[tokens[0]] = max(by_first[tokens[0]], len(tokens))
        self._max_len_by_first = dict(by_first)

    def __len__(self) -> int:
        return len(self._by_tokens)

    def find_values(self, tokens: Sequence[str]) -> list[str]:
        """Literal terms appearing as token spans (longest-match, in order)."""
        seen: set[str] = set()
        values: list[str] = []
        for _start, _end, term in self.find_value_spans(tokens):
            if term not in seen:
                seen.add(term)
                values.append(term)
        return values

    def find_value_spans(self, tokens: Sequence[str]) -> list[tuple[int, int, str]]:
        """Longest-match value spans with positions (bootstrapping needs the
        offsets to cut BOA patterns between mentions)."""
        spans: list[tuple[int, int, str]] = []
        i, n = 0, len(tokens)
        while i < n:
            longest = self._max_len_by_first.get(tokens[i], 0)
            matched = 0
            for length in range(min(longest, n - i), 0, -1):
                term = self._by_tokens.get(tuple(tokens[i : i + length]))
                if term is not None:
                    spans.append((i, i + length, term))
                    matched = length
                    break
            i += matched if matched else 1
        return spans


def extract_observations(
    qa_pairs: Iterable[tuple[str, str]],
    kbview: KBView,
    ner: EntityRecognizer,
    value_index: ValueIndex,
    answer_type_of,
    config: ExtractionConfig | None = None,
) -> tuple[list[Observation], ExtractionStats]:
    """Run Eq 8 extraction + refinement over ``(question, answer)`` pairs.

    ``answer_type_of(path) -> AnswerType`` supplies the manually-labelled
    predicate categories of Sec 4.1.1.
    """
    config = config or ExtractionConfig()
    observations: list[Observation] = []
    stats = ExtractionStats()

    for question, answer in qa_pairs:
        stats.qa_pairs += 1
        q_tokens = tuple(tokenize(question))
        mentions = ner.find_mentions(q_tokens)[: config.max_mentions_per_question]
        if not mentions:
            continue
        stats.pairs_with_mentions += 1
        a_tokens = tokenize(answer)
        values = value_index.find_values(a_tokens)[: config.max_values_per_answer]
        if not values:
            continue
        question_type = classify_question(question) if config.use_refinement else AnswerType.UNKNOWN

        # Collect connected (mention, entity, value) triples first so that
        # P(e|q) can be normalized over the entities that survive (Eq 4).
        connected: list[tuple[tuple[int, int], str, str, tuple[PredicatePath, ...]]] = []
        for mention in mentions:
            stats.entity_candidates_total += len(mention.candidates)
            for entity in mention.candidates:
                for value in values:
                    stats.candidate_ev += 1
                    paths = kbview.paths_between(entity, value)
                    if not paths:
                        continue
                    stats.connected_ev += 1
                    if config.use_refinement:
                        paths = {
                            p for p in paths
                            if answer_types_compatible(question_type, answer_type_of(p))
                        }
                        if not paths:
                            stats.refinement_rejections += 1
                            continue
                    connected.append(
                        ((mention.start, mention.end), entity, value, tuple(sorted(paths, key=str)))
                    )

        if not connected:
            continue
        distinct_entities = {entity for _span, entity, _v, _p in connected}
        entity_weight = 1.0 / len(distinct_entities)
        for span, entity, value, paths in connected:
            stats.refined_ev += 1
            observations.append(Observation(
                question_tokens=q_tokens,
                mention_span=span,
                entity=entity,
                value=value,
                entity_weight=entity_weight,
                paths=paths,
            ))
    return observations, stats
