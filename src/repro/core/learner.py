"""The offline procedure (Figure 3, right column).

Pipeline: corpus questions -> seed entity collection -> predicate expansion
(Sec 6.2) -> entity-value extraction (Sec 4.1) -> candidate encoding with
``f(x, z)`` (Eq 19) -> EM (Sec 4.2) -> :class:`TemplateModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.em import EMConfig, EMResult, EncodedObservations, run_em
from repro.core.extraction import (
    ExtractionConfig,
    ExtractionStats,
    Observation,
    ValueIndex,
    extract_observations,
)
from repro.core.kbview import KBView
from repro.core.model import TemplateModel
from repro.core.template import Template
from repro.corpus.qa import QACorpus
from repro.data.compile import CompiledKB
from repro.kb.expansion import ExpandedStore, expand_predicates
from repro.nlp.ner import EntityRecognizer
from repro.nlp.tokenizer import tokenize
from repro.taxonomy.conceptualizer import Conceptualizer


@dataclass(frozen=True, slots=True)
class LearnerConfig:
    """Offline-procedure knobs; defaults follow the paper (k = 3, Sec 6.3).

    ``executor``/``workers`` select the execution backend for the Sec 6.2
    expansion scan (``serial``/``thread``/``process``); None defers to the
    ``KBQA_EXEC``/``KBQA_WORKERS`` environment and then to the historical
    default (thread fan-out on a sharded backend, serial otherwise).
    """

    max_path_length: int = 3
    use_expansion: bool = True
    use_refinement: bool = True
    max_concepts_per_mention: int = 4
    em: EMConfig = field(default_factory=EMConfig)
    executor: str | None = None
    workers: int | None = None


@dataclass
class LearnResult:
    """Everything the offline phase produces."""

    model: TemplateModel
    kbview: KBView
    ner: EntityRecognizer
    expanded: ExpandedStore | None
    em: EMResult
    extraction: ExtractionStats
    n_observations: int
    n_seed_entities: int
    seed_entities: frozenset[str] = frozenset()


@dataclass
class PreparedCorpus:
    """Everything the offline phase computes before EM runs.

    ``encoded`` is ``(EncodedObservations, template_names, path_names)`` —
    the flat candidate buffers EM consumes plus the id -> name tables used to
    decode θ into the :class:`TemplateModel`.
    """

    kbview: KBView
    ner: EntityRecognizer
    expanded: ExpandedStore | None
    extraction: ExtractionStats
    encoded: tuple[EncodedObservations, list[str], list[str]]
    n_observations: int
    n_seed_entities: int
    seed_entities: frozenset[str] = frozenset()


def collect_seed_entities(corpus: QACorpus, ner: EntityRecognizer) -> set[str]:
    """Entities mentioned in corpus questions — the BFS seed reduction of
    Sec 6.2 ('we only use subjects occurring in the questions').

    Module-level so the CLI's ``kbqa expand`` can materialize the same seed
    set the offline learner would use, without running the full pipeline.
    """
    seeds: set[str] = set()
    for question in corpus.questions():
        for mention in ner.find_mentions(tokenize(question)):
            seeds.update(mention.candidates)
    return seeds


class OfflineLearner:
    """Learns ``P(p|t)`` for one compiled knowledge base."""

    def __init__(
        self,
        kb: CompiledKB,
        conceptualizer: Conceptualizer,
        config: LearnerConfig | None = None,
        *,
        precomputed_expansion: ExpandedStore | None = None,
        exec_pool=None,
    ) -> None:
        self.kb = kb
        self.conceptualizer = conceptualizer
        self.config = config or LearnerConfig()
        # a persisted ExpandedStore (ExpandedStore.load) skips the Sec 6.2
        # scan entirely — offline training resumes from the saved artifact
        self.precomputed_expansion = precomputed_expansion
        # a persistent ExecutorPool (repro.exec.pool) for the expansion
        # scan: warm workers reused across calls, shard tables published
        # into shared memory once per KB generation.  KBQA.train wires the
        # pool it owns through here; without one, every call resolves its
        # own backend from config.executor (and starts a pool per call).
        self.exec_pool = exec_pool

    def learn(self, corpus: QACorpus) -> LearnResult:
        """Run the full offline pipeline over ``corpus``."""
        prepared = self.encode_corpus(corpus)
        encoded, template_names, path_names = prepared.encoded
        em_result = run_em(encoded, self.config.em)
        model = self._build_model(
            em_result, template_names, path_names, prepared.n_observations
        )

        return LearnResult(
            model=model,
            kbview=prepared.kbview,
            ner=prepared.ner,
            expanded=prepared.expanded,
            em=em_result,
            extraction=prepared.extraction,
            n_observations=prepared.n_observations,
            n_seed_entities=prepared.n_seed_entities,
            seed_entities=prepared.seed_entities,
        )

    def encode_corpus(self, corpus: QACorpus) -> "PreparedCorpus":
        """Run every offline stage up to (and including) candidate encoding.

        Split out from :meth:`learn` so the perf harness can time the EM
        stage in isolation on real encoded observations.
        """
        ner = EntityRecognizer(self.kb.gazetteer)
        seeds = self._collect_seed_entities(corpus, ner)

        expanded: ExpandedStore | None = None
        if self.config.use_expansion and self.config.max_path_length > 1:
            if self.precomputed_expansion is not None:
                expanded = self.precomputed_expansion
                if expanded.max_length != self.config.max_path_length:
                    raise ValueError(
                        f"precomputed expansion has max_length="
                        f"{expanded.max_length}, but the learner is configured "
                        f"for max_path_length={self.config.max_path_length} — "
                        "re-run `kbqa expand --save` with the matching k"
                    )
            else:
                expanded = expand_predicates(
                    self.kb.store,
                    seeds,
                    max_length=self.config.max_path_length,
                    executor=(
                        self.exec_pool
                        if self.exec_pool is not None
                        else self.config.executor
                    ),
                    workers=self.config.workers,
                )
        kbview = KBView(self.kb.store, expanded)

        value_index = ValueIndex(self.kb.store)
        observations, extraction_stats = extract_observations(
            ((pair.question, pair.answer) for pair in corpus),
            kbview,
            ner,
            value_index,
            answer_type_of=self.kb.answer_type_for_path,
            config=ExtractionConfig(use_refinement=self.config.use_refinement),
        )

        encoded = self._encode_candidates(observations, kbview)
        return PreparedCorpus(
            kbview=kbview,
            ner=ner,
            expanded=expanded,
            extraction=extraction_stats,
            encoded=encoded,
            n_observations=len(observations),
            n_seed_entities=len(seeds),
            seed_entities=frozenset(seeds),
        )

    # -- Stages -----------------------------------------------------------

    def _collect_seed_entities(self, corpus: QACorpus, ner: EntityRecognizer) -> set[str]:
        """Entities mentioned in corpus questions — the BFS seed reduction of
        Sec 6.2 ('we only use subjects occurring in the questions')."""
        return collect_seed_entities(corpus, ner)

    def _encode_candidates(
        self, observations: list[Observation], kbview: KBView
    ) -> tuple[EncodedObservations, list[str], list[str]]:
        """Expand each observation into (template, path, f) candidates.

        Candidates realize the pruned enumeration of Algorithm 1 line 7-8:
        templates from conceptualizing ``e_i`` in ``q_i`` (``P(t|e,q) > 0``),
        paths connecting ``(e_i, v_i)`` (``P(v|e,p) > 0``).  Candidates are
        appended straight into the flat CSR buffers of
        :class:`EncodedObservations` — EM never sees a nested python list.
        """
        template_ids: dict[str, int] = {}
        path_ids: dict[str, int] = {}
        template_names: list[str] = []
        path_names: list[str] = []
        encoded = EncodedObservations()

        for obs in observations:
            start, end = obs.mention_span
            context = obs.question_tokens[:start] + obs.question_tokens[end:]
            concept_distribution = self.conceptualizer.conceptualize(obs.entity, context)
            if not concept_distribution:
                continue
            top_concepts = sorted(
                concept_distribution.items(), key=lambda kv: (-kv[1], kv[0])
            )[: self.config.max_concepts_per_mention]

            for concept, concept_prob in top_concepts:
                template = Template.from_question(obs.question_tokens, obs.mention_span, concept)
                t_id = template_ids.setdefault(template.text, len(template_ids))
                if t_id == len(template_names):
                    template_names.append(template.text)
                for path in obs.paths:
                    value_prob = kbview.value_probability(obs.entity, path, obs.value)
                    f = obs.entity_weight * concept_prob * value_prob
                    if f <= 0.0:
                        continue
                    p_id = path_ids.setdefault(str(path), len(path_ids))
                    if p_id == len(path_names):
                        path_names.append(str(path))
                    encoded.append_candidate(t_id, p_id, f)
            if encoded.open_candidates:
                encoded.close_observation()
        return encoded, template_names, path_names

    @staticmethod
    def _build_model(
        em_result: EMResult,
        template_names: list[str],
        path_names: list[str],
        n_observations: int,
    ) -> TemplateModel:
        model = TemplateModel()
        model.n_observations = n_observations
        for template_id, row in em_result.theta.items():
            distribution = {
                path_names[path_id]: prob for path_id, prob in row.items() if prob > 0
            }
            if distribution:
                model.set_distribution(
                    template_names[template_id],
                    distribution,
                    support=em_result.template_support.get(template_id, 0.0),
                )
        return model
