"""Templates: the paper's question representation.

A template ``t = t(q, e, c)`` is a question with the mention of entity ``e``
replaced by one of its concepts ``c`` (Sec 2): ``when was barack obama
born?`` with ``barack obama -> $person`` becomes ``when was $person born?``.
The concept token keeps the ``$`` prefix, so a template's canonical string
form is self-describing and serves as its identity everywhere (EM parameter
keys, model persistence, online lookup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.nlp.tokenizer import tokenize
from repro.taxonomy.isa import is_concept


@dataclass(frozen=True, slots=True)
class Template:
    """An immutable template: tokens with one concept slot."""

    tokens: tuple[str, ...]
    slot: int

    def __post_init__(self) -> None:
        if not 0 <= self.slot < len(self.tokens):
            raise ValueError(f"slot {self.slot} out of range for {self.tokens}")
        if not is_concept(self.tokens[self.slot]):
            raise ValueError(f"slot token must be a concept: {self.tokens[self.slot]!r}")

    @classmethod
    def from_question(
        cls, tokens: Sequence[str], span: tuple[int, int], concept: str
    ) -> "Template":
        """Replace the mention at ``span`` (half-open) with ``concept``."""
        start, end = span
        if not (0 <= start < end <= len(tokens)):
            raise ValueError(f"bad span {span} for question of {len(tokens)} tokens")
        new_tokens = tuple(tokens[:start]) + (concept,) + tuple(tokens[end:])
        return cls(new_tokens, start)

    @classmethod
    def from_text(cls, text: str) -> "Template":
        """Parse a canonical template string (inverse of :attr:`text`)."""
        tokens = tuple(tokenize(text))
        for index, token in enumerate(tokens):
            if is_concept(token):
                return cls(tokens, index)
        raise ValueError(f"no concept slot in template text: {text!r}")

    @property
    def concept(self) -> str:
        return self.tokens[self.slot]

    @property
    def text(self) -> str:
        """Canonical string form — the template's identity."""
        return " ".join(self.tokens)

    def instantiate(self, entity_tokens: Sequence[str]) -> tuple[str, ...]:
        """Substitute an entity mention back into the slot."""
        return self.tokens[: self.slot] + tuple(entity_tokens) + self.tokens[self.slot + 1 :]

    def __str__(self) -> str:
        return self.text
