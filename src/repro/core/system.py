"""The KBQA system facade: train once, answer BFQs and complex questions.

Wires the offline procedure (learner), the online procedure (answerer) and
the decomposition machinery (Sec 5) into the two-call API a downstream user
needs: :meth:`KBQA.train` and :meth:`KBQA.answer` /
:meth:`KBQA.answer_complex`.

The facade is also where live KB updates come together: a trained system
subscribes to its backend's change stream, so :meth:`KBQA.add_fact` /
:meth:`KBQA.delete_fact` (or any direct backend mutation) flow through
per-seed expansion refresh (`repro.kb.live`) and answer-cache invalidation —
answers reflect the edit with no retraining and no full re-expansion.
Training can also resume from a persisted expansion
(``KBQA.train(..., expanded=ExpandedStore.load(path))``), skipping the
Sec 6.2 scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.core.decompose import (
    ENTITY_VARIABLE,
    Decomposer,
    Decomposition,
    PatternStatistics,
)
from repro.core.fallback import (
    DEFAULT_MARGIN,
    DEFAULT_THRESHOLD,
    FallbackConfig,
    FallbackIndex,
)
from repro.core.learner import LearnerConfig, LearnResult, OfflineLearner
from repro.core.online import AnswerResult, OnlineAnswerer
from repro.corpus.qa import QACorpus
from repro.data.compile import CompiledKB
from repro.exec.pool import ExecutorPool
from repro.kb.expansion import ExpandedStore
from repro.kb.live import LiveExpansionMaintainer
from repro.taxonomy.conceptualizer import Conceptualizer


def _default_pool(kb: CompiledKB, config: "KBQAConfig") -> ExecutorPool:
    """The system-owned execution pool, resolved like the per-call default:
    explicit learner config > ``KBQA_EXEC`` env > thread fan-out on a
    sharded backend / serial otherwise."""
    return ExecutorPool(
        config.learner.executor,
        config.learner.workers,
        default="thread" if kb.store.n_shards > 1 else "serial",
    )


@dataclass(frozen=True, slots=True)
class KBQAConfig:
    """End-to-end configuration (learner + decomposition + online).

    ``answer_cache_size`` bounds the online answer cache keyed on normalized
    question text (0 disables it); ``lookup_cache_size`` bounds the
    NER/conceptualizer memoization LRUs of the serving layer.

    ``fallback`` enables the semantic fallback lane (an embedding index over
    the learned predicate paths, consulted only when Eq 7 abstains);
    ``fallback_threshold`` / ``fallback_margin`` set its confidence gate.
    """

    learner: LearnerConfig = field(default_factory=LearnerConfig)
    max_concepts_online: int = 4
    pattern_max_questions: int | None = 25_000
    pattern_max_tokens: int = 23
    answer_cache_size: int = 2048
    lookup_cache_size: int = 8192
    fallback: bool = False
    fallback_threshold: float = DEFAULT_THRESHOLD
    fallback_margin: float = DEFAULT_MARGIN


@dataclass(frozen=True, slots=True)
class ComplexAnswer:
    """Result of answering a (possibly) complex question."""

    question: str
    decomposition: Decomposition
    steps: tuple[AnswerResult, ...]
    final: AnswerResult | None

    @property
    def answered(self) -> bool:
        return self.final is not None and self.final.answered

    @property
    def value(self) -> str | None:
        return self.final.value if self.final else None

    @property
    def values(self) -> tuple[str, ...]:
        return self.final.values if self.final else ()


class KBQA:
    """A trained KBQA instance over one compiled knowledge base."""

    def __init__(
        self,
        kb: CompiledKB,
        conceptualizer: Conceptualizer,
        learn_result: LearnResult,
        pattern_statistics: PatternStatistics,
        config: KBQAConfig,
        exec_pool: ExecutorPool | None = None,
        fallback_index: FallbackIndex | None = None,
    ) -> None:
        self.kb = kb
        self.conceptualizer = conceptualizer
        self.learn_result = learn_result
        self.config = config
        self.model = learn_result.model
        # The system-owned persistent executor pool: repeated expansions
        # (training, refreshes, benchmarks) reuse its warm workers and its
        # shared-memory shard-table publish instead of paying pool start +
        # table shipping per call; KB mutations invalidate the publish.
        self.exec_pool = exec_pool if exec_pool is not None else _default_pool(kb, config)
        self.answerer = OnlineAnswerer(
            learn_result.kbview,
            learn_result.ner,
            conceptualizer,
            learn_result.model,
            max_concepts=config.max_concepts_online,
            answer_cache_size=config.answer_cache_size,
            lookup_cache_size=config.lookup_cache_size,
            fallback=fallback_index,
        )
        self.decomposer = Decomposer(
            pattern_statistics,
            learn_result.ner,
            learn_result.model,
            conceptualizer,
            max_concepts=config.max_concepts_online,
        )
        # Live-update wiring: any backend mutation invalidates the answer
        # cache, and (when an expansion exists) refreshes exactly the
        # affected seeds instead of re-running the Sec 6.2 scan.
        self.maintainer: LiveExpansionMaintainer | None = None
        if learn_result.expanded is not None:
            self.maintainer = LiveExpansionMaintainer(
                kb.store,
                learn_result.expanded,
                learn_result.seed_entities,
            )
        self._kb_unsubscribe = kb.store.subscribe(self._on_kb_change, self._on_kb_changes)

    # -- Training -------------------------------------------------------------

    @classmethod
    def train(
        cls,
        kb: CompiledKB,
        corpus: QACorpus,
        conceptualizer: Conceptualizer,
        config: KBQAConfig | None = None,
        *,
        expanded: ExpandedStore | None = None,
    ) -> "KBQA":
        """Run the full offline procedure of Figure 3 and return the system.

        Pass ``expanded`` (typically ``ExpandedStore.load(path)``) to resume
        from a persisted predicate expansion: the learner then skips the
        Sec 6.2 scan and trains directly against the loaded store.
        """
        config = config or KBQAConfig()
        pool = _default_pool(kb, config)
        learner = OfflineLearner(
            kb,
            conceptualizer,
            config.learner,
            precomputed_expansion=expanded,
            exec_pool=pool,
        )
        try:
            learn_result = learner.learn(corpus)
        finally:
            # training's expansion burst is over (or failed): join the warm
            # workers so neither an idle trained system nor an aborted
            # training leaves processes or shared-memory segments behind
            # (the pool re-warms lazily for any later burst of expansions)
            pool.release()
        statistics = PatternStatistics.from_corpus(
            corpus.questions(),
            learn_result.ner,
            max_questions=config.pattern_max_questions,
            max_tokens=config.pattern_max_tokens,
        )
        # Build the semantic fallback index at the quiesce point: training's
        # expansion burst is over (workers joined above) and the model is
        # final, so the index sees exactly the θ the answerer will serve.
        fallback_index: FallbackIndex | None = None
        if config.fallback:
            fallback_index = FallbackIndex.build(
                learn_result.model,
                FallbackConfig(
                    threshold=config.fallback_threshold,
                    margin=config.fallback_margin,
                ),
            )
        return cls(
            kb, conceptualizer, learn_result, statistics, config,
            exec_pool=pool, fallback_index=fallback_index,
        )

    # -- Answering ---------------------------------------------------------------

    @property
    def fallback_enabled(self) -> bool:
        """Whether the semantic fallback lane is wired into the answerer."""
        return self.answerer.fallback_enabled

    def answer(self, question: str) -> AnswerResult:
        """Answer a binary factoid question (Sec 3.3)."""
        return self.answerer.answer(question)

    def answer_many(self, questions: Sequence[str]) -> list[AnswerResult]:
        """Batch-answer BFQs through the serving caches (input order kept;
        results identical to per-question :meth:`answer`)."""
        return self.answerer.answer_many(questions)

    # -- Live KB updates -------------------------------------------------------

    def _on_kb_change(self, _change) -> None:
        """Backend change listener: a mutated KB can invalidate any cached
        answer (the subscription order puts the expansion maintainer first,
        so the expanded store is already refreshed when this fires), and the
        pool's published shard tables no longer match the indexes."""
        self.answerer.clear_caches()
        self.exec_pool.invalidate()

    def _on_kb_changes(self, _changes) -> None:
        """Coalesced form for a ``batch()`` burst: one cache drop (and one
        payload invalidation) per burst instead of one per change."""
        self.answerer.clear_caches()
        self.exec_pool.invalidate()

    def batch(self):
        """Deferred-notification context for bulk edits.

        ``with system.batch(): ...`` applies every :meth:`add_fact` /
        :meth:`delete_fact` inside the block immediately, but coalesces the
        downstream maintenance: the expansion maintainer refreshes each
        affected seed once for the whole burst, and the answer caches are
        dropped once at exit — instead of per-change on both counts.
        """
        return self.kb.store.batch()

    def add_fact(self, subject: str, predicate: str, obj: str) -> bool:
        """Insert one triple into the live KB; returns True if new.

        The change flows through every layer without retraining: the backend
        notifies the expansion maintainer (per-seed refresh, no full
        re-expansion) and the answer caches are dropped, so the next
        :meth:`answer` sees the new fact.
        """
        return self.kb.store.add(subject, predicate, obj)

    def delete_fact(self, subject: str, predicate: str, obj: str) -> bool:
        """Remove one triple from the live KB; returns True if it existed.

        Same propagation as :meth:`add_fact` — expanded triples derived from
        the deleted edge disappear from subsequent answers immediately.
        """
        return self.kb.store.delete(subject, predicate, obj)

    def close(self) -> None:
        """Detach the system's change listeners from the KB backend.

        A trained system holds two subscriptions on its backend (expansion
        maintainer + answer-cache invalidation); the backend in turn keeps
        the system reachable through them.  Call this (or use the system as
        a context manager) when training several transient systems against
        one shared store, so discarded systems neither leak nor burn
        per-seed refreshes on later live edits.
        """
        if self.maintainer is not None:
            self.maintainer.close()
        self._kb_unsubscribe()
        # joins the pool's warm workers and unlinks its published payloads
        self.exec_pool.close()

    def __getstate__(self) -> dict:
        """A live system does not pickle — freeze its answerer instead.

        The facade holds process-local wiring (backend subscriptions, the
        live expansion maintainer, unsubscribe closures) that cannot and
        must not cross a process boundary.  Process-pool serving snapshots
        go through :func:`repro.exec.snapshot.freeze_target`, which freezes
        ``system.answerer`` — the picklable answering core — and re-freezes
        it per serving epoch.
        """
        raise TypeError(
            "KBQA systems are not picklable (live backend subscriptions); "
            "freeze the answering core via repro.exec.snapshot.freeze_target"
        )

    def __enter__(self) -> "KBQA":
        """Context-manager form: ``with KBQA.train(...) as system:``."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Detach from the backend on context exit."""
        self.close()

    def decompose(self, question: str) -> Decomposition:
        """Optimal decomposition of a (possibly) complex question (Sec 5)."""
        return self.decomposer.decompose(question)

    def answer_complex(self, question: str) -> ComplexAnswer:
        """Divide-and-conquer answering (Sec 5.1): decompose, then answer
        each sub-question with the previous answer substituted for ``$e``."""
        decomposition = self.decompose(question)
        if decomposition.is_simple or decomposition.score <= 0.0:
            final = self.answer(question)
            return ComplexAnswer(question, decomposition, (final,), final)

        steps: list[AnswerResult] = []
        current = self.answer(decomposition.sequence[0])
        steps.append(current)
        for pattern in decomposition.sequence[1:]:
            if not current.answered:
                return ComplexAnswer(question, decomposition, tuple(steps), None)
            next_question = pattern.replace(ENTITY_VARIABLE, current.value)
            current = self.answer(next_question)
            steps.append(current)
        return ComplexAnswer(question, decomposition, tuple(steps), current)

    # -- Introspection ---------------------------------------------------------------

    def describe(self) -> dict[str, object]:
        """Inventory numbers used by the coverage experiments (Table 12/16)."""
        expanded = self.learn_result.expanded
        return {
            "kb": self.kb.kind,
            "templates": self.model.n_templates,
            "predicates": self.model.n_predicates,
            "templates_per_predicate": round(self.model.templates_per_predicate(), 1),
            "observations": self.learn_result.n_observations,
            "seed_entities": self.learn_result.n_seed_entities,
            "expanded_spo": len(expanded) if expanded else 0,
            "em_iterations": self.learn_result.em.iterations,
        }


def train_without_expansion(
    kb: CompiledKB,
    corpus: QACorpus,
    conceptualizer: Conceptualizer,
    config: KBQAConfig | None = None,
) -> KBQA:
    """Ablation helper: KBQA restricted to direct predicates (Table 16's
    length-1 row)."""
    config = config or KBQAConfig()
    ablated = replace(config, learner=replace(config.learner, use_expansion=False))
    return KBQA.train(kb, corpus, conceptualizer, ablated)
