"""Complex question decomposition (Sec 5, Algorithm 2).

A complex question decomposes into a sequence ``A = (q̌_0, ..., q̌_k)`` where
``q̌_0`` is a concrete BFQ and each later ``q̌_i`` contains the entity
variable ``$e`` bound to the previous answer.  Validity of a pattern is
estimated from the QA corpus (Eq 26):

    ``P(q̌) = fv(q̌) / fo(q̌)``

``fo`` counts corpus questions matching the pattern under *any* substring
replacement, ``fv`` only those where the replaced substring is an entity
mention — penalizing over-general patterns like ``when $e?`` (Example 4).

The optimal decomposition maximizes ``P(A) = Π P(q̌_i)`` (Eq 27) via the
``O(|q|^4)`` dynamic program of Theorem 2.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.model import TemplateModel
from repro.core.template import Template
from repro.nlp.ner import EntityRecognizer
from repro.nlp.tokenizer import tokenize
from repro.taxonomy.conceptualizer import Conceptualizer

ENTITY_VARIABLE = "$e"


def _pattern_key(tokens: Sequence[str]) -> str:
    return " ".join(tokens)


class PatternStatistics:
    """``fo`` / ``fv`` pattern counts over the QA corpus (Sec 5.2)."""

    def __init__(self) -> None:
        self.fo: Counter[str] = Counter()
        self.fv: Counter[str] = Counter()
        self.questions_indexed = 0

    @classmethod
    def from_corpus(
        cls,
        questions: Iterable[str],
        ner: EntityRecognizer,
        max_questions: int | None = None,
        max_tokens: int = 23,
    ) -> "PatternStatistics":
        """Index corpus questions.

        ``max_tokens`` reflects the paper's observation that over 99% of
        corpus questions are under 23 words; longer ones are skipped.
        """
        stats = cls()
        for count, question in enumerate(questions):
            if max_questions is not None and count >= max_questions:
                break
            tokens = tokenize(question)
            n = len(tokens)
            if n == 0 or n > max_tokens:
                continue
            stats.questions_indexed += 1
            valid_spans = {
                (m.start, m.end) for m in ner.find_all_spans(tokens)
            }
            seen_fo: set[str] = set()
            seen_fv: set[str] = set()
            for start in range(n):
                for end in range(start + 1, n + 1):
                    if (start, end) == (0, n):
                        continue  # replacing everything leaves no pattern
                    pattern = _pattern_key(
                        tokens[:start] + [ENTITY_VARIABLE] + tokens[end:]
                    )
                    seen_fo.add(pattern)
                    if (start, end) in valid_spans:
                        seen_fv.add(pattern)
            stats.fo.update(seen_fo)
            stats.fv.update(seen_fv)
        return stats

    def validity(self, pattern_tokens: Sequence[str]) -> float:
        """``P(q̌) = fv / fo`` (0 when the pattern was never observed)."""
        key = _pattern_key(pattern_tokens)
        observed = self.fo.get(key, 0)
        if observed == 0:
            return 0.0
        return self.fv.get(key, 0) / observed


@dataclass(frozen=True, slots=True)
class Decomposition:
    """An ordered question sequence plus its score ``P(A)``.

    ``sequence[0]`` is a concrete question string; later elements contain
    ``$e`` to be bound to the previous answer.
    """

    sequence: tuple[str, ...]
    score: float

    @property
    def is_simple(self) -> bool:
        return len(self.sequence) == 1


class Decomposer:
    """Algorithm 2: dynamic programming over question substrings."""

    def __init__(
        self,
        statistics: PatternStatistics,
        ner: EntityRecognizer,
        model: TemplateModel,
        conceptualizer: Conceptualizer,
        max_concepts: int = 4,
    ) -> None:
        self.statistics = statistics
        self.ner = ner
        self.model = model
        self.conceptualizer = conceptualizer
        self.max_concepts = max_concepts

    def is_primitive(self, tokens: Sequence[str]) -> bool:
        """δ(q) — does ``tokens`` read as a directly answerable BFQ?

        True when some entity mention, conceptualized in context, yields a
        template the offline model has learned.
        """
        tokens = tuple(tokens)
        for mention in self.ner.find_mentions(tokens):
            span = (mention.start, mention.end)
            context = tokens[: mention.start] + tokens[mention.end :]
            for entity in mention.candidates:
                concepts = self.conceptualizer.conceptualize(entity, context)
                top = sorted(concepts.items(), key=lambda kv: (-kv[1], kv[0]))
                for concept, _prob in top[: self.max_concepts]:
                    template = Template.from_question(tokens, span, concept)
                    if template.text in self.model:
                        return True
        return False

    def decompose(self, question: str) -> Decomposition:
        """Find ``argmax_A P(A)`` (Eq 25) by the DP of Eq 28."""
        tokens = tuple(tokenize(question))
        n = len(tokens)
        if n == 0:
            return Decomposition((question,), 0.0)

        # best[(i, j)] = (P(A*), sequence) for the substring tokens[i:j].
        best: dict[tuple[int, int], tuple[float, tuple[str, ...]]] = {}

        for length in range(1, n + 1):
            for start in range(n - length + 1):
                end = start + length
                sub = tokens[start:end]
                delta = 1.0 if self.is_primitive(sub) else 0.0
                score = delta
                sequence: tuple[str, ...] = (" ".join(sub),)

                # Try every proper substring as the nested question q_j.
                for inner_start in range(start, end):
                    for inner_end in range(inner_start + 1, end + 1):
                        if (inner_start, inner_end) == (start, end):
                            continue
                        inner = best.get((inner_start, inner_end))
                        if inner is None or inner[0] <= 0.0:
                            continue
                        remainder = (
                            list(sub[: inner_start - start])
                            + [ENTITY_VARIABLE]
                            + list(sub[inner_end - start :])
                        )
                        validity = self.statistics.validity(remainder)
                        candidate = validity * inner[0]
                        if candidate > score:
                            score = candidate
                            sequence = inner[1] + (" ".join(remainder),)
                if score > 0.0:
                    best[(start, end)] = (score, sequence)

        top = best.get((0, n))
        if top is None:
            return Decomposition((" ".join(tokens),), 0.0)
        return Decomposition(top[1], top[0])
