"""Variant questions on top of BFQ capability (the paper's Sec 1 claim).

    "If we can answer BFQs, then we will be able to answer other types of
    questions, such as 1) ranking questions ... 2) comparison questions ...
    3) listing questions ..."

This module implements that claim as an *extension* over a trained KBQA
system.  Each variant form is answered by reformulating it into BFQ probes
whose templates the offline phase already learned:

* **superlative** — `which city has the largest population?`: probe
  `what is the population of <instance>?` on sample instances to recover
  the predicate path, then rank every instance of the concept by its value;
* **comparison** — `which city has more people, A or B?`: probe both
  entities with the attribute phrase, compare numerically;
* **counting / listing** — `how many cities are there in X?` / `list all
  cities in X ordered by population`: recover the membership predicate by
  probing, filter the concept's instances, count or sort;
* **boolean** — `is A married to B?`: strip the object, answer the
  remaining BFQ, and test membership of B in the answer set.

Everything predicate-related flows through the learned ``P(p|t)`` — no
predicate is ever keyword-matched — so this is a faithful consequence of
template learning, not a rule-based bypass.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.online import AnswerResult
from repro.core.system import KBQA
from repro.kb.paths import PredicatePath
from repro.taxonomy.isa import IsANetwork

_SUPERLATIVE_RE = re.compile(
    r"^(?:which|what) (\w+) (?:has|have) the "
    r"(?:(\d+)(?:st|nd|rd|th) )?(?:largest|biggest|most|highest|greatest) (.+?)\??$"
)
_COMPARISON_RE = re.compile(
    r"^which (\w+) has more (\w+) , (.+?) or (.+?)\??$"
)
_COUNT_RE = re.compile(r"^how many (\w+) are there in (.+?)\??$")
_LISTING_RE = re.compile(r"^list all (\w+) in (.+?) ordered by (\w+)$")
_BOOLEAN_RE = re.compile(r"^is (.+?) (married to|the \w+ of) (.+?)\??$")

# Probe phrasings tried in order when recovering a predicate for an
# attribute phrase; all are (or instantiate) learned surface shapes.
_ATTRIBUTE_PROBES = (
    "what is the {attr} of {e}?",
    "how many {attr} are there in {e}?",
    "how many {attr} does {e} have?",
    "{attr} of {e}",
)
_MEMBERSHIP_PROBES = (
    "in which country is {e}?",
    "what city is {e} in?",
    "where is {e} located?",
)


@dataclass(frozen=True, slots=True)
class VariantAnswer:
    """Answer to a variant question, with the probe trail for explanation."""

    question: str
    kind: str
    values: tuple[str, ...]
    value: str | None
    predicate: PredicatePath | None
    probed_with: str | None

    @property
    def answered(self) -> bool:
        return self.value is not None


class VariantAnswerer:
    """Answers ranking/comparison/listing/counting/boolean questions by
    reformulating them into learned-template BFQ probes."""

    def __init__(self, system: KBQA, taxonomy: IsANetwork, probe_instances: int = 5) -> None:
        self.system = system
        self.taxonomy = taxonomy
        self.probe_instances = probe_instances
        self._names = system.learn_result.ner

    # -- Entry point --------------------------------------------------------

    def answer(self, question: str) -> VariantAnswer | None:
        """Try each variant form; None means 'not a variant question'."""
        normalized = question.lower().strip()
        for handler in (
            self._superlative, self._comparison, self._count,
            self._listing, self._boolean,
        ):
            result = handler(normalized)
            if result is not None:
                return result
        return None

    # -- Concept / instance helpers ---------------------------------------

    def _concept_for_word(self, word: str) -> str | None:
        """Map a type word ('city', 'cities') to a taxonomy concept."""
        for candidate in (word, _singular(word)):
            concept = f"${candidate}"
            if self.taxonomy.instances(concept):
                return concept
        return None

    def _instances(self, concept: str) -> list[tuple[str, str]]:
        """(node, name) pairs for a concept's instances."""
        out = []
        for node in sorted(self.taxonomy.instances(concept)):
            names = self.system.kb.store.objects(node, "name")
            if names:
                out.append((node, next(iter(names))[1:]))
        return out

    def _probe_predicate(
        self, attr: str, instances: list[tuple[str, str]], probes=_ATTRIBUTE_PROBES
    ) -> tuple[PredicatePath, str] | None:
        """Recover the predicate path for an attribute phrase by asking
        probe BFQs about sample instances."""
        for probe in probes:
            for _node, name in instances[: self.probe_instances]:
                result = self.system.answer(probe.format(attr=attr, e=name))
                if result.answered and result.predicate is not None:
                    return result.predicate, probe
        return None

    def _values_for(self, node: str, path: PredicatePath) -> set[str]:
        return {
            v[1:] if v.startswith('"') else v
            for v in self.system.learn_result.kbview.values(node, path)
        }

    # -- Handlers ------------------------------------------------------------

    def _superlative(self, question: str) -> VariantAnswer | None:
        """Ranking questions, including ordinals: 'which city has the 3rd
        largest population?' (the paper's Sec 1 ranking example)."""
        match = _SUPERLATIVE_RE.match(question)
        if match is None:
            return None
        concept = self._concept_for_word(match.group(1))
        if concept is None:
            return None
        rank = int(match.group(2)) if match.group(2) else 1
        instances = self._instances(concept)
        probed = self._probe_predicate(match.group(3).strip(), instances)
        if probed is None:
            return None
        path, probe = probed
        scored: list[tuple[float, str]] = []
        for node, name in instances:
            numbers = [
                n for n in (_as_number(v) for v in self._values_for(node, path))
                if n is not None
            ]
            if numbers:
                scored.append((max(numbers), name))
        scored.sort(reverse=True)
        if len(scored) < rank:
            return None
        winner = scored[rank - 1][1]
        return VariantAnswer(question, "superlative", (winner,), winner, path, probe)

    def _comparison(self, question: str) -> VariantAnswer | None:
        match = _COMPARISON_RE.match(question)
        if match is None:
            return None
        attr, name_a, name_b = match.group(2), match.group(3), match.group(4)
        probes = (
            "how many {attr} are there in {e}?",
            "how many {attr} live in {e}?",
            "what is the {attr} of {e}?",
        )
        contenders = [(None, name_a.strip()), (None, name_b.strip())]
        probed = self._probe_predicate(attr, contenders, probes)
        if probed is None:
            return None
        path, probe = probed
        best_name, best_value = None, None
        for name in (name_a.strip(), name_b.strip()):
            for node in self._names.lookup(name):
                for value in self._values_for(node, path):
                    number = _as_number(value)
                    if number is not None and (best_value is None or number > best_value):
                        best_name, best_value = name, number
        if best_name is None:
            return None
        return VariantAnswer(question, "comparison", (best_name,), best_name, path, probe)

    def _membership_filter(self, concept: str, container: str) -> tuple[list[str], PredicatePath, str] | None:
        """Instances of ``concept`` located in ``container`` (by name)."""
        instances = self._instances(concept)
        probed = self._probe_predicate("", instances, _MEMBERSHIP_PROBES)
        if probed is None:
            return None
        path, probe = probed
        members = [
            (node, name) for node, name in instances
            if container in self._values_for(node, path)
        ]
        return [name for _n, name in members], path, probe

    def _count(self, question: str) -> VariantAnswer | None:
        match = _COUNT_RE.match(question)
        if match is None:
            return None
        concept = self._concept_for_word(match.group(1))
        if concept is None:
            return None
        filtered = self._membership_filter(concept, match.group(2).strip())
        if filtered is None:
            return None
        names, path, probe = filtered
        count = str(len(names))
        return VariantAnswer(question, "count", (count,), count, path, probe)

    def _listing(self, question: str) -> VariantAnswer | None:
        match = _LISTING_RE.match(question)
        if match is None:
            return None
        concept = self._concept_for_word(match.group(1))
        if concept is None:
            return None
        filtered = self._membership_filter(concept, match.group(2).strip())
        if filtered is None:
            return None
        names, _membership_path, probe = filtered
        instances = [
            (node, name) for node, name in self._instances(concept) if name in set(names)
        ]
        order_probe = self._probe_predicate(match.group(3).strip(), instances)
        if order_probe is None:
            ordered = sorted(names)
            path = None
        else:
            path, _p = order_probe
            keyed = []
            for node, name in instances:
                numbers = [
                    n for n in (_as_number(v) for v in self._values_for(node, path))
                    if n is not None
                ]
                keyed.append((max(numbers) if numbers else float("-inf"), name))
            ordered = [name for _k, name in sorted(keyed, reverse=True)]
        return VariantAnswer(
            question, "listing", tuple(ordered), ordered[0] if ordered else None,
            path, probe,
        )

    def _boolean(self, question: str) -> VariantAnswer | None:
        match = _BOOLEAN_RE.match(question)
        if match is None:
            return None
        subject, relation, obj = match.group(1), match.group(2), match.group(3)
        if relation == "married to":
            bfq = f"who is {subject} married to?"
        else:  # "the <label> of"
            bfq = f"who is {relation} {obj}?"
            subject, obj = obj, subject  # "is A the mayor of B?" asks about B
        result = self.system.answer(bfq)
        if not result.answered:
            return None
        verdict = "yes" if obj.strip() in set(result.values) else "no"
        return VariantAnswer(
            question, "boolean", (verdict,), verdict, result.predicate, bfq,
        )


class ExtendedKBQA:
    """KBQA + variant handling under the common ``answer`` protocol.

    Tries the variant machinery first and falls back to plain BFQ
    answering, so it can be dropped into the evaluation runner or a hybrid
    composition unchanged.
    """

    def __init__(self, system: KBQA, taxonomy: IsANetwork) -> None:
        self.system = system
        self.variants = VariantAnswerer(system, taxonomy)

    def answer(self, question: str) -> AnswerResult:
        """Variant answer when the form matches, plain BFQ answer otherwise."""
        variant = self.variants.answer(question)
        if variant is not None and variant.answered:
            return AnswerResult(
                question=question, value=variant.value, values=variant.values,
                score=1.0, entity=None, template=f"variant:{variant.kind}",
                predicate=variant.predicate, found_predicate=True,
            )
        return self.system.answer(question)

    def answer_complex(self, question: str):
        return self.system.answer_complex(question)


def _singular(word: str) -> str:
    if word.endswith("ies"):
        return word[:-3] + "y"
    if word.endswith("s") and not word.endswith("ss"):
        return word[:-1]
    return word


def _as_number(text: str) -> float | None:
    try:
        return float(text)
    except ValueError:
        return None
