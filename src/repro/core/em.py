"""EM estimation of ``P(p|t)`` (Sec 4.2-4.3, Algorithm 1).

Observations are pre-encoded candidate lists: for observation ``x_i`` each
candidate is ``(template_id, path_id, f)`` where ``f = f(x_i, z_i)`` of
Eq 19 — the product of every probability term except ``θ_pt``, computable
before estimation.  The pruning of Sec 4.3 is inherent to the encoding: only
templates derivable by conceptualizing ``e_i`` in ``q_i`` and only predicates
connecting ``(e_i, v_i)`` appear, so each iteration is ``O(m)``.

* **Initialization** (Eq 23): ``θ^(0)`` uniform over the predicates observed
  with each template.
* **E-step** (Eq 21): posterior responsibility of each hidden ``z_i=(p,t)``,
  ``P(z_i|X,θ) ∝ f(x_i,z_i)·θ_pt``, normalized per observation.
* **M-step** (Eq 22): ``θ_pt ∝ Σ_i P(z_i=(p,t)|X,θ)``, normalized per
  template over predicates.

The per-iteration incomplete-data log-likelihood is recorded; it is
non-decreasing (standard EM guarantee), which the test suite asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

Candidate = tuple[int, int, float]  # (template_id, path_id, f)


@dataclass(frozen=True, slots=True)
class EMConfig:
    max_iterations: int = 25
    tolerance: float = 1e-7  # relative log-likelihood improvement to continue


@dataclass
class EMResult:
    """Estimated parameters plus the optimization trace."""

    # theta[template_id][path_id] = P(p|t)
    theta: dict[int, dict[int, float]]
    log_likelihood: list[float] = field(default_factory=list)
    iterations: int = 0
    # responsibility mass per template, Σ_i Σ_p P(z_i=(p,t)|X,θ) at the end;
    # serves as the template's observed frequency (Table 13's ordering).
    template_support: dict[int, float] = field(default_factory=dict)


def initialize_theta(observations: Sequence[Sequence[Candidate]]) -> dict[int, dict[int, float]]:
    """Eq 23: uniform over predicates co-occurring with each template."""
    paths_per_template: dict[int, set[int]] = {}
    for candidates in observations:
        for template_id, path_id, f in candidates:
            if f > 0.0:
                paths_per_template.setdefault(template_id, set()).add(path_id)
    return {
        template_id: {path_id: 1.0 / len(path_ids) for path_id in path_ids}
        for template_id, path_ids in paths_per_template.items()
    }


def run_em(
    observations: Sequence[Sequence[Candidate]],
    config: EMConfig | None = None,
) -> EMResult:
    """Maximum-likelihood estimation of ``P(p|t)`` via EM."""
    config = config or EMConfig()
    theta = initialize_theta(observations)
    result = EMResult(theta=theta)
    if not theta:
        return result

    previous_ll: float | None = None
    for iteration in range(config.max_iterations):
        accumulator: dict[int, dict[int, float]] = {}
        support: dict[int, float] = {}
        log_likelihood = 0.0
        for candidates in observations:
            # E-step for observation i: responsibilities ∝ f · θ (Eq 21).
            weights: list[float] = []
            total = 0.0
            for template_id, path_id, f in candidates:
                weight = f * theta.get(template_id, {}).get(path_id, 0.0)
                weights.append(weight)
                total += weight
            if total <= 0.0:
                continue
            log_likelihood += math.log(total)
            inv_total = 1.0 / total
            for (template_id, path_id, _f), weight in zip(candidates, weights):
                if weight <= 0.0:
                    continue
                responsibility = weight * inv_total
                row = accumulator.setdefault(template_id, {})
                row[path_id] = row.get(path_id, 0.0) + responsibility
                support[template_id] = support.get(template_id, 0.0) + responsibility

        # M-step: per-template normalization (Eq 22).
        theta = {
            template_id: {
                path_id: mass / support[template_id]
                for path_id, mass in row.items()
            }
            for template_id, row in accumulator.items()
        }
        result.theta = theta
        result.template_support = support
        result.log_likelihood.append(log_likelihood)
        result.iterations = iteration + 1

        if previous_ll is not None:
            improvement = log_likelihood - previous_ll
            scale = max(abs(previous_ll), 1.0)
            if improvement / scale < config.tolerance:
                break
        previous_ll = log_likelihood
    return result
