"""EM estimation of ``P(p|t)`` (Sec 4.2-4.3, Algorithm 1).

Observations are pre-encoded candidate lists: for observation ``x_i`` each
candidate is ``(template_id, path_id, f)`` where ``f = f(x_i, z_i)`` of
Eq 19 — the product of every probability term except ``θ_pt``, computable
before estimation.  The pruning of Sec 4.3 is inherent to the encoding: only
templates derivable by conceptualizing ``e_i`` in ``q_i`` and only predicates
connecting ``(e_i, v_i)`` appear, so each iteration is ``O(m)``.

* **Initialization** (Eq 23): ``θ^(0)`` uniform over the predicates observed
  with each template.
* **E-step** (Eq 21): posterior responsibility of each hidden ``z_i=(p,t)``,
  ``P(z_i|X,θ) ∝ f(x_i,z_i)·θ_pt``, normalized per observation.
* **M-step** (Eq 22): ``θ_pt ∝ Σ_i P(z_i=(p,t)|X,θ)``, normalized per
  template over predicates.

The estimator is array-based: observations are flattened into CSR-style
parallel buffers (:class:`EncodedObservations`), every distinct ``(t, p)``
pair becomes a dense *cell*, and each E/M iteration is vectorized numpy (or,
without numpy, tight loops over flat ``array`` buffers) instead of nested
dict gets.  ``run_em_reference`` keeps the original dict-of-dict
implementation for equivalence tests and the before/after benchmark.

The per-iteration incomplete-data log-likelihood is recorded; it is
non-decreasing (standard EM guarantee), which the test suite asserts.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass, field
from typing import Iterable, Sequence

try:  # numpy is optional; the flat-array fallback keeps semantics identical
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less builds
    _np = None

Candidate = tuple[int, int, float]  # (template_id, path_id, f)


@dataclass(frozen=True, slots=True)
class EMConfig:
    max_iterations: int = 25
    tolerance: float = 1e-7  # relative log-likelihood improvement to continue


@dataclass
class EMResult:
    """Estimated parameters plus the optimization trace."""

    # theta[template_id][path_id] = P(p|t)
    theta: dict[int, dict[int, float]]
    log_likelihood: list[float] = field(default_factory=list)
    iterations: int = 0
    # responsibility mass per template, Σ_i Σ_p P(z_i=(p,t)|X,θ) at the end;
    # serves as the template's observed frequency (Table 13's ordering).
    template_support: dict[int, float] = field(default_factory=dict)


class EncodedObservations:
    """Flat CSR-style encoding of EM observations.

    Candidates of all observations live in three parallel buffers
    (``template_ids``, ``path_ids``, ``fs``); ``offsets[i]:offsets[i+1]``
    delimits observation ``i``.  The offline learner emits this encoding
    directly, so EM never touches a nested python list.
    """

    __slots__ = ("offsets", "template_ids", "path_ids", "fs")

    def __init__(self) -> None:
        self.offsets = array("q", [0])
        self.template_ids = array("q")
        self.path_ids = array("q")
        self.fs = array("d")

    def append(self, candidates: Iterable[Candidate]) -> None:
        """Add one observation (its candidate list) to the buffers."""
        t_buf, p_buf, f_buf = self.template_ids, self.path_ids, self.fs
        for template_id, path_id, f in candidates:
            t_buf.append(template_id)
            p_buf.append(path_id)
            f_buf.append(f)
        self.offsets.append(len(t_buf))

    def append_candidate(self, template_id: int, path_id: int, f: float) -> None:
        """Add one candidate to the observation currently being built; call
        :meth:`close_observation` when the observation is complete."""
        self.template_ids.append(template_id)
        self.path_ids.append(path_id)
        self.fs.append(f)

    def close_observation(self) -> None:
        """Seal the candidates appended since the last close into one
        observation."""
        self.offsets.append(len(self.template_ids))

    @property
    def open_candidates(self) -> int:
        """Candidates appended but not yet sealed by :meth:`close_observation`."""
        return len(self.template_ids) - self.offsets[-1]

    @classmethod
    def from_observations(cls, observations: Sequence[Sequence[Candidate]]) -> "EncodedObservations":
        """Flatten nested candidate lists into the CSR buffers."""
        encoded = cls()
        for candidates in observations:
            encoded.append(candidates)
        return encoded

    def __len__(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_candidates(self) -> int:
        """Total candidates across all observations."""
        return len(self.template_ids)

    def to_lists(self) -> list[list[Candidate]]:
        """Inverse of :meth:`from_observations` (reference/tests only)."""
        out: list[list[Candidate]] = []
        for i in range(len(self)):
            start, end = self.offsets[i], self.offsets[i + 1]
            out.append(
                [
                    (self.template_ids[j], self.path_ids[j], self.fs[j])
                    for j in range(start, end)
                ]
            )
        return out


def initialize_theta(observations: Sequence[Sequence[Candidate]]) -> dict[int, dict[int, float]]:
    """Eq 23: uniform over predicates co-occurring with each template."""
    paths_per_template: dict[int, set[int]] = {}
    for candidates in observations:
        for template_id, path_id, f in candidates:
            if f > 0.0:
                paths_per_template.setdefault(template_id, set()).add(path_id)
    return {
        template_id: {path_id: 1.0 / len(path_ids) for path_id in path_ids}
        for template_id, path_ids in paths_per_template.items()
    }


def run_em(
    observations: Sequence[Sequence[Candidate]] | EncodedObservations,
    config: EMConfig | None = None,
) -> EMResult:
    """Maximum-likelihood estimation of ``P(p|t)`` via array-based EM.

    Accepts either nested candidate lists (flattened on entry) or a
    pre-built :class:`EncodedObservations`.  Produces the same estimates as
    :func:`run_em_reference` (equivalence-tested to 1e-9) in a fraction of
    the time: the E/M recurrences run over contiguous buffers indexed by
    dense cell ids instead of chained dict lookups.
    """
    config = config or EMConfig()
    if not isinstance(observations, EncodedObservations):
        observations = EncodedObservations.from_observations(observations)

    m = observations.n_candidates
    result = EMResult(theta={})
    if m == 0 or len(observations) == 0:
        return result

    t_ids, p_ids, fs = observations.template_ids, observations.path_ids, observations.fs

    # Dense re-indexing: every distinct (template, path) pair becomes a cell;
    # every distinct template id a dense template index.
    cell_index: dict[tuple[int, int], int] = {}
    template_index: dict[int, int] = {}
    cells = array("q")
    obs_of = array("q")
    for i in range(len(observations)):
        start, end = observations.offsets[i], observations.offsets[i + 1]
        for j in range(start, end):
            pair = (t_ids[j], p_ids[j])
            cell = cell_index.setdefault(pair, len(cell_index))
            cells.append(cell)
            obs_of.append(i)
    n_cells = len(cell_index)
    n_obs = len(observations)

    cell_template = array("q")  # dense template index per cell
    cell_pairs: list[tuple[int, int]] = [(0, 0)] * n_cells
    for (template_id, path_id), cell in cell_index.items():
        cell_pairs[cell] = (template_id, path_id)
    for template_id, path_id in cell_pairs:
        cell_template.append(template_index.setdefault(template_id, len(template_index)))
    n_templates = len(template_index)

    # Eq 23 over cells: uniform over a template's cells that ever see f > 0.
    positive = bytearray(n_cells)
    for j in range(m):
        if fs[j] > 0.0:
            positive[cells[j]] = 1
    if not any(positive):
        return result
    paths_per_template = array("q", bytes(8 * n_templates))
    for cell in range(n_cells):
        if positive[cell]:
            paths_per_template[cell_template[cell]] += 1
    theta_flat = array("d", bytes(8 * n_cells))
    for cell in range(n_cells):
        if positive[cell]:
            theta_flat[cell] = 1.0 / paths_per_template[cell_template[cell]]

    if config.max_iterations < 1:
        # No iteration: θ stays at its Eq 23 initialization (reference parity).
        for cell in range(n_cells):
            if positive[cell]:
                template_id, path_id = cell_pairs[cell]
                result.theta.setdefault(template_id, {})[path_id] = theta_flat[cell]
        return result

    if _np is not None:
        acc, support, trace, iterations = _iterate_numpy(
            fs, cells, obs_of, cell_template, theta_flat,
            n_cells, n_obs, n_templates, config,
        )
    else:
        acc, support, trace, iterations = _iterate_python(
            fs, cells, obs_of, cell_template, theta_flat,
            n_cells, n_obs, n_templates, config,
        )

    # Decode the flat estimate back into the sparse dict form of the result.
    theta: dict[int, dict[int, float]] = {}
    template_support: dict[int, float] = {}
    for cell in range(n_cells):
        mass = acc[cell]
        if mass <= 0.0:
            continue
        template_id, path_id = cell_pairs[cell]
        theta.setdefault(template_id, {})[path_id] = mass / support[cell_template[cell]]
    for template_id, dense in template_index.items():
        if support[dense] > 0.0:
            template_support[template_id] = support[dense]
    result.theta = theta
    result.template_support = template_support
    result.log_likelihood = trace
    result.iterations = iterations
    return result


def _iterate_numpy(fs, cells, obs_of, cell_template, theta_flat,
                   n_cells, n_obs, n_templates, config):
    """Vectorized E/M loop; returns (acc, support, ll trace, iterations)."""
    fs_v = _np.frombuffer(fs, dtype=_np.float64)
    cells_v = _np.frombuffer(cells, dtype=_np.int64)
    obs_v = _np.frombuffer(obs_of, dtype=_np.int64)
    tmpl_v = _np.frombuffer(cell_template, dtype=_np.int64)
    theta = _np.frombuffer(theta_flat, dtype=_np.float64).copy()

    acc = _np.zeros(n_cells)
    support = _np.zeros(n_templates)
    trace: list[float] = []
    iterations = 0
    previous_ll: float | None = None

    for _ in range(config.max_iterations):
        weights = fs_v * theta[cells_v]                       # E-step, Eq 21
        totals = _np.bincount(obs_v, weights=weights, minlength=n_obs)
        live = totals > 0.0
        log_likelihood = float(_np.log(totals[live]).sum()) if live.any() else 0.0
        inv_totals = _np.zeros(n_obs)
        inv_totals[live] = 1.0 / totals[live]
        resp = weights * inv_totals[obs_v]
        resp[weights <= 0.0] = 0.0
        acc = _np.bincount(cells_v, weights=resp, minlength=n_cells)
        support = _np.bincount(tmpl_v, weights=acc, minlength=n_templates)
        denom = support[tmpl_v]                               # M-step, Eq 22
        theta = _np.divide(acc, denom, out=_np.zeros(n_cells), where=denom > 0.0)
        trace.append(log_likelihood)
        iterations += 1
        if previous_ll is not None:
            scale = max(abs(previous_ll), 1.0)
            if (log_likelihood - previous_ll) / scale < config.tolerance:
                break
        previous_ll = log_likelihood
    return acc, support, trace, iterations


def _iterate_python(fs, cells, obs_of, cell_template, theta_flat,
                    n_cells, n_obs, n_templates, config):
    """Flat-buffer E/M loop for numpy-less builds (identical semantics)."""
    m = len(fs)
    theta = array("d", theta_flat)
    acc = array("d", bytes(8 * n_cells))
    support = array("d", bytes(8 * n_templates))
    trace: list[float] = []
    iterations = 0
    previous_ll: float | None = None
    log = math.log

    for _ in range(config.max_iterations):
        weights = array("d", bytes(8 * m))
        totals = array("d", bytes(8 * n_obs))
        for j in range(m):
            w = fs[j] * theta[cells[j]]
            weights[j] = w
            totals[obs_of[j]] += w
        log_likelihood = 0.0
        inv_totals = array("d", bytes(8 * n_obs))
        for i in range(n_obs):
            total = totals[i]
            if total > 0.0:
                log_likelihood += log(total)
                inv_totals[i] = 1.0 / total
        acc = array("d", bytes(8 * n_cells))
        support = array("d", bytes(8 * n_templates))
        for j in range(m):
            w = weights[j]
            if w <= 0.0:
                continue
            responsibility = w * inv_totals[obs_of[j]]
            cell = cells[j]
            acc[cell] += responsibility
            support[cell_template[cell]] += responsibility
        for cell in range(n_cells):                       # M-step, Eq 22
            denom = support[cell_template[cell]]
            theta[cell] = acc[cell] / denom if denom > 0.0 else 0.0
        trace.append(log_likelihood)
        iterations += 1
        if previous_ll is not None:
            scale = max(abs(previous_ll), 1.0)
            if (log_likelihood - previous_ll) / scale < config.tolerance:
                break
        previous_ll = log_likelihood
    return acc, support, trace, iterations


def run_em_reference(
    observations: Sequence[Sequence[Candidate]] | EncodedObservations,
    config: EMConfig | None = None,
) -> EMResult:
    """The original dict-of-dict EM, kept as the correctness reference."""
    config = config or EMConfig()
    if isinstance(observations, EncodedObservations):
        observations = observations.to_lists()
    theta = initialize_theta(observations)
    result = EMResult(theta=theta)
    if not theta:
        return result

    previous_ll: float | None = None
    for iteration in range(config.max_iterations):
        accumulator: dict[int, dict[int, float]] = {}
        support: dict[int, float] = {}
        log_likelihood = 0.0
        for candidates in observations:
            # E-step for observation i: responsibilities ∝ f · θ (Eq 21).
            weights: list[float] = []
            total = 0.0
            for template_id, path_id, f in candidates:
                weight = f * theta.get(template_id, {}).get(path_id, 0.0)
                weights.append(weight)
                total += weight
            if total <= 0.0:
                continue
            log_likelihood += math.log(total)
            inv_total = 1.0 / total
            for (template_id, path_id, _f), weight in zip(candidates, weights):
                if weight <= 0.0:
                    continue
                responsibility = weight * inv_total
                row = accumulator.setdefault(template_id, {})
                row[path_id] = row.get(path_id, 0.0) + responsibility
                support[template_id] = support.get(template_id, 0.0) + responsibility

        # M-step: per-template normalization (Eq 22).
        theta = {
            template_id: {
                path_id: mass / support[template_id]
                for path_id, mass in row.items()
            }
            for template_id, row in accumulator.items()
        }
        result.theta = theta
        result.template_support = support
        result.log_likelihood.append(log_likelihood)
        result.iterations = iteration + 1

        if previous_ll is not None:
            improvement = log_likelihood - previous_ll
            scale = max(abs(previous_ll), 1.0)
            if improvement / scale < config.tolerance:
                break
        previous_ll = log_likelihood
    return result
