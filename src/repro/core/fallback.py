"""Semantic fallback lane: embedding-gated answers when templates abstain.

The paper's online answerer (Eq 7) requires an *exact* template hit — a
held-out paraphrase of a learned question abstains even though the learned
predicate would answer it.  This module builds a dense index over the
learned predicate paths so such questions can be recovered:

* every learned path gets one vector — the θ-weighted sum of its training
  templates' *de-slotted* surfaces (the concept token dropped, mirroring how
  a query drops its entity mention) plus a small contribution from the
  predicate's own name tokens (``birth_place`` → "birth place"),
* a query embeds the question tokens with the NER mention span removed —
  the same reading the deterministic lane produced — and scores against all
  path vectors with a brute-force-with-pruning cosine top-k,
* a confidence gate (absolute threshold AND margin between the two best
  distinct paths) turns low-confidence matches back into abstentions.

Everything is deterministic and dependency-free: vectors come from
``repro.nlp.embed`` (BLAKE2b feature hashing, seeded), candidate order is
lexicographic, and the index pickles into serving snapshots unchanged.

The pruned scan packs all path vectors into one flat ``array('f')`` and
walks each row in chunks; per-row suffix norms precomputed at chunk
boundaries give a Cauchy–Schwarz upper bound on the remaining dot product,
so rows that cannot beat the current k-th best are abandoned early.  The
pruned scan is equivalence-tested against the naive full scan.
"""

from __future__ import annotations

import math
import re
from array import array
from dataclasses import dataclass

from repro.core.model import TemplateModel
from repro.core.template import Template
from repro.kb.paths import PredicatePath
from repro.nlp.embed import DEFAULT_DIM, accumulate, dot, embed_tokens, normalize

# Chunk width for the pruned scan; a power of two keeps slicing cheap.
_CHUNK = 64

# Relative weight of the predicate-name vector against the accumulated
# template-surface mass (the surfaces carry the real signal; the name is a
# prior for sparsely-observed paths).
_NAME_WEIGHT = 0.25

_NAME_TOKEN_RE = re.compile(r"[a-z0-9]+")

DEFAULT_THRESHOLD = 0.35
DEFAULT_MARGIN = 0.05


@dataclass(frozen=True, slots=True)
class FallbackConfig:
    """Knobs of the fallback lane (all deterministic given the seed)."""

    dim: int = DEFAULT_DIM
    seed: int = 0
    threshold: float = DEFAULT_THRESHOLD  # minimum cosine to answer at all
    margin: float = DEFAULT_MARGIN  # required lead of best over runner-up
    top_k: int = 5  # ranked paths retrieved per query


def _name_tokens(path_str: str) -> tuple[str, ...]:
    """Tokenize a predicate path's name ("birth_place->of" → birth place of)."""
    return tuple(_NAME_TOKEN_RE.findall(path_str.lower()))


class FallbackIndex:
    """Packed predicate-path vectors with gated cosine retrieval."""

    def __init__(
        self,
        config: FallbackConfig,
        path_strs: list[str],
        matrix: array,
    ) -> None:
        self.config = config
        self.path_strs = path_strs
        self.paths = [PredicatePath.parse(p) for p in path_strs]
        self.matrix = matrix
        self._by_str = dict(zip(self.path_strs, self.paths))
        self._suffix_norms = self._build_suffix_norms()

    def __len__(self) -> int:
        return len(self.path_strs)

    # -- Pickling (ships inside serving snapshots) --------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Parsed paths and suffix norms are derived; rebuild on thaw so the
        # snapshot blob stays small.
        del state["paths"]
        del state["_by_str"]
        del state["_suffix_norms"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.paths = [PredicatePath.parse(p) for p in self.path_strs]
        self._by_str = dict(zip(self.path_strs, self.paths))
        self._suffix_norms = self._build_suffix_norms()

    # -- Construction -------------------------------------------------------

    @classmethod
    def build(
        cls, model: TemplateModel, config: FallbackConfig | None = None
    ) -> "FallbackIndex":
        """Build path vectors from a trained model's template surfaces.

        Each template contributes its de-slotted surface embedding to every
        path it assigns mass to, weighted by θ = P(p|t); the path's own name
        tokens are folded in at a fixed fraction of the accumulated norm.
        Iteration order does not affect the result beyond float addition
        order, which is itself fixed by sorting templates first.
        """
        config = config or FallbackConfig()
        dim, seed = config.dim, config.seed
        accumulators: dict[str, array] = {}
        for template_text in sorted(model.templates()):
            try:
                template = Template.from_text(template_text)
            except ValueError:
                continue
            surface = (
                template.tokens[: template.slot] + template.tokens[template.slot + 1 :]
            )
            tvec = embed_tokens(surface, dim, seed)
            for path, theta in model.predicates_for(template_text).items():
                path_str = str(path)
                acc = accumulators.get(path_str)
                if acc is None:
                    acc = array("f", bytes(4 * dim))
                    accumulators[path_str] = acc
                accumulate(acc, tvec, theta)

        path_strs = sorted(accumulators)
        matrix = array("f")
        for path_str in path_strs:
            acc = accumulators[path_str]
            name_vec = embed_tokens(_name_tokens(path_str), dim, seed)
            acc_norm = math.sqrt(math.fsum(v * v for v in acc))
            accumulate(acc, name_vec, _NAME_WEIGHT * (acc_norm or 1.0))
            matrix.extend(normalize(acc))
        return cls(config, path_strs, matrix)

    def _build_suffix_norms(self) -> list[tuple[float, ...]]:
        """Per-row Cauchy–Schwarz suffix norms at every chunk boundary."""
        dim = self.config.dim
        n_chunks = (dim + _CHUNK - 1) // _CHUNK
        norms: list[tuple[float, ...]] = []
        for row_index in range(len(self.path_strs)):
            row = self.matrix[row_index * dim : (row_index + 1) * dim]
            squared = [0.0] * (n_chunks + 1)
            for j in range(n_chunks - 1, -1, -1):
                segment = row[j * _CHUNK : (j + 1) * _CHUNK]
                squared[j] = squared[j + 1] + math.fsum(v * v for v in segment)
            norms.append(tuple(math.sqrt(s) for s in squared))
        return norms

    # -- Retrieval ----------------------------------------------------------

    def top_paths(
        self, qvec: array, k: int | None = None, prune: bool = True
    ) -> list[tuple[str, float]]:
        """The ``k`` highest-cosine paths for a unit query vector.

        Returns ``(path_str, score)`` pairs sorted by descending score with
        lexicographic tie-breaks.  ``prune=False`` forces the naive full
        scan — kept as the equivalence-test reference for the pruned path.
        """
        k = k if k is not None else self.config.top_k
        if k <= 0 or not self.path_strs:
            return []
        dim = self.config.dim
        n_chunks = (dim + _CHUNK - 1) // _CHUNK
        q_suffix: tuple[float, ...] | None = None
        if prune:
            squared = [0.0] * (n_chunks + 1)
            for j in range(n_chunks - 1, -1, -1):
                segment = qvec[j * _CHUNK : (j + 1) * _CHUNK]
                squared[j] = squared[j + 1] + math.fsum(v * v for v in segment)
            q_suffix = tuple(math.sqrt(s) for s in squared)

        scored: list[tuple[float, str]] = []  # (score, path_str), len <= k
        kth_floor = -math.inf
        for row_index, path_str in enumerate(self.path_strs):
            base = row_index * dim
            # Both branches accumulate chunk dot products in the same order,
            # so pruned and naive scans agree bit-for-bit on surviving rows
            # (the equivalence test compares them exactly).
            if prune and q_suffix is not None and len(scored) >= k:
                row_suffix = self._suffix_norms[row_index]
                partial = 0.0
                pruned = False
                for j in range(n_chunks):
                    start = base + j * _CHUNK
                    partial += dot(
                        qvec[j * _CHUNK : (j + 1) * _CHUNK],
                        self.matrix[start : start + _CHUNK],
                    )
                    bound = partial + q_suffix[j + 1] * row_suffix[j + 1]
                    # Small slack keeps float rounding from dropping a row
                    # that actually ties the k-th best.
                    if bound < kth_floor - 1e-9:
                        pruned = True
                        break
                if pruned:
                    continue
                score = partial
            else:
                score = 0.0
                for j in range(n_chunks):
                    start = base + j * _CHUNK
                    score += dot(
                        qvec[j * _CHUNK : (j + 1) * _CHUNK],
                        self.matrix[start : start + _CHUNK],
                    )
            scored.append((score, path_str))
            if len(scored) > k:
                scored.sort(key=lambda row: (-row[0], row[1]))
                scored.pop()
            if len(scored) >= k:
                kth_floor = min(s for s, _ in scored)
        scored.sort(key=lambda row: (-row[0], row[1]))
        return [(path_str, score) for score, path_str in scored]

    def gated_paths(self, qvec: array) -> list[tuple[str, float]]:
        """Retrieval plus the confidence gate; empty means *abstain*.

        The gate requires the best path to clear the absolute cosine
        threshold AND to lead the runner-up by the configured margin; when
        it passes, every retrieved path above the threshold is returned in
        rank order (the caller walks them until one yields KB values).
        """
        ranked = self.top_paths(qvec)
        if not ranked:
            return []
        best_score = ranked[0][1]
        if best_score < self.config.threshold:
            return []
        if len(ranked) > 1 and best_score - ranked[1][1] < self.config.margin:
            return []
        return [(p, s) for p, s in ranked if s >= self.config.threshold]

    def path_for(self, path_str: str) -> PredicatePath:
        return self._by_str[path_str]

    def describe(self) -> dict[str, object]:
        """Summary row for ``/stats``-style introspection surfaces."""
        return {
            "paths": len(self.path_strs),
            "dim": self.config.dim,
            "threshold": self.config.threshold,
            "margin": self.config.margin,
        }
