"""KBQA core: templates, EM predicate inference, online answering,
complex-question decomposition, and expansion-length selection.

This package is the paper's primary contribution (Secs 3-6); everything it
depends on lives in the substrate packages (``kb``, ``nlp``, ``taxonomy``,
``data``, ``corpus``).
"""

from repro.core.template import Template
from repro.core.kbview import KBView
from repro.core.extraction import Observation, ValueIndex, extract_observations, ExtractionConfig
from repro.core.em import EMConfig, EMResult, run_em
from repro.core.fallback import FallbackConfig, FallbackIndex
from repro.core.model import TemplateModel
from repro.core.learner import LearnerConfig, OfflineLearner, LearnResult
from repro.core.online import AnswerResult, OnlineAnswerer
from repro.core.decompose import Decomposer, Decomposition, PatternStatistics
from repro.core.kselect import valid_k
from repro.core.system import KBQA, KBQAConfig, ComplexAnswer

__all__ = [
    "Template",
    "KBView",
    "Observation",
    "ValueIndex",
    "extract_observations",
    "ExtractionConfig",
    "EMConfig",
    "EMResult",
    "run_em",
    "FallbackConfig",
    "FallbackIndex",
    "TemplateModel",
    "LearnerConfig",
    "OfflineLearner",
    "LearnResult",
    "AnswerResult",
    "OnlineAnswerer",
    "Decomposer",
    "Decomposition",
    "PatternStatistics",
    "valid_k",
    "KBQA",
    "KBQAConfig",
    "ComplexAnswer",
]
