"""Online question answering (Sec 3.3).

Given a user question ``q0`` the answerer evaluates Eq 7:

    ``P(v|q0) = Σ_{e,p,t} P(v|e,p) · P(p|t) · P(t|e,q0) · P(e|q0)``

by enumerating the question's entity mentions (NER + KB membership), the
templates from conceptualizing each entity (``P(t|e,q)``), the learned
predicate distribution ``P(p|t)``, and the value sets ``V(e,p)``.  The
complexity is ``O(|P|)`` — linear in the candidate predicates per template —
exactly the paper's analysis.

The result distinguishes *found a predicate* (the ``#pro`` condition of
Sec 7.3.1) from *produced values*: a question whose template is known but
whose entity lacks the fact processes without an answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.kbview import KBView
from repro.core.model import TemplateModel
from repro.core.template import Template
from repro.kb.paths import PredicatePath
from repro.kb.triple import is_literal, literal_value
from repro.nlp.ner import EntityRecognizer
from repro.nlp.tokenizer import tokenize
from repro.taxonomy.conceptualizer import Conceptualizer


@dataclass(frozen=True, slots=True)
class AnswerResult:
    """Outcome of answering one BFQ."""

    question: str
    value: str | None  # best single value (argmax_v), unquoted
    values: tuple[str, ...]  # full answer set V(e, p*) of the best reading
    score: float
    entity: str | None
    template: str | None
    predicate: PredicatePath | None
    found_predicate: bool  # the #pro condition
    candidates: tuple[tuple[str, float], ...] = field(default=())

    @property
    def answered(self) -> bool:
        return self.value is not None


class OnlineAnswerer:
    """Evaluates Eq 7 against a knowledge base view and a template model."""

    def __init__(
        self,
        kbview: KBView,
        ner: EntityRecognizer,
        conceptualizer: Conceptualizer,
        model: TemplateModel,
        max_concepts: int = 4,
    ) -> None:
        self.kbview = kbview
        self.ner = ner
        self.conceptualizer = conceptualizer
        self.model = model
        self.max_concepts = max_concepts

    def answer(self, question: str) -> AnswerResult:
        """Answer one BFQ by evaluating Eq 7 over all readings."""
        tokens = tuple(tokenize(question))
        mentions = self.ner.find_mentions(tokens)
        candidate_entities = [
            (mention, entity) for mention in mentions for entity in mention.candidates
        ]
        if not candidate_entities:
            return self._no_answer(question)
        entity_prob = 1.0 / len(candidate_entities)  # uniform P(e|q), Sec 3.2

        found_predicate = False
        # Score (entity, path) readings: S = Σ_t P(e|q)·P(t|e,q)·P(p|t).
        reading_scores: dict[tuple[str, str], float] = {}
        reading_info: dict[tuple[str, str], tuple[str, PredicatePath]] = {}

        for mention, entity in candidate_entities:
            span = (mention.start, mention.end)
            context = tokens[: mention.start] + tokens[mention.end :]
            concepts = self.conceptualizer.conceptualize(entity, context)
            top_concepts = sorted(concepts.items(), key=lambda kv: (-kv[1], kv[0]))
            for concept, concept_prob in top_concepts[: self.max_concepts]:
                template = Template.from_question(tokens, span, concept)
                distribution = self.model.predicates_for(template.text)
                if not distribution:
                    continue
                found_predicate = True
                for path, theta in distribution.items():
                    key = (entity, str(path))
                    score = entity_prob * concept_prob * theta
                    reading_scores[key] = reading_scores.get(key, 0.0) + score
                    if key not in reading_info:
                        reading_info[key] = (template.text, path)

        if not reading_scores:
            return self._no_answer(question, found_predicate)

        # Rank readings, keep the best one that yields values.
        ranked = sorted(reading_scores.items(), key=lambda kv: (-kv[1], kv[0]))
        for (entity, _path_key), score in ranked:
            template_text, path = reading_info[(entity, _path_key)]
            values = self.kbview.values(entity, path)
            if not values:
                continue
            rendered = tuple(sorted(render_term(v) for v in values))
            value_prob = 1.0 / len(values)
            candidates = tuple((v, score * value_prob) for v in rendered)
            return AnswerResult(
                question=question,
                value=rendered[0],
                values=rendered,
                score=score * value_prob,
                entity=entity,
                template=template_text,
                predicate=path,
                found_predicate=True,
                candidates=candidates,
            )
        return self._no_answer(question, found_predicate)

    @staticmethod
    def _no_answer(question: str, found_predicate: bool = False) -> AnswerResult:
        return AnswerResult(
            question=question, value=None, values=(), score=0.0, entity=None,
            template=None, predicate=None, found_predicate=found_predicate,
        )


def render_term(term: str) -> str:
    """Literal terms lose their quote prefix; resource terms pass through."""
    if is_literal(term):
        return literal_value(term)
    return term
