"""Online question answering (Sec 3.3).

Given a user question ``q0`` the answerer evaluates Eq 7:

    ``P(v|q0) = Σ_{e,p,t} P(v|e,p) · P(p|t) · P(t|e,q0) · P(e|q0)``

by enumerating the question's entity mentions (NER + KB membership), the
templates from conceptualizing each entity (``P(t|e,q)``), the learned
predicate distribution ``P(p|t)``, and the value sets ``V(e,p)``.  The
complexity is ``O(|P|)`` — linear in the candidate predicates per template —
exactly the paper's analysis.

Serving-layer hot paths (Table 14's 79 ms/question is a *systems* claim):

* per-template predicate distributions are parsed from the model **once**
  and cached as ranked ``(path_str, path, θ)`` arrays — no
  ``PredicatePath.parse`` per question;
* NER mention scans and conceptualizer posteriors are memoized behind
  bounded LRUs (real traffic repeats entities and phrasings);
* an optional answer cache keyed on *normalized* question text short-circuits
  repeat questions entirely;
* :meth:`OnlineAnswerer.answer_many` batches questions through the warm
  caches, deduplicating repeats on the normalized key before evaluation,
  and is equivalence-tested against per-question :meth:`answer`.

The result distinguishes *found a predicate* (the ``#pro`` condition of
Sec 7.3.1) from *produced values*: a question whose template is known but
whose entity lacks the fact processes without an answer.

An optional *semantic fallback lane* (``repro.core.fallback``) runs only
when Eq 7 produces no value: the question's mention span is removed, the
remainder is embedded, and the learned predicate paths are scored by cosine
behind a confidence gate.  Answers recovered this way are tagged
``fallback=True``; questions the deterministic lane answers are returned
byte-identical whether or not the lane is enabled (equivalence-tested).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Sequence

from repro.core.fallback import FallbackIndex
from repro.core.kbview import KBView
from repro.core.model import TemplateModel
from repro.core.template import Template
from repro.kb.paths import PredicatePath
from repro.kb.triple import is_literal, literal_value
from repro.nlp.embed import embed_tokens
from repro.nlp.ner import EntityRecognizer
from repro.nlp.tokenizer import tokenize
from repro.taxonomy.conceptualizer import Conceptualizer


@dataclass(frozen=True, slots=True)
class AnswerResult:
    """Outcome of answering one BFQ."""

    question: str
    value: str | None  # best single value (argmax_v), unquoted
    values: tuple[str, ...]  # full answer set V(e, p*) of the best reading
    score: float
    entity: str | None
    template: str | None
    predicate: PredicatePath | None
    found_predicate: bool  # the #pro condition
    candidates: tuple[tuple[str, float], ...] = field(default=())
    fallback: bool = False  # answered by the semantic fallback lane

    @property
    def answered(self) -> bool:
        return self.value is not None


class OnlineAnswerer:
    """Evaluates Eq 7 against a knowledge base view and a template model.

    ``answer_cache_size`` bounds the normalized-question answer cache (0
    disables it); ``lookup_cache_size`` bounds the NER/conceptualizer LRUs;
    ``precompute`` toggles the per-template ranked predicate arrays (the
    legacy per-call ``model.predicates_for`` path is kept for the perf
    harness's before/after measurement).
    """

    def __init__(
        self,
        kbview: KBView,
        ner: EntityRecognizer,
        conceptualizer: Conceptualizer,
        model: TemplateModel,
        max_concepts: int = 4,
        answer_cache_size: int = 2048,
        lookup_cache_size: int = 8192,
        precompute: bool = True,
        fallback: FallbackIndex | None = None,
    ) -> None:
        self.kbview = kbview
        self.ner = ner
        self.conceptualizer = conceptualizer
        self.model = model
        self.max_concepts = max_concepts
        self.precompute = precompute
        # Semantic fallback lane — consulted only when Eq 7 yields no value.
        self.fallback_index = fallback
        # template text -> ranked ((path_str, path, θ), ...), parsed once
        self._ranked: dict[str, tuple[tuple[str, PredicatePath, float], ...]] = {}
        self.answer_cache_size = answer_cache_size
        self._answer_cache: OrderedDict[str, AnswerResult] = OrderedDict()
        # The serve layer (`repro.serve`) evaluates batches on executor
        # threads while live-update listeners clear caches from mutator
        # threads; the lock keeps the LRU's compound get/move/evict steps
        # atomic.  Uncontended acquisition is tens of nanoseconds — noise
        # next to one Eq 7 evaluation.  The generation counter prevents a
        # result computed *before* a clear_caches() from being inserted
        # *after* it (which would pin a pre-invalidation answer).
        self._cache_lock = threading.Lock()
        self._cache_generation = 0
        self.lookup_cache_size = lookup_cache_size
        self._install_lookup_caches()

    def _install_lookup_caches(self) -> None:
        """(Re)wrap the NER/conceptualizer lookups in bounded LRUs."""
        if self.lookup_cache_size > 0:
            self._find_mentions = lru_cache(maxsize=self.lookup_cache_size)(
                self._find_mentions_uncached
            )
            self._top_concepts = lru_cache(maxsize=self.lookup_cache_size)(
                self._top_concepts_uncached
            )
        else:
            self._find_mentions = self._find_mentions_uncached
            self._top_concepts = self._top_concepts_uncached

    # -- Pickling (process-pool serving snapshots) --------------------------

    def __getstate__(self) -> dict:
        """Pickle as a frozen serving snapshot (`repro.exec.snapshot`).

        The model, KB view, NER and conceptualizer state all ship (the KB
        backend itself pickles listener-free, see ``BackendBase``), and so
        does the warm answer cache.  The thread lock and the ``lru_cache``
        wrappers are process-local and are rebuilt on thaw.
        """
        state = self.__dict__.copy()
        del state["_cache_lock"]
        del state["_find_mentions"]
        del state["_top_concepts"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._cache_lock = threading.Lock()
        self._install_lookup_caches()

    # -- Memoized lookups ---------------------------------------------------

    def _find_mentions_uncached(self, tokens: tuple[str, ...]):
        return tuple(self.ner.find_mentions(tokens))

    def _top_concepts_uncached(
        self, entity: str, context: tuple[str, ...]
    ) -> tuple[tuple[str, float], ...]:
        concepts = self.conceptualizer.conceptualize(entity, context)
        return tuple(sorted(concepts.items(), key=lambda kv: (-kv[1], kv[0])))

    def _ranked_predicates(
        self, template_text: str
    ) -> tuple[tuple[str, PredicatePath, float], ...]:
        """``P(p|t)`` as a ranked array of (path_str, path, θ)."""
        if not self.precompute:
            distribution = self.model.predicates_for(template_text)
            return tuple(
                (str(path), path, theta) for path, theta in distribution.items()
            )
        ranked = self._ranked.get(template_text)
        if ranked is None:
            distribution = self.model.predicates_for(template_text)
            ranked = tuple(
                sorted(
                    ((str(path), path, theta) for path, theta in distribution.items()),
                    key=lambda row: (-row[2], row[0]),
                )
            )
            self._ranked[template_text] = ranked
        return ranked

    # -- Answering ----------------------------------------------------------

    def answer(self, question: str) -> AnswerResult:
        """Answer one BFQ by evaluating Eq 7 over all readings."""
        tokens = tuple(tokenize(question))
        if self.answer_cache_size > 0:
            key = " ".join(tokens)
            with self._cache_lock:
                generation = self._cache_generation
                cached = self._answer_cache.get(key)
                if cached is not None:
                    self._answer_cache.move_to_end(key)
            if cached is not None:
                if cached.question != question:
                    cached = replace(cached, question=question)
                return cached
            result = self._answer_tokens(question, tokens)
            with self._cache_lock:
                # Skip the insert when a clear_caches() raced the
                # evaluation: the result reflects pre-invalidation state
                # and must not outlive the invalidation in the cache.
                if generation == self._cache_generation:
                    self._answer_cache[key] = result
                    if len(self._answer_cache) > self.answer_cache_size:
                        self._answer_cache.popitem(last=False)
            return result
        return self._answer_tokens(question, tokens)

    def cached_answer(self, question: str) -> AnswerResult | None:
        """Answer-cache probe: the cached result for ``question`` or None.

        Never evaluates — the degraded-mode path of the serving layer uses
        this to keep answering head-of-distribution questions while the
        evaluation backend is down or overloaded, without adding load.
        """
        if self.answer_cache_size <= 0:
            return None
        key = " ".join(tokenize(question))
        with self._cache_lock:
            cached = self._answer_cache.get(key)
            if cached is not None:
                self._answer_cache.move_to_end(key)
        if cached is not None and cached.question != question:
            cached = replace(cached, question=question)
        return cached

    def answer_many(self, questions: Sequence[str]) -> list[AnswerResult]:
        """Batch API: answer every question through the warm caches.

        Returns results in input order, identical to calling :meth:`answer`
        per question (regression-tested).  Repeated questions are
        deduplicated on their *normalized* key (the answer-cache key) before
        evaluation, so a batch with duplicates costs one Eq 7 evaluation per
        unique key even when the answer cache is disabled — the property the
        serving layer's micro-batching leans on.
        """
        results: list[AnswerResult] = []
        seen: dict[str, AnswerResult] = {}
        for question in questions:
            key = " ".join(tokenize(question))
            hit = seen.get(key)
            if hit is None:
                hit = self.answer(question)
                seen[key] = hit
            elif hit.question != question:
                hit = replace(hit, question=question)
            results.append(hit)
        return results

    @property
    def fallback_enabled(self) -> bool:
        return self.fallback_index is not None

    def _answer_tokens(self, question: str, tokens: tuple[str, ...]) -> AnswerResult:
        """Cache-miss path: Eq 7 first, the fallback lane only on abstention.

        The lane never touches an answered result, so deterministic answers
        are byte-identical with the lane on or off.
        """
        mentions = self._find_mentions(tokens)
        result = self._answer_deterministic(question, tokens, mentions)
        if result.value is None and self.fallback_index is not None:
            recovered = self._fallback_answer(question, tokens, mentions)
            if recovered is not None:
                return recovered
        return result

    def _answer_deterministic(
        self, question: str, tokens: tuple[str, ...], mentions
    ) -> AnswerResult:
        """Eq 7 evaluation over one tokenized question."""
        candidate_entities = [
            (mention, entity) for mention in mentions for entity in mention.candidates
        ]
        if not candidate_entities:
            return self._no_answer(question)
        entity_prob = 1.0 / len(candidate_entities)  # uniform P(e|q), Sec 3.2

        found_predicate = False
        # Score (entity, path) readings: S = Σ_t P(e|q)·P(t|e,q)·P(p|t).
        reading_scores: dict[tuple[str, str], float] = {}
        reading_info: dict[tuple[str, str], tuple[str, PredicatePath]] = {}

        for mention, entity in candidate_entities:
            span = (mention.start, mention.end)
            context = tokens[: mention.start] + tokens[mention.end :]
            top_concepts = self._top_concepts(entity, context)
            for concept, concept_prob in top_concepts[: self.max_concepts]:
                template = Template.from_question(tokens, span, concept)
                ranked = self._ranked_predicates(template.text)
                if not ranked:
                    continue
                found_predicate = True
                for path_str, path, theta in ranked:
                    key = (entity, path_str)
                    score = entity_prob * concept_prob * theta
                    reading_scores[key] = reading_scores.get(key, 0.0) + score
                    if key not in reading_info:
                        reading_info[key] = (template.text, path)

        if not reading_scores:
            return self._no_answer(question, found_predicate)

        # Rank readings, keep the best one that yields values.
        ranked_readings = sorted(reading_scores.items(), key=lambda kv: (-kv[1], kv[0]))
        for (entity, _path_key), score in ranked_readings:
            template_text, path = reading_info[(entity, _path_key)]
            values = self.kbview.values(entity, path)
            if not values:
                continue
            rendered = tuple(sorted(render_term(v) for v in values))
            value_prob = 1.0 / len(values)
            candidates = tuple((v, score * value_prob) for v in rendered)
            return AnswerResult(
                question=question,
                value=rendered[0],
                values=rendered,
                score=score * value_prob,
                entity=entity,
                template=template_text,
                predicate=path,
                found_predicate=True,
                candidates=candidates,
            )
        return self._no_answer(question, found_predicate)

    def _fallback_answer(
        self, question: str, tokens: tuple[str, ...], mentions
    ) -> AnswerResult | None:
        """Semantic fallback lane: gated cosine retrieval over learned paths.

        Entity slotting reuses the deterministic lane's NER reading: for
        each mention the span is *removed* (symmetric with how templates are
        de-slotted at index build time) and the remainder embedded.  Per
        mention, the highest-ranked gated path whose values exist in the KB
        wins, entities tried in lexicographic order; across mentions the
        best (score, entity, path) triple wins.  ``None`` means the gate
        abstained — the caller keeps the deterministic result untouched.
        """
        index = self.fallback_index
        if index is None:
            return None
        found: list[tuple[tuple, float, str, PredicatePath, tuple[str, ...]]] = []
        for mention in mentions:
            if not mention.candidates:
                continue
            remainder = tokens[: mention.start] + tokens[mention.end :]
            qvec = embed_tokens(remainder, index.config.dim, index.config.seed)
            for path_str, score in index.gated_paths(qvec):
                path = index.path_for(path_str)
                hit = None
                for entity in sorted(set(mention.candidates)):
                    values = self.kbview.values(entity, path)
                    if values:
                        hit = (entity, values)
                        break
                if hit is not None:
                    entity, values = hit
                    found.append(((-score, entity, path_str), score, entity, path, values))
                    break  # first ranked path with values wins for this mention
        if not found:
            return None
        found.sort(key=lambda row: row[0])
        _, score, entity, path, values = found[0]
        rendered = tuple(sorted(render_term(v) for v in values))
        value_prob = 1.0 / len(values)
        return AnswerResult(
            question=question,
            value=rendered[0],
            values=rendered,
            score=score,
            entity=entity,
            template=None,
            predicate=path,
            found_predicate=True,
            candidates=tuple((v, score * value_prob) for v in rendered),
            fallback=True,
        )

    def clear_caches(self, model_changed: bool = False) -> None:
        """Drop the answer cache and the NER/conceptualizer memos.

        The ranked-predicate arrays mirror the model, so by default they
        stay; pass ``model_changed=True`` after swapping :attr:`model` (a
        train-resume on a live answerer) so stale θ rankings are dropped
        too — otherwise the answerer keeps serving the old distribution.
        """
        with self._cache_lock:
            self._answer_cache.clear()
            self._cache_generation += 1
            if model_changed:
                # Fresh dict, not .clear(): evaluator threads read the old
                # mapping without the lock and must see either version
                # whole, never a half-cleared one.
                self._ranked = {}
        for memo in (self._find_mentions, self._top_concepts):
            cache_clear = getattr(memo, "cache_clear", None)
            if cache_clear is not None:
                cache_clear()

    def replace_model(
        self, model: TemplateModel, fallback: FallbackIndex | None = None
    ) -> None:
        """Swap in a retrained model (and matching fallback index) safely.

        Invalidates every model-derived cache — the answer cache, the
        NER/conceptualizer memos, and the ranked θ arrays — so the next
        answer reflects the new model rather than stale rankings.
        """
        self.model = model
        self.fallback_index = fallback
        self.clear_caches(model_changed=True)

    def cache_info(self) -> dict[str, object]:
        """Serving-cache occupancy/hit counters for ops dashboards."""
        info: dict[str, object] = {
            "answer_cache_entries": len(self._answer_cache),
            "ranked_templates": len(self._ranked),
        }
        for name, memo in (("ner", self._find_mentions), ("concepts", self._top_concepts)):
            stats = getattr(memo, "cache_info", None)
            if stats is not None:
                counters = stats()
                info[f"{name}_hits"] = counters.hits
                info[f"{name}_misses"] = counters.misses
        return info

    @staticmethod
    def _no_answer(question: str, found_predicate: bool = False) -> AnswerResult:
        return AnswerResult(
            question=question, value=None, values=(), score=0.0, entity=None,
            template=None, predicate=None, found_predicate=found_predicate,
        )


def render_term(term: str) -> str:
    """Literal terms lose their quote prefix; resource terms pass through."""
    if is_literal(term):
        return literal_value(term)
    return term
