"""Unified lookup over direct and expanded predicates.

The generative model treats a predicate and an expanded predicate uniformly
(Sec 6.1: 'the KBQA model ... is flexible for expanded predicates; we only
need some slight changes').  :class:`KBView` is that adaptation point: one
interface for ``paths_between(e, v)`` (EM candidate enumeration, Eq 24) and
``values(e, p+)`` (online ``P(v|e,p)``, Eq 6), backed by the base store for
length-1 paths and by the materialized :class:`ExpandedStore` — with a live
graph-walk fallback for entities outside the expansion's seed set.
"""

from __future__ import annotations

from repro.kb.expansion import ExpandedStore
from repro.kb.paths import PredicatePath, follow
from repro.kb.backend import KBBackend


class KBView:
    """Direct + expanded predicate lookups against one knowledge base."""

    def __init__(self, store: KBBackend, expanded: ExpandedStore | None = None) -> None:
        self.store = store
        self.expanded = expanded

    @property
    def max_path_length(self) -> int:
        return self.expanded.max_length if self.expanded else 1

    def paths_between(self, entity: str, value: str) -> set[PredicatePath]:
        """All predicate paths connecting (entity, value) — Eq 8's existence
        test and the M-step pruning set of Eq 24.

        Direct predicates are decoded fresh; the expanded contribution is a
        shared frozen view, so when there are no direct hits it is returned
        as-is without copying."""
        direct = self.store.predicates_between(entity, value)
        if self.expanded is None:
            return {PredicatePath.single(p) for p in direct}
        expanded = self.expanded.paths_between(entity, value)
        if not direct:
            return expanded
        paths = {PredicatePath.single(p) for p in direct}
        paths.update(expanded)
        return paths

    def values(self, entity: str, path: PredicatePath) -> set[str]:
        """``V(e, p+)``.  Expanded paths use the materialized store when the
        entity was a BFS seed and fall back to a graph traversal otherwise
        (online questions may mention entities absent from the QA corpus).

        May return a shared frozen view from :class:`ExpandedStore` — treat
        the result as read-only (all in-tree callers do).
        """
        if path.is_direct:
            return self.store.objects(entity, path.predicates[0])
        if self.expanded is not None:
            found = self.expanded.objects(entity, path)
            if found:
                return found
        return follow(self.store, entity, path)

    def value_probability(self, entity: str, path: PredicatePath, value: str) -> float:
        """``P(v|e,p)`` per Eq 6: uniform over the value set."""
        values = self.values(entity, path)
        if value not in values:
            return 0.0
        return 1.0 / len(values)

    def has_entity(self, entity: str) -> bool:
        return self.store.has_subject(entity)
