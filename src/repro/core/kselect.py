"""Selection of the expansion length ``k`` (Sec 6.3, Eq 29, Table 4).

``valid(k)`` counts, over the most frequent entities, the ``(s, p+, o)``
triples of length exactly ``k`` whose (subject, object) pair also appears as
a direct fact in the Infobox.  A length whose triples mostly fail the check
adds noise rather than coverage; the paper picks the largest ``k`` before
the collapse (k = 3 on their data).
"""

from __future__ import annotations

from repro.data.infobox import Infobox
from repro.kb.expansion import expand_predicates
from repro.kb.backend import KBBackend
from repro.kb.triple import is_literal, literal_value


def top_entities_by_frequency(store: KBBackend, count: int) -> list[str]:
    """Entities ordered by triple frequency (the paper samples the top
    17,000 'because they have richer facts')."""
    subjects = [
        (store.out_degree(s), s)
        for s in store.subjects_iter()
        if s.startswith("m.")  # entity nodes, not CVT mediators
    ]
    subjects.sort(key=lambda pair: (-pair[0], pair[1]))
    return [s for _degree, s in subjects[:count]]


def valid_k(
    store: KBBackend,
    infobox: Infobox,
    max_length: int = 3,
    sample_entities: int = 500,
) -> dict[int, int]:
    """Compute ``valid(k)`` for each ``k`` in ``1..max_length`` (Eq 29)."""
    entities = top_entities_by_frequency(store, sample_entities)
    expanded = expand_predicates(store, entities, max_length=max_length)
    counts = {k: 0 for k in range(1, max_length + 1)}
    for subject, path, obj in expanded.triples():
        if not is_literal(obj):
            continue
        if infobox.has_fact(subject, literal_value(obj)):
            counts[len(path)] += 1
    return counts


def choose_k(valid_counts: dict[int, int], collapse_ratio: float = 0.5) -> int:
    """Pick the largest k before valid(k) collapses (paper's Sec 6.3 rule).

    A length ``k`` is kept while ``valid(k)`` retains at least
    ``collapse_ratio`` of the previous length's count *or* still contributes
    a nontrivial number of meaningful facts; the paper keeps k = 3 despite
    the drop because the surviving triples are the CVT relations.
    """
    if not valid_counts:
        return 1
    chosen = 1
    previous = valid_counts.get(1, 0)
    for k in sorted(valid_counts)[1:]:
        current = valid_counts[k]
        if previous > 0 and current == 0:
            break
        chosen = k
        if previous > 0 and current / previous < collapse_ratio:
            break
        previous = current
    return chosen
