"""Benchmark construction (QALD-like, WebQuestions-like, complex set).

The paper evaluates on QALD-1/3/5 and WebQuestions (Table 5), each a mix of
binary factoid questions (BFQs) and non-BFQs.  We rebuild that structure
against the synthetic world with three BFQ difficulty strata:

* **seen surface** — a training paraphrase with a (possibly) different
  entity: the template is known, KBQA should answer;
* **unseen surface** — a held-out paraphrase (``test_only``): the template
  was never learned, reproducing the paper's strict-template-matching misses;
* **rare intent** — intents that are under-sampled in the corpus.

Non-BFQs (superlatives, comparisons, counts, booleans, listings,
descriptions) carry computable gold answers but no single entity-predicate
reading; KBQA is expected to refuse them, bounding its recall by the BFQ
ratio exactly as Tables 7-10 show.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus import surface
from repro.data.world import SCHEMA_BY_INTENT, World
from repro.utils.rng import SeedStream


@dataclass(frozen=True, slots=True)
class BenchmarkQuestion:
    qid: str
    question: str
    gold_values: frozenset[str]
    gold_intent: str | None
    entity: str | None
    is_bfq: bool
    category: str
    meta: dict = field(default_factory=dict, hash=False, compare=False)


@dataclass
class Benchmark:
    """A named evaluation set."""

    name: str
    questions: list[BenchmarkQuestion]

    @property
    def n_total(self) -> int:
        return len(self.questions)

    @property
    def n_bfq(self) -> int:
        return sum(1 for q in self.questions if q.is_bfq)

    @property
    def bfq_ratio(self) -> float:
        return self.n_bfq / self.n_total if self.questions else 0.0

    def bfqs(self) -> list[BenchmarkQuestion]:
        return [q for q in self.questions if q.is_bfq]


RARE_INTENTS = ("flows_through", "pages", "students", "elevation")

# Surfaces shared across intents *within the same entity type* — the only
# genuinely ambiguous cases, since cross-type shares (how tall: person vs
# mountain) are resolved by conceptualization.  A question drawn here carries
# one of the intents as gold, sampled uniformly; a system answering with the
# sibling intent is judged partially right — the mechanism behind the paper's
# #par column ('place of birth' for a lived-in question, etc.).
AMBIGUOUS_SURFACES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("how big is {e}?", ("population", "area")),
    ("where is {e} from?", ("pob", "residence")),
)


def build_qald_like(
    name: str,
    world: World,
    seed: int = 7,
    n_bfq_seen: int = 9,
    n_bfq_unseen: int = 2,
    n_bfq_rare: int = 1,
    n_nonbfq: int = 38,
    n_bfq_ambiguous: int | None = None,
) -> Benchmark:
    """A QALD-style benchmark with the requested BFQ / non-BFQ mix.

    ``n_bfq_ambiguous`` of the *seen* questions use surfaces shared across
    intents (defaults to roughly a quarter of the seen stratum).
    """
    if n_bfq_ambiguous is None:
        n_bfq_ambiguous = max(1, n_bfq_seen // 4) if n_bfq_seen else 0
    n_bfq_ambiguous = min(n_bfq_ambiguous, n_bfq_seen)
    stream = SeedStream(seed).substream(f"benchmark:{name}")
    questions: list[BenchmarkQuestion] = []
    questions += _bfq_questions(
        world, stream.substream("seen"), n_bfq_seen - n_bfq_ambiguous, held_out=False
    )
    questions += _ambiguous_bfq_questions(
        world, stream.substream("ambiguous"), n_bfq_ambiguous
    )
    questions += _bfq_questions(world, stream.substream("unseen"), n_bfq_unseen, held_out=True)
    questions += _bfq_questions(
        world, stream.substream("rare"), n_bfq_rare, held_out=False, intents=RARE_INTENTS
    )
    questions += _nonbfq_questions(world, stream.substream("nonbfq"), n_nonbfq)
    questions = stream.shuffled(questions)
    questions = [_with_qid(q, f"{name}-{i:03d}") for i, q in enumerate(questions)]
    return Benchmark(name, questions)


def build_webquestions_like(world: World, seed: int = 7, total: int = 600) -> Benchmark:
    """A WebQuestions-style set: larger, mostly non-BFQ (Table 5/10)."""
    n_bfq_seen = int(total * 0.26)
    n_bfq_unseen = int(total * 0.07)
    n_bfq_rare = int(total * 0.02)
    n_nonbfq = total - n_bfq_seen - n_bfq_unseen - n_bfq_rare
    return build_qald_like(
        "webquestions", world, seed=seed,
        n_bfq_seen=n_bfq_seen, n_bfq_unseen=n_bfq_unseen,
        n_bfq_rare=n_bfq_rare, n_nonbfq=n_nonbfq,
    )


# ---------------------------------------------------------------------------
# BFQ questions
# ---------------------------------------------------------------------------


def _bfq_questions(
    world: World,
    stream: SeedStream,
    count: int,
    held_out: bool,
    intents: tuple[str, ...] | None = None,
) -> list[BenchmarkQuestion]:
    rng = stream.rng()
    pool = _answerable_instances(world, intents)
    if not pool:
        return []
    questions: list[BenchmarkQuestion] = []
    attempts = 0
    while len(questions) < count and attempts < count * 20:
        attempts += 1
        intent, node = rng.choice(pool)
        bank = surface.held_out_surfaces(intent) if held_out else surface.train_surfaces(intent)
        if not bank:
            continue
        chosen = rng.choice(bank)
        gold = world.gold_values(node, intent)
        if not gold:
            continue
        category = "bfq_unseen" if held_out else (
            "bfq_rare" if intents else "bfq_seen"
        )
        questions.append(BenchmarkQuestion(
            qid="", question=chosen.text.format(e=world.name_of(node)),
            gold_values=frozenset(gold), gold_intent=intent, entity=node,
            is_bfq=True, category=category,
        ))
    return questions


def _ambiguous_bfq_questions(
    world: World, stream: SeedStream, count: int
) -> list[BenchmarkQuestion]:
    """BFQs drawn from cross-intent surfaces (the #par generators)."""
    rng = stream.rng()
    questions: list[BenchmarkQuestion] = []
    attempts = 0
    while len(questions) < count and attempts < count * 30 + 30:
        attempts += 1
        text, intents = rng.choice(AMBIGUOUS_SURFACES)
        gold_intent = rng.choice(intents)
        schema = SCHEMA_BY_INTENT[gold_intent]
        candidates = [
            e for etype in schema.domain_types for e in world.of_type(etype)
            if e.get_fact(gold_intent)
        ]
        if not candidates:
            continue
        entity = rng.choice(candidates)
        gold = world.gold_values(entity.node, gold_intent)
        if not gold:
            continue
        questions.append(BenchmarkQuestion(
            qid="", question=text.format(e=entity.name),
            gold_values=frozenset(gold), gold_intent=gold_intent,
            entity=entity.node, is_bfq=True, category="bfq_ambiguous",
        ))
    return questions


def _answerable_instances(world: World, intents=None) -> list[tuple[str, str]]:
    wanted = set(intents) if intents else None
    pool: list[tuple[str, str]] = []
    for node, entity in world.entities.items():
        for intent in entity.facts:
            if intent not in SCHEMA_BY_INTENT or intent not in surface.SURFACES:
                continue
            if wanted is not None and intent not in wanted:
                continue
            pool.append((intent, node))
    return pool


# ---------------------------------------------------------------------------
# Non-BFQ questions
# ---------------------------------------------------------------------------


def _nonbfq_questions(world: World, stream: SeedStream, count: int) -> list[BenchmarkQuestion]:
    rng = stream.rng()
    builders = (
        _superlative_question,
        _comparison_question,
        _count_question,
        _boolean_question,
        _listing_question,
        _description_question,
    )
    questions: list[BenchmarkQuestion] = []
    i = 0
    attempts = 0
    while len(questions) < count and attempts < count * 20:
        attempts += 1
        built = builders[i % len(builders)](world, rng)
        i += 1
        if built is not None:
            questions.append(built)
    return questions


def _superlative_question(world: World, rng) -> BenchmarkQuestion | None:
    choices = (
        ("city", "population", "which city has the largest population?"),
        ("city", "area", "which city has the biggest area?"),
        ("mountain", "elevation", "which mountain is the highest?"),
        ("country", "population", "which country has the most people?"),
    )
    etype, intent, question = rng.choice(choices)
    best_node, best_value = None, -1
    for entity in world.of_type(etype):
        fact = entity.get_fact(intent)
        if fact and int(fact[0]) > best_value:
            best_node, best_value = entity.node, int(fact[0])
    if best_node is None:
        return None
    return BenchmarkQuestion(
        qid="", question=question, gold_values=frozenset({world.name_of(best_node)}),
        gold_intent=None, entity=None, is_bfq=False, category="nonbfq_superlative",
    )


def _comparison_question(world: World, rng) -> BenchmarkQuestion | None:
    cities = [c for c in world.of_type("city") if c.get_fact("population")]
    if len(cities) < 2:
        return None
    a, b = rng.sample(cities, 2)
    winner = a if int(a.get_fact("population")[0]) >= int(b.get_fact("population")[0]) else b
    return BenchmarkQuestion(
        qid="", question=f"which city has more people , {a.name} or {b.name}?",
        gold_values=frozenset({winner.name}), gold_intent=None, entity=None,
        is_bfq=False, category="nonbfq_comparison",
    )


def _count_question(world: World, rng) -> BenchmarkQuestion | None:
    countries = world.of_type("country")
    if not countries:
        return None
    country = rng.choice(countries)
    n = sum(
        1 for city in world.of_type("city")
        if city.get_fact("located_country") == (country.node,)
    )
    return BenchmarkQuestion(
        qid="", question=f"how many cities are there in {country.name}?",
        gold_values=frozenset({str(n)}), gold_intent=None, entity=country.node,
        is_bfq=False, category="nonbfq_count",
    )


def _boolean_question(world: World, rng) -> BenchmarkQuestion | None:
    people = [p for p in world.of_type("person") if p.get_fact("spouse")]
    if len(people) < 2:
        return None
    a = rng.choice(people)
    if rng.random() < 0.5:
        b_node = a.get_fact("spouse")[0]
        gold = "yes"
    else:
        b = rng.choice(people)
        b_node = b.node
        gold = "yes" if a.get_fact("spouse") == (b_node,) else "no"
    return BenchmarkQuestion(
        qid="", question=f"is {a.name} married to {world.name_of(b_node)}?",
        gold_values=frozenset({gold}), gold_intent=None, entity=a.node,
        is_bfq=False, category="nonbfq_boolean",
    )


def _listing_question(world: World, rng) -> BenchmarkQuestion | None:
    countries = world.of_type("country")
    if not countries:
        return None
    country = rng.choice(countries)
    cities = sorted(
        city.name for city in world.of_type("city")
        if city.get_fact("located_country") == (country.node,)
    )
    return BenchmarkQuestion(
        qid="", question=f"list all cities in {country.name} ordered by population",
        gold_values=frozenset(cities), gold_intent=None, entity=country.node,
        is_bfq=False, category="nonbfq_listing",
    )


def _description_question(world: World, rng) -> BenchmarkQuestion | None:
    cities = world.of_type("city")
    if not cities:
        return None
    city = rng.choice(cities)
    return BenchmarkQuestion(
        qid="", question=f"why is {city.name} worth visiting?",
        gold_values=frozenset(), gold_intent=None, entity=city.node,
        is_bfq=False, category="nonbfq_description",
    )


def _with_qid(question: BenchmarkQuestion, qid: str) -> BenchmarkQuestion:
    return BenchmarkQuestion(
        qid=qid, question=question.question, gold_values=question.gold_values,
        gold_intent=question.gold_intent, entity=question.entity,
        is_bfq=question.is_bfq, category=question.category, meta=question.meta,
    )


# ---------------------------------------------------------------------------
# Complex questions (Table 15 analogues)
# ---------------------------------------------------------------------------


def build_complex_benchmark(world: World, seed: int = 7) -> Benchmark:
    """Eight complex questions mirroring Table 15's composition patterns."""
    rng = SeedStream(seed).substream("complex").rng()
    questions: list[BenchmarkQuestion] = []

    def add(question: str, gold: set[str], pattern: str) -> None:
        questions.append(BenchmarkQuestion(
            qid=f"complex-{len(questions):02d}", question=question,
            gold_values=frozenset(gold), gold_intent=None, entity=None,
            is_bfq=False, category="complex", meta={"pattern": pattern},
        ))

    country = _pick(rng, world, "country", lambda e: e.get_fact("capital"))
    if country is not None:
        capital = world.entity(country.get_fact("capital")[0])
        if capital.get_fact("population"):
            add(
                f"how many people are there in the capital of {country.name}?",
                set(capital.get_fact("population")), "capital -> population",
            )
        if capital.get_fact("area"):
            add(
                f"what is the area of the capital of {country.name}?",
                set(capital.get_fact("area")), "capital -> area",
            )

    country2 = _pick(
        rng, world, "country",
        lambda e: e.get_fact("capital")
        and world.entity(e.get_fact("capital")[0]).get_fact("area"),
        exclude=country.node if country else None,
    )
    if country2 is not None:
        capital2 = world.entity(country2.get_fact("capital")[0])
        add(
            f"how large is the capital of {country2.name}?",
            set(capital2.get_fact("area")), "capital -> area (ambiguous surface)",
        )

    person = _pick(rng, world, "person", lambda e: e.get_fact("spouse"))
    if person is not None:
        spouse = world.entity(person.get_fact("spouse")[0])
        add(
            f"when was {person.name} 's wife born?",
            set(spouse.get_fact("dob")), "spouse -> dob",
        )

    book = _pick(
        rng, world, "book",
        lambda e: e.get_fact("author")
        and world.entity(e.get_fact("author")[0]).get_fact("works_written"),
    )
    if book is not None:
        author = world.entity(book.get_fact("author")[0])
        add(
            f"what are books written by the author of {book.name}?",
            world.gold_values(author.node, "works_written"), "author -> works_written",
        )

    band = _pick(rng, world, "band", lambda e: e.get_fact("members"))
    if band is not None:
        instruments: set[str] = set()
        for member in band.get_fact("members"):
            instruments |= world.gold_values(member, "instrument")
        if instruments:
            add(
                f"what instrument do members of {band.name} play?",
                instruments, "members -> instrument",
            )

    company = _pick(
        rng, world, "company",
        lambda e: e.get_fact("ceo") and world.entity(e.get_fact("ceo")[0]).get_fact("dob"),
    )
    if company is not None:
        ceo = world.entity(company.get_fact("ceo")[0])
        add(
            f"what is the birthday of the ceo of {company.name}?",
            set(ceo.get_fact("dob")), "ceo -> dob",
        )

    company2 = _pick(
        rng, world, "company",
        lambda e: e.get_fact("headquarters")
        and world.entity(e.get_fact("headquarters")[0]).get_fact("located_country"),
        exclude=company.node if company else None,
    )
    if company2 is not None:
        hq = world.entity(company2.get_fact("headquarters")[0])
        add(
            f"in which country is the headquarter of {company2.name} located?",
            world.gold_values(hq.node, "located_country"), "headquarters -> country",
        )

    return Benchmark("complex", questions)


def _pick(rng, world: World, etype: str, predicate, exclude: str | None = None):
    candidates = [
        e for e in world.of_type(etype)
        if e.node != exclude and predicate(e)
    ]
    if not candidates:
        return None
    return rng.choice(candidates)
