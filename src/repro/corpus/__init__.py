"""QA corpus substrate: containers, surface banks, generator, benchmarks.

Stands in for the 41M-pair Yahoo! Answers corpus: QA pairs are generated
from the world's ground truth through per-intent natural-language surface
banks, with answer sentences that embed the value among noise tokens
(Table 3's structure), plus wrong-answer and chit-chat noise.
"""

from repro.corpus.qa import QAPair, QACorpus
from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.corpus.sentences import generate_sentences
from repro.corpus.benchmark import Benchmark, BenchmarkQuestion, build_qald_like, build_webquestions_like, build_complex_benchmark

__all__ = [
    "QAPair",
    "QACorpus",
    "CorpusConfig",
    "generate_corpus",
    "generate_sentences",
    "Benchmark",
    "BenchmarkQuestion",
    "build_qald_like",
    "build_webquestions_like",
    "build_complex_benchmark",
]
