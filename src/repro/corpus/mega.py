"""Streaming mega-corpus compiler: N-million-triple worlds in bounded memory.

The paper's headline claim is online QA over billion-triple KBs, but the
suite's `build_world` materializes every entity before compiling — fine at
10^3 triples, impossible at 10^6+.  :func:`compile_mega` instead streams:

* a **small anchor world** (the ordinary ``WorldConfig.small`` build) is
  compiled first and supplies the shared fact targets — cities, countries
  and value-pool entities every minted fact points at;
* entities are then minted in fixed-size **chunks**
  (:func:`~repro.data.world.mint_chunk`): each chunk derives from
  ``(seed, chunk index)`` alone, its triples are generated lazily and flow
  straight into the store through the batched
  :meth:`~repro.kb.disk.DiskTripleStore.ingest_triples` seam — the full
  fact list never exists in memory;
* **aligned gold QA pairs** are emitted per chunk as the facts are
  generated, streamed to ``gold.jsonl``: plain rows (the skew / churn /
  paraphrase query set), ``temporal`` rows carrying an old→new supersession
  edit, and ``churn`` rows naming the mutation targets for sustained-write
  scenarios.

Peak resident state is the anchor world plus one chunk, independent of the
triple target; ``manifest.json`` records the accounting
(``peak_resident_entities``) plus ``ru_maxrss`` for observability, and the
scenario harness asserts the bound.

The same code path runs against the in-memory backend (``backend="memory"``)
— identical entity/triple sequence, hence identical dictionary ids — which
is what the streaming-vs-materialized equivalence test keys on.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.corpus.qa import QAPair
from repro.data.compile import _CVT_DECORATIONS, CompiledKB, compile_freebase_like
from repro.data.world import (
    LITERAL,
    SCHEMA_BY_INTENT,
    ChunkSpec,
    MintAnchors,
    WorldConfig,
    WorldEntity,
    build_world,
    mint_chunk,
)
from repro.kb.triple import Triple, make_literal
from repro.utils.rng import stable_hash

# One unambiguous, dominant-weight *training* surface per gold intent: the
# deterministic path must resolve these with recall 1.0, so each is the
# highest-weight non-test_only surface whose template maps squarely onto the
# gold predicate path.
GOLD_SURFACES: dict[str, str] = {
    "dob": "when was {e} born?",
    "pob": "where was {e} born?",
    "residence": "where does {e} live?",
    "height": "how tall is {e}?",
    "profession": "what is the profession of {e}?",
    "spouse": "who is {e} married to?",
    "population": "what is the population of {e}?",
    "area": "what is the area of {e}?",
    "located_country": "which country is {e} in?",
    "founded": "when was {e} founded?",
}

_PERSON_GOLD_INTENTS = ("dob", "pob", "residence", "height", "profession", "spouse")
_CITY_GOLD_INTENTS = ("population", "area", "located_country", "founded")


@dataclass(frozen=True, slots=True)
class MegaSpec:
    """Size/shape of a mega build; chunk sizes bound resident memory."""

    triples: int = 1_000_000
    seed: int = 7
    chunk_people: int = 4_000
    chunk_cities: int = 1_000
    gold_per_chunk: int = 24  # plain gold rows (people + cities) per chunk
    temporal_per_chunk: int = 4
    churn_per_chunk: int = 4

    def __post_init__(self) -> None:
        if self.triples <= 0:
            raise ValueError(f"triples must be > 0, got {self.triples}")
        if self.chunk_people <= 0 or self.chunk_cities < 0:
            raise ValueError("chunk sizes must be positive")
        reserved = self.gold_per_chunk + self.temporal_per_chunk + self.churn_per_chunk
        if reserved > self.chunk_people:
            raise ValueError(
                f"gold+temporal+churn rows per chunk ({reserved}) exceed "
                f"chunk_people ({self.chunk_people})"
            )


@dataclass
class MegaBuild:
    """What :func:`compile_mega` hands back: store + paths + accounting."""

    kb: CompiledKB
    manifest: dict
    out_dir: str

    @property
    def gold_path(self) -> str:
        return os.path.join(self.out_dir, "gold.jsonl")

    def iter_gold(self) -> Iterator[QAPair]:
        """Stream this build's gold QA rows from ``gold.jsonl``."""
        with open(self.gold_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield QAPair.from_json(line)


def load_manifest(out_dir: str | Path) -> dict:
    """Read a finished mega build's ``manifest.json`` accounting."""
    with open(Path(out_dir) / "manifest.json", "r", encoding="utf-8") as handle:
        return json.load(handle)


def iter_gold(out_dir: str | Path) -> Iterator[QAPair]:
    """Stream the gold QA rows of a finished mega build."""
    with open(Path(out_dir) / "gold.jsonl", "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield QAPair.from_json(line)


def _chunk_triples(
    minted: list[WorldEntity], chunk_index: int
) -> Iterator[Triple]:
    """Freebase-like triples for one chunk, lazily.

    Mirrors :func:`~repro.data.compile.compile_freebase_like`'s encoding
    (name + category base triples first, then facts; CVT mediators with
    decoration edges for compound intents) with chunk-scoped CVT node ids so
    chunks never collide with the anchor compile or each other.
    """
    for entity in minted:
        yield Triple(entity.node, "name", make_literal(entity.name))
        for concept, _weight in entity.concepts:
            yield Triple(entity.node, "category", concept)
    cvt_counter = 0
    for entity in minted:
        for intent, values in entity.facts.items():
            schema = SCHEMA_BY_INTENT[intent]
            for value in values:
                if schema.value_kind == LITERAL:
                    yield Triple(entity.node, schema.fb_path[0], make_literal(value))
                elif not schema.is_cvt:
                    yield Triple(entity.node, schema.fb_path[0], value)
                else:
                    cvt = f"cvt.mega_{chunk_index:05d}_{intent}_{cvt_counter:06d}"
                    cvt_counter += 1
                    yield Triple(entity.node, schema.fb_path[0], cvt)
                    yield Triple(cvt, schema.fb_path[1], value)
                    decoration = _CVT_DECORATIONS.get(intent)
                    if decoration is not None:
                        pred, make_value = decoration
                        salt = stable_hash(entity.node, intent, value)
                        yield Triple(cvt, pred, make_literal(make_value(salt)))


def _gold_values(
    entity: WorldEntity,
    intent: str,
    anchors: MintAnchors,
    local_names: dict[str, str],
) -> list[str]:
    """Expected answer strings: literals, or target display names."""
    schema = SCHEMA_BY_INTENT[intent]
    raw = entity.get_fact(intent)
    if schema.value_kind == LITERAL:
        return sorted(raw)
    return sorted(
        local_names.get(target) or anchors.names[target] for target in raw
    )


def _gold_row(
    qid: str,
    entity: WorldEntity,
    intent: str,
    anchors: MintAnchors,
    local_names: dict[str, str],
    kind: str,
    extra: dict | None = None,
) -> QAPair:
    values = _gold_values(entity, intent, anchors, local_names)
    meta = {
        "kind": kind,
        "node": entity.node,
        "name": entity.name,
        "etype": entity.etype,
        "intent": intent,
        "values": values,
        "concepts": [[c, w] for c, w in entity.concepts],
    }
    if extra:
        meta.update(extra)
    question = GOLD_SURFACES[intent].format(e=entity.name)
    return QAPair(qid=qid, question=question, answer=values[0], meta=meta)


def _person_intent(entity: WorldEntity, index: int) -> str:
    intent = _PERSON_GOLD_INTENTS[index % len(_PERSON_GOLD_INTENTS)]
    if not entity.get_fact(intent):  # e.g. spouse on an unmarried person
        return "dob"
    return intent


def _chunk_gold(
    spec: MegaSpec,
    chunk_index: int,
    minted: list[WorldEntity],
    anchors: MintAnchors,
) -> Iterator[QAPair]:
    """Gold rows for one chunk: plain, then temporal, then churn."""
    local_names = {e.node: e.name for e in minted}
    people = [e for e in minted if e.etype == "person"]
    cities = [e for e in minted if e.etype == "city"]
    n_city_gold = min(len(cities), max(1, spec.gold_per_chunk // 4))
    n_person_gold = spec.gold_per_chunk - n_city_gold
    row = 0
    for i, entity in enumerate(people[:n_person_gold]):
        yield _gold_row(
            f"mega-{chunk_index:05d}-{row:04d}", entity,
            _person_intent(entity, i), anchors, local_names, "plain",
        )
        row += 1
    for i, entity in enumerate(cities[:n_city_gold]):
        yield _gold_row(
            f"mega-{chunk_index:05d}-{row:04d}", entity,
            _CITY_GOLD_INTENTS[i % len(_CITY_GOLD_INTENTS)],
            anchors, local_names, "plain",
        )
        row += 1
    # temporal supersession targets: residence flips to a different anchor
    # city.  The compiled KB holds the OLD value; the scenario applies
    # delete(old)+add(new) and asserts the fresh answer wins.
    offset = n_person_gold
    for i, entity in enumerate(people[offset : offset + spec.temporal_per_chunk]):
        old_city = entity.get_fact("residence")[0]
        position = anchors.cities.index(old_city)
        new_city = anchors.cities[(position + 1) % len(anchors.cities)]
        yield _gold_row(
            f"mega-{chunk_index:05d}-{row:04d}", entity, "residence",
            anchors, local_names, "temporal",
            extra={
                "supersede": {
                    "subject": entity.node,
                    "predicate": "residence",
                    "old_object": old_city,
                    "new_object": new_city,
                    "old_value": anchors.names[old_city],
                    "new_value": anchors.names[new_city],
                }
            },
        )
        row += 1
    # churn targets: height literal flipped back and forth during serving.
    offset += spec.temporal_per_chunk
    for entity in people[offset : offset + spec.churn_per_chunk]:
        old = entity.get_fact("height")[0]
        new = str(int(old) + 1)
        yield _gold_row(
            f"mega-{chunk_index:05d}-{row:04d}", entity, "height",
            anchors, local_names, "churn",
            extra={
                "mutate": {
                    "subject": entity.node,
                    "predicate": "height",
                    "old_object": make_literal(old),
                    "new_object": make_literal(new),
                }
            },
        )
        row += 1


def _ingest(store, triples: Iterator[Triple]) -> int:
    """Route triples through the batched seam when the backend has one."""
    ingest = getattr(store, "ingest_triples", None)
    if ingest is not None:
        return ingest(triples)
    return store.add_all(triples)


def compile_mega(
    spec: MegaSpec,
    out_dir: str | Path,
    *,
    backend: str = "disk",
) -> MegaBuild:
    """Compile a mega world of at least ``spec.triples`` triples into
    ``out_dir`` (``kb.db`` + ``gold.jsonl`` + ``manifest.json``).

    Streaming: chunks are minted, converted to triples and ingested one at a
    time; gold rows are written as they are generated.  ``backend="memory"``
    runs the identical sequence against an in-memory store (no ``kb.db``) —
    the reference path for the equivalence suite.
    """
    if backend not in ("disk", "memory"):
        raise ValueError(f"mega backend must be 'disk' or 'memory', got {backend!r}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    kb_path = str(out / "kb.db") if backend == "disk" else None
    if kb_path is not None:
        for suffix in ("", "-wal", "-shm"):  # recompile from scratch
            try:
                os.unlink(kb_path + suffix)
            except OSError:
                pass

    anchor_world = build_world(WorldConfig.small(seed=spec.seed))
    kb = compile_freebase_like(anchor_world, backend=backend, db_path=kb_path)
    store = kb.store
    anchors = MintAnchors.from_world(anchor_world)
    anchor_entities = len(anchor_world.entities)
    anchor_triples = len(store)

    chunk_index = person_serial = city_serial = 0
    gold_rows = 0
    minted_entities = 0
    triples_total = anchor_triples
    peak_resident = anchor_entities
    gold_path = out / "gold.jsonl"
    with open(gold_path, "w", encoding="utf-8") as gold_file:
        while triples_total < spec.triples:
            chunk_spec = ChunkSpec(
                seed=spec.seed,
                index=chunk_index,
                n_people=spec.chunk_people,
                n_cities=spec.chunk_cities,
                person_start=person_serial,
                city_start=city_serial,
            )
            minted = mint_chunk(chunk_spec, anchors)
            triples_total += _ingest(store, _chunk_triples(minted, chunk_index))
            for pair in _chunk_gold(spec, chunk_index, minted, anchors):
                gold_file.write(pair.to_json())
                gold_file.write("\n")
                gold_rows += 1
            minted_entities += len(minted)
            peak_resident = max(peak_resident, anchor_entities + len(minted))
            person_serial += spec.chunk_people
            city_serial += spec.chunk_cities
            chunk_index += 1

    manifest = {
        "schema": "mega-v1",
        "seed": spec.seed,
        "backend": backend,
        "triples_target": spec.triples,
        "triples": triples_total,
        "anchor_triples": anchor_triples,
        "anchor_entities": anchor_entities,
        "minted_entities": minted_entities,
        "total_entities": anchor_entities + minted_entities,
        "peak_resident_entities": peak_resident,
        "chunks": chunk_index,
        "chunk_people": spec.chunk_people,
        "chunk_cities": spec.chunk_cities,
        "gold_rows": gold_rows,
        "kb_path": kb_path,
        "ru_maxrss_kb": _ru_maxrss_kb(),
    }
    with open(out / "manifest.json", "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return MegaBuild(kb=kb, manifest=manifest, out_dir=str(out))


def _ru_maxrss_kb() -> int | None:
    """Process peak RSS in KiB (Linux semantics); None when unavailable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
