"""Per-intent natural-language surface banks.

Each intent carries a bank of question *surfaces* — the paraphrase variety
that, after conceptualization, becomes the paper's template space.  Three
deliberate properties shape the learning problem exactly as the paper
describes it:

* **diversity** — many surfaces per intent, including noun-phrase forms
  (``the capital of {e}``) that complex-question decomposition relies on;
* **ambiguity** — some surfaces are shared across intents with different
  usage weights (``how big is {e}?`` asks population or area; ``where is
  {e} from?`` asks birthplace, residence or band origin), so ``P(p|t)`` is a
  genuine distribution, not a lookup table;
* **held-out paraphrases** — surfaces marked ``test_only`` never appear in
  the training corpus; benchmark questions built from them reproduce the
  paper's template-miss failure mode (Sec 7.3.1's recall analysis).

Answer surfaces embed the value in a chatty reply, reproducing Table 3
(including the Example 2 trap where the reply also mentions the entity's
profession, which entity-value refinement must filter).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nlp.question_class import AnswerType


@dataclass(frozen=True, slots=True)
class Surface:
    """One question phrasing for an intent; ``{e}`` marks the entity slot."""

    text: str
    weight: float = 1.0
    test_only: bool = False


def _s(text: str, weight: float = 1.0, test_only: bool = False) -> Surface:
    return Surface(text, weight, test_only)


SURFACES: dict[str, tuple[Surface, ...]] = {
    "dob": (
        _s("when was {e} born?", 3.0),
        _s("what year was {e} born?", 2.0),
        _s("in which year was {e} born?"),
        _s("what is the birthday of {e}?"),
        _s("when is {e} 's birthday?"),
        _s("what is {e} 's date of birth?"),
        _s("birthday of {e}", 0.5),
        _s("how old is {e}?", 0.8),
        _s("which year saw the birth of {e}?", test_only=True),
        _s("when did {e} come into the world?", test_only=True),
    ),
    "pob": (
        _s("where was {e} born?", 3.0),
        _s("what is the birthplace of {e}?", 1.5),
        _s("in which city was {e} born?"),
        _s("what city was {e} born in?"),
        _s("birthplace of {e}", 0.5),
        _s("where is {e} from?", 1.2),
        _s("in what town did {e} first see daylight?", test_only=True),
    ),
    "residence": (
        _s("where does {e} live?", 3.0),
        _s("in which city does {e} live?"),
        _s("what city does {e} live in?"),
        _s("where is {e} living?"),
        _s("where is {e} from?", 0.6),
        _s("what place does {e} call home?", test_only=True),
    ),
    "height": (
        _s("how tall is {e}?", 3.0),
        _s("what is the height of {e}?", 2.0),
        _s("what is {e} 's height?"),
        _s("height of {e}", 0.5),
        _s("how big is {e}?", 0.3),
        _s("what does {e} measure in height?", test_only=True),
    ),
    "profession": (
        _s("what does {e} do for a living?", 2.0),
        _s("what is the profession of {e}?", 2.0),
        _s("what is {e} 's job?"),
        _s("what occupation does {e} have?"),
        _s("what line of work is {e} in?", test_only=True),
    ),
    "spouse": (
        _s("who is the wife of {e}?", 2.0),
        _s("who is the husband of {e}?", 2.0),
        _s("who is {e} married to?", 2.0),
        _s("who is {e} 's wife?", 1.5),
        _s("who is {e} 's husband?", 1.5),
        _s("what is {e} 's wife 's name?"),
        _s("who is the spouse of {e}?"),
        _s("{e} 's wife", 0.6),
        _s("who is marry to {e}?", 0.4),
        _s("to whom did {e} tie the knot?", test_only=True),
    ),
    "instrument": (
        _s("what instrument does {e} play?", 3.0),
        _s("which instrument does {e} play?"),
        _s("what instrument do {e} play?", 0.8),
        _s("what does {e} play?", 0.8),
        _s("what is {e} 's instrument of choice?", test_only=True),
    ),
    "works_written": (
        _s("what books did {e} write?", 2.0),
        _s("what are books written by {e}?", 1.5),
        _s("which books were written by {e}?"),
        _s("what did {e} write?"),
        _s("books by {e}", 0.5),
        _s("what titles came from the pen of {e}?", test_only=True),
    ),
    "population": (
        _s("how many people are there in {e}?", 3.0),
        _s("what is the population of {e}?", 3.0),
        _s("how many people live in {e}?", 2.0),
        _s("what is the total number of people in {e}?"),
        _s("how many residents does {e} have?"),
        _s("how many inhabitants are there in {e}?"),
        _s("population of {e}", 0.6),
        _s("how big is {e}?", 0.7),
        _s("how populous is {e}?", test_only=True),
        _s("what is the head count of {e}?", test_only=True),
    ),
    "area": (
        _s("what is the area of {e}?", 3.0),
        _s("how large is {e}?", 1.5),
        _s("what is the size of {e}?"),
        _s("how many square kilometers is {e}?"),
        _s("area of {e}", 0.5),
        _s("how big is {e}?", 0.3),
        _s("how much ground does {e} cover?", test_only=True),
    ),
    "mayor": (
        _s("who is the mayor of {e}?", 3.0),
        _s("who is {e} 's mayor?"),
        _s("what is the name of the mayor of {e}?"),
        _s("who runs the city of {e}?", 0.8),
        _s("who holds the mayor office in {e}?", test_only=True),
    ),
    "located_country": (
        _s("in which country is {e}?", 2.0),
        _s("which country is {e} in?", 2.0),
        _s("what country is {e} located in?"),
        _s("in which country is {e} located?"),
        _s("where is {e} located?", 0.6),
        _s("what nation claims {e}?", test_only=True),
    ),
    "founded": (
        _s("when was {e} founded?", 3.0),
        _s("in which year was {e} founded?"),
        _s("when was {e} established?", 1.5),
        _s("what year was {e} founded?"),
        _s("how old is {e}?", 0.4),
        _s("when did {e} open its doors?", test_only=True),
    ),
    "capital": (
        _s("what is the capital of {e}?", 3.0),
        _s("what is the capital city of {e}?"),
        _s("which city is the capital of {e}?"),
        _s("what city is {e} 's capital?"),
        _s("the capital of {e}", 0.8),
        _s("capital of {e}", 0.6),
        _s("which town houses the government of {e}?", test_only=True),
    ),
    "currency": (
        _s("what is the currency of {e}?", 3.0),
        _s("which currency is used in {e}?"),
        _s("what money do they use in {e}?"),
        _s("currency of {e}", 0.5),
        _s("what do people pay with in {e}?", test_only=True),
    ),
    "language": (
        _s("what language is spoken in {e}?", 2.0),
        _s("what is the official language of {e}?", 2.0),
        _s("which language do they speak in {e}?"),
        _s("language of {e}", 0.5),
        _s("what tongue is native to {e}?", test_only=True),
    ),
    "headquarters": (
        _s("where is the headquarter of {e}?", 2.0),
        _s("what is the headquarter of {e}?", 1.5),
        _s("where is {e} headquartered?", 1.5),
        _s("in which city is the headquarter of {e}?"),
        _s("the headquarter of {e}", 0.8),
        _s("where is the head office of {e}?"),
        _s("where does {e} keep its main office?", test_only=True),
    ),
    "ceo": (
        _s("who is the ceo of {e}?", 3.0),
        _s("who is the chief executive of {e}?"),
        _s("who is {e} 's ceo?"),
        _s("the ceo of {e}", 0.8),
        _s("who runs {e}?", 0.8),
        _s("who occupies the corner office at {e}?", test_only=True),
    ),
    "revenue": (
        _s("what is the revenue of {e}?", 3.0),
        _s("how much money does {e} make?"),
        _s("how much revenue does {e} generate?"),
        _s("revenue of {e}", 0.5),
        _s("what does {e} pull in each year?", test_only=True),
    ),
    "employees": (
        _s("how many employees does {e} have?", 3.0),
        _s("how many people work at {e}?", 2.0),
        _s("what is the number of employees of {e}?"),
        _s("how many staff does {e} employ?"),
        _s("how big is the workforce of {e}?", test_only=True),
    ),
    "board_members": (
        _s("who are the board members of {e}?", 2.0),
        _s("who is on the board of {e}?", 2.0),
        _s("who sits on the board of {e}?"),
        _s("board members of {e}", 0.5),
        _s("who fills the board seats of {e}?", test_only=True),
    ),
    "river_length": (
        _s("how long is {e}?", 2.5),
        _s("what is the length of {e}?", 2.0),
        _s("how many kilometers long is {e}?"),
        _s("length of {e}", 0.5),
        _s("what distance does {e} run?", test_only=True),
    ),
    "flows_through": (
        _s("which country does {e} flow through?", 2.0),
        _s("through which country does {e} flow?"),
        _s("where does {e} flow?", 0.8),
        _s("what country does {e} cross?"),
        _s("which land does {e} water?", test_only=True),
    ),
    "author": (
        _s("who wrote {e}?", 3.0),
        _s("who is the author of {e}?", 2.5),
        _s("the author of {e}", 0.8),
        _s("who is the writer of {e}?"),
        _s("what is the name of the author of {e}?"),
        _s("whose pen produced {e}?", test_only=True),
    ),
    "published": (
        _s("when was {e} published?", 3.0),
        _s("what year was {e} published?"),
        _s("in which year was {e} published?"),
        _s("when did {e} come out?", 0.8),
        _s("when did {e} reach the shelves?", test_only=True),
    ),
    "pages": (
        _s("how many pages does {e} have?", 3.0),
        _s("what is the number of pages of {e}?"),
        _s("how many pages is {e}?"),
        _s("how thick is {e} in pages?", test_only=True),
    ),
    "genre": (
        _s("what genre is {e}?", 3.0),
        _s("what is the genre of {e}?", 2.0),
        _s("what kind of music does {e} play?", 1.0),
        _s("what style does {e} belong to?", test_only=True),
    ),
    "members": (
        _s("who are the members of {e}?", 3.0),
        _s("who is in {e}?", 1.5),
        _s("who plays in {e}?"),
        _s("members of {e}", 0.8),
        _s("the members of {e}", 0.8),
        _s("who are {e} 's members?"),
        _s("who makes up the lineup of {e}?", test_only=True),
    ),
    "origin": (
        _s("where is {e} from?", 1.5),
        _s("what city is {e} from?", 1.5),
        _s("where was {e} formed?", 1.5),
        _s("where did {e} form?"),
        _s("what town spawned {e}?", test_only=True),
    ),
    "formed": (
        _s("when was {e} formed?", 3.0),
        _s("when did {e} form?"),
        _s("what year did {e} start?"),
        _s("when did {e} get together?"),
        _s("when did {e} first jam?", test_only=True),
    ),
    "songs": (
        _s("what songs did {e} record?", 2.0),
        _s("what are the songs of {e}?", 2.0),
        _s("which songs are by {e}?"),
        _s("songs of {e}", 0.5),
        _s("what tracks did {e} lay down?", test_only=True),
    ),
    "director": (
        _s("who directed {e}?", 3.0),
        _s("who is the director of {e}?", 2.0),
        _s("the director of {e}", 0.8),
        _s("who was {e} directed by?"),
        _s("who called the shots on {e}?", test_only=True),
    ),
    "release": (
        _s("when was {e} released?", 3.0),
        _s("what year did {e} come out?"),
        _s("when did {e} come out?", 0.8),
        _s("when did {e} premiere?"),
        _s("when did {e} hit theaters?", test_only=True),
    ),
    "runtime": (
        _s("what is the runtime of {e}?", 2.0),
        _s("how long is {e}?", 1.2),
        _s("how many minutes is {e}?"),
        _s("what is the running time of {e}?"),
        _s("how much of my evening does {e} take?", test_only=True),
    ),
    "students": (
        _s("how many students does {e} have?", 3.0),
        _s("how many students attend {e}?", 2.0),
        _s("what is the number of students at {e}?"),
        _s("how many students study at {e}?"),
        _s("how big is the student body of {e}?", test_only=True),
    ),
    "located_city": (
        _s("in which city is {e}?", 2.0),
        _s("what city is {e} in?", 2.0),
        _s("where is {e} located?", 0.8),
        _s("where is {e}?", 0.8),
        _s("which town hosts {e}?", test_only=True),
    ),
    "elevation": (
        _s("how high is {e}?", 3.0),
        _s("what is the elevation of {e}?", 2.0),
        _s("how tall is {e}?", 0.6),
        _s("what is the height of {e}?", 0.6),
        _s("how far above sea level does {e} rise?", test_only=True),
    ),
}


# Intent-specific answer surfaces; ``{v}`` is the value (or comma-joined
# values), ``{profession}`` reproduces Example 2's profession trap.
ANSWER_SURFACES: dict[str, tuple[str, ...]] = {
    "dob": (
        "the {profession} was born in {v}.",
        "he was born in {v}.",
        "she was born in {v}.",
        "{v} if i remember right.",
    ),
    "population": (
        "it 's {v}.",
        "around {v} people live there.",
        "the population is {v}.",
    ),
    "spouse": (
        "his wife is {v}.",
        "her husband is {v}.",
        "{v} , they married years ago.",
    ),
    "capital": ("the capital is {v}.", "{v} is the capital."),
    "height": ("about {v} centimeters.", "{v} cm."),
    "area": ("roughly {v} square kilometers.", "it covers {v}."),
    "mayor": ("the mayor is {v}.",),
    "ceo": ("the ceo is {v}.", "{v} runs it."),
    "author": ("it was written by {v}.", "{v} wrote it."),
    "members": ("the members are {v}.", "the lineup is {v}."),
    "board_members": ("the board includes {v}.",),
    "songs": ("they recorded {v}.",),
    "works_written": ("the books are {v}.",),
}

# Generic answer surfaces by expected answer type.
GENERIC_ANSWERS: dict[AnswerType, tuple[str, ...]] = {
    AnswerType.NUMERIC: (
        "it 's {v}.",
        "{v}.",
        "about {v} i think.",
        "the answer is {v}.",
        "roughly {v}.",
    ),
    AnswerType.DATE: (
        "in {v}.",
        "it was {v}.",
        "{v}.",
        "i think it was {v}.",
        "the year was {v}.",
    ),
    AnswerType.HUMAN: ("{v}.", "it 's {v}.", "that would be {v}."),
    AnswerType.LOCATION: ("{v}.", "in {v}.", "it 's {v}.", "that 's {v}."),
    AnswerType.ENTITY: ("{v}.", "it 's {v}.", "the answer is {v}."),
}

# Filler question/answer pairs with no factoid content (corpus noise).
CHITCHAT: tuple[tuple[str, str], ...] = (
    ("what should i eat tonight?", "maybe pizza, you can never go wrong."),
    ("does anyone else hate mondays?", "everyone does, hang in there."),
    ("best way to learn guitar?", "practice every day and be patient."),
    ("is it normal to talk to your cat?", "totally normal, mine answers back."),
    ("how do i get over a breakup?", "time heals, focus on yourself."),
    ("what is the meaning of life?", "42, obviously."),
    ("any tips for a first date?", "be yourself and listen a lot."),
    ("why is the sky blue?", "light scattering, short wavelengths bounce more."),
    ("how do i stop procrastinating?", "start with five minutes, momentum helps."),
    ("what is a good gift for my mom?", "something handmade always wins."),
)


def train_surfaces(intent: str) -> list[Surface]:
    """Surfaces eligible for corpus generation (test-only ones excluded)."""
    return [s for s in SURFACES[intent] if not s.test_only]


def held_out_surfaces(intent: str) -> list[Surface]:
    """Held-out paraphrases used only by benchmark construction."""
    return [s for s in SURFACES[intent] if s.test_only]


def surface_context_sources() -> dict[str, list[str]]:
    """Concept -> texts, the conceptualizer's co-occurrence material.

    Each intent's surface vocabulary is attributed to every concept its
    domain types can carry, weighted implicitly by repetition of shared
    surfaces across intents.
    """
    from repro.data.conceptnet import concepts_for_type
    from repro.data.world import SCHEMA_BY_INTENT

    sources: dict[str, list[str]] = {}
    for intent, surfaces in SURFACES.items():
        schema = SCHEMA_BY_INTENT[intent]
        texts = [s.text.replace("{e}", " ") for s in surfaces if not s.test_only]
        for etype in schema.domain_types:
            for concept in concepts_for_type(etype):
                sources.setdefault(concept, []).extend(texts)
    return sources
