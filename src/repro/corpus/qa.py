"""QA pair and corpus containers with JSONL persistence."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator


@dataclass(frozen=True, slots=True)
class QAPair:
    """One question/answer pair from the (synthetic) community QA site.

    ``meta`` carries generator provenance — intent, entity node, clean/noisy
    flags — used only by evaluation (never by the learner, which sees just
    the text, as the paper's system does).
    """

    qid: str
    question: str
    answer: str
    meta: dict = field(default_factory=dict, hash=False, compare=False)

    def to_json(self) -> str:
        """One JSONL line for this pair."""
        return json.dumps(
            {"qid": self.qid, "question": self.question, "answer": self.answer, "meta": self.meta},
            ensure_ascii=False,
        )

    @classmethod
    def from_json(cls, line: str) -> "QAPair":
        data = json.loads(line)
        return cls(data["qid"], data["question"], data["answer"], data.get("meta", {}))


class QACorpus:
    """An ordered collection of QA pairs."""

    def __init__(self, pairs: Iterable[QAPair] = ()) -> None:
        self.pairs: list[QAPair] = list(pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[QAPair]:
        return iter(self.pairs)

    def __getitem__(self, index: int) -> QAPair:
        return self.pairs[index]

    def add(self, pair: QAPair) -> None:
        self.pairs.append(pair)

    def questions(self) -> Iterator[str]:
        return (pair.question for pair in self.pairs)

    def filter(self, predicate: Callable[[QAPair], bool]) -> "QACorpus":
        return QACorpus(pair for pair in self.pairs if predicate(pair))

    def head(self, count: int) -> "QACorpus":
        return QACorpus(self.pairs[:count])

    # -- Persistence --------------------------------------------------------

    def save(self, path: str | Path) -> int:
        """Write the corpus as JSONL; returns the pair count."""
        with open(path, "w", encoding="utf-8") as handle:
            for pair in self.pairs:
                handle.write(pair.to_json())
                handle.write("\n")
        return len(self.pairs)

    @classmethod
    def load(cls, path: str | Path) -> "QACorpus":
        corpus = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    corpus.add(QAPair.from_json(line))
        return corpus

    # -- Introspection ---------------------------------------------------------

    def intent_counts(self) -> dict[str, int]:
        """Generator-provenance histogram (evaluation only)."""
        counts: dict[str, int] = {}
        for pair in self.pairs:
            intent = pair.meta.get("intent")
            if intent:
                counts[intent] = counts.get(intent, 0) + 1
        return counts
