"""Declarative sentence corpus (the web-document stand-in for bootstrapping).

The bootstrapping baseline of Table 12 (Unger et al. / BOA patterns) learns
predicate paraphrases from free text between entity and value mentions in
web documents.  These templates render world facts as such sentences.  Only
a subset of intents has sentence coverage — CVT-mediated relations rarely
surface as clean subject-object sentences — which is precisely why the
baseline covers fewer predicates than template learning.
"""

from __future__ import annotations

from repro.data.world import World
from repro.utils.rng import SeedStream

SENTENCE_TEMPLATES: dict[str, tuple[str, ...]] = {
    "population": (
        "{e} has a population of {v} .",
        "the population of {e} is {v} .",
        "{v} people live in {e} .",
    ),
    "area": (
        "{e} covers an area of {v} .",
        "the area of {e} is {v} square kilometers .",
    ),
    "dob": (
        "{e} was born in {v} .",
        "born in {v} , {e} grew up quickly .",
    ),
    "pob": (
        "{e} was born in {v} .",
        "{e} grew up in {v} .",
    ),
    "spouse": ("{e} is married to {v} .",),
    "capital": (
        "the capital of {e} is {v} .",
        "{e} 's capital city is {v} .",
    ),
    "ceo": ("the ceo of {e} is {v} .",),
    "mayor": ("the mayor of {e} is {v} .",),
    "founded": ("{e} was founded in {v} .",),
    "author": ("{e} was written by {v} .",),
    "height": ("{e} is {v} centimeters tall .",),
    "currency": ("the currency of {e} is the {v} .",),
    "language": ("people in {e} speak {v} .",),
    "headquarters": ("{e} is headquartered in {v} .",),
    "employees": ("{e} employs {v} people .",),
    "river_length": ("{e} is {v} kilometers long .",),
    "director": ("{e} was directed by {v} .",),
    "release": ("{e} was released in {v} .",),
}


def generate_sentences(world: World, count: int = 20_000, seed: int = 7) -> list[str]:
    """Render ``count`` declarative sentences from world facts."""
    rng = SeedStream(seed).substream("sentences").rng()
    instances: list[tuple[str, str]] = []
    for node, entity in world.entities.items():
        for intent in entity.facts:
            if intent in SENTENCE_TEMPLATES:
                instances.append((intent, node))
    if not instances:
        return []
    sentences: list[str] = []
    for _ in range(count):
        intent, node = rng.choice(instances)
        values = sorted(world.gold_values(node, intent))
        if not values:
            continue
        template = rng.choice(SENTENCE_TEMPLATES[intent])
        sentences.append(template.format(e=world.name_of(node), v=rng.choice(values)))
    return sentences
