"""Synthetic QA corpus generator (the Yahoo! Answers stand-in).

Reproduces the observation structure of Table 3: each pair is a natural
language question about one entity fact plus a chatty reply embedding the
value among other tokens.  Noise channels (rates in :class:`CorpusConfig`):

* **wrong answers** — the reply carries another entity's value for the same
  intent; extraction drops most of these because the (entity, value) pair has
  no connecting predicate (Eq 8 acts as the filter);
* **extra facts** — the reply volunteers a second, unrelated fact about the
  entity (Example 2's profession trap generalized), creating competing
  entity-value pairs the EM and refinement must out-weigh;
* **chit-chat** — pairs with no factoid content at all.

Some intents are marked *rare*, receiving a small sampling weight: they
reproduce the paper's failure analysis where rare predicates lack training
support (12 of 15 QALD-3 misses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus import surface
from repro.corpus.qa import QACorpus, QAPair
from repro.data.world import SCHEMA_BY_INTENT, World
from repro.nlp.question_class import AnswerType
from repro.utils.rng import SeedStream

# Intents deliberately under-represented in the corpus (rare predicates).
RARE_INTENT_WEIGHTS = {
    "flows_through": 0.03,
    "pages": 0.05,
    "students": 0.05,
    "elevation": 0.08,
}


@dataclass(frozen=True, slots=True)
class CorpusConfig:
    """Knobs for corpus size and noise rates."""

    seed: int = 7
    target_pairs: int = 30_000
    wrong_answer_rate: float = 0.04
    chitchat_rate: float = 0.05
    extra_fact_rate: float = 0.10
    intent_weights: dict[str, float] = field(default_factory=lambda: dict(RARE_INTENT_WEIGHTS))

    @classmethod
    def small(cls, seed: int = 7) -> "CorpusConfig":
        return cls(seed=seed, target_pairs=4_000)


def generate_corpus(world: World, config: CorpusConfig | None = None) -> QACorpus:
    """Generate a QA corpus against ``world`` (deterministic in the seed)."""
    config = config or CorpusConfig()
    rng = SeedStream(config.seed).substream("corpus").rng()
    corpus = QACorpus()

    instances, weights = _fact_instances(world, config)
    if not instances:
        raise ValueError("world has no facts to generate a corpus from")

    surfaces_by_intent = {
        intent: surface.train_surfaces(intent) for intent in SCHEMA_BY_INTENT
    }

    for index in range(config.target_pairs):
        qid = f"qa{index:07d}"
        if rng.random() < config.chitchat_rate:
            question, answer = rng.choice(surface.CHITCHAT)
            corpus.add(QAPair(qid, question, answer, {"kind": "chitchat"}))
            continue

        intent, node = rng.choices(instances, weights=weights, k=1)[0]
        entity = world.entity(node)
        chosen = _pick_surface(rng, surfaces_by_intent[intent])
        question = chosen.text.format(e=entity.name)

        gold_values = sorted(world.gold_values(node, intent))
        wrong = rng.random() < config.wrong_answer_rate
        if wrong:
            answer_values = [_wrong_value(rng, world, intent, node) or gold_values[0]]
        else:
            answer_values = gold_values

        answer = _render_answer(rng, world, intent, node, answer_values)
        if rng.random() < config.extra_fact_rate:
            extra = _extra_fact_sentence(rng, world, node, exclude=intent)
            if extra:
                answer = f"{answer} {extra}"

        corpus.add(QAPair(qid, question, answer, {
            "kind": "factoid",
            "intent": intent,
            "entity": node,
            "surface": chosen.text,
            "wrong": wrong,
            "values": gold_values,
        }))
    return corpus


def _fact_instances(world: World, config: CorpusConfig):
    """(intent, node) pool and sampling weights."""
    instances: list[tuple[str, str]] = []
    weights: list[float] = []
    for node, entity in world.entities.items():
        for intent in entity.facts:
            if intent not in surface.SURFACES:
                continue
            instances.append((intent, node))
            weights.append(config.intent_weights.get(intent, 1.0))
    return instances, weights


def _pick_surface(rng, surfaces: list[surface.Surface]) -> surface.Surface:
    weights = [s.weight for s in surfaces]
    return rng.choices(surfaces, weights=weights, k=1)[0]


def _wrong_value(rng, world: World, intent: str, node: str) -> str | None:
    """A plausible-but-wrong value: the same intent's value on another entity."""
    etype = world.entity(node).etype
    candidates = [
        other for other in world.by_type.get(etype, ())
        if other != node and intent in world.entity(other).facts
    ]
    if not candidates:
        return None
    other = rng.choice(candidates)
    values = sorted(world.gold_values(other, intent))
    return rng.choice(values) if values else None


def _render_answer(rng, world: World, intent: str, node: str, values: list[str]) -> str:
    """Embed the value(s) in a reply sentence."""
    schema = SCHEMA_BY_INTENT[intent]
    joined = " , ".join(values)
    specific = surface.ANSWER_SURFACES.get(intent)
    if specific and rng.random() < 0.6:
        template = rng.choice(specific)
    else:
        template = rng.choice(
            surface.GENERIC_ANSWERS.get(schema.answer_type, surface.GENERIC_ANSWERS[AnswerType.ENTITY])
        )
    profession_names = sorted(world.gold_values(node, "profession"))
    profession = profession_names[0] if profession_names else "person"
    return template.format(v=joined, e=world.name_of(node), profession=profession)


def _extra_fact_sentence(rng, world: World, node: str, exclude: str) -> str | None:
    """A bonus sentence stating a different fact about the same entity."""
    entity = world.entity(node)
    other_intents = [i for i in entity.facts if i != exclude and i in SCHEMA_BY_INTENT]
    if not other_intents:
        return None
    other = rng.choice(other_intents)
    values = sorted(world.gold_values(node, other))
    if not values:
        return None
    label = SCHEMA_BY_INTENT[other].label
    return f"by the way , the {label} is {rng.choice(values)} ."
