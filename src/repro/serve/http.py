"""Minimal HTTP/1.1 over asyncio streams — stdlib only, JSON in/out.

The serving front needs exactly four things from HTTP: parse a request line
+ headers, read a ``Content-Length`` body, write a framed JSON response, and
honor keep-alive.  ``http.server`` is thread-per-connection and fights the
event loop, so this module implements that minimal subset directly on
``asyncio.StreamReader``/``StreamWriter`` — ~100 lines, no dependencies,
and every connection is just a coroutine.

Limits are deliberate and small (16 KiB of headers, 1 MiB of body): the
server answers questions, it does not accept uploads.  Anything outside the
subset raises :class:`BadRequest`, which the app layer maps to a 400.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class BadRequest(ValueError):
    """The bytes on the wire are not a request this server accepts."""


@dataclass(frozen=True, slots=True)
class HTTPRequest:
    """One parsed request: method, path (query string stripped), headers
    (lower-cased names), raw body bytes."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 default keep-alive unless the client says close."""
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        """Parse the body as a JSON object (the only payload shape used)."""
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise BadRequest("JSON body must be an object")
        return payload


async def read_request(reader: asyncio.StreamReader) -> HTTPRequest | None:
    """Read one request off the stream; ``None`` on clean EOF between
    requests (the client hung up), :class:`BadRequest` on malformed bytes."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise BadRequest("truncated request") from None
    except asyncio.LimitOverrunError:
        raise BadRequest("request headers too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequest("request headers too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    path = target.split("?", 1)[0]

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise BadRequest("invalid Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequest(f"body too large ({length} bytes)")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise BadRequest("truncated request body") from None
    return HTTPRequest(method=method.upper(), path=path, headers=headers, body=body)


def response_bytes(status: int, payload: dict, *, keep_alive: bool = True) -> bytes:
    """Frame a JSON response with correct Content-Length and Connection."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


def text_response_bytes(
    status: int,
    text: str,
    *,
    keep_alive: bool = True,
    content_type: str = "text/plain; charset=utf-8",
) -> bytes:
    """Frame a plain-text response (the ``/metrics`` Prometheus payload)."""
    body = text.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body
