"""Async serving subsystem: coalescing answer service + HTTP front + load gen.

The serving story in three layers:

* :mod:`repro.serve.async_answerer` — :class:`AsyncAnswerer`: in-flight
  request coalescing on the normalized-question key, micro-batching into
  ``answer_many``, bounded-queue admission control, epoch-checked freshness
  under live KB updates;
* :mod:`repro.serve.app` — :class:`KBQAServer`: the stdlib asyncio HTTP
  front (``/answer``, ``/batch``, ``/facts``, ``/healthz``, ``/stats``,
  ``/metrics``) behind ``kbqa serve``, plus :class:`BackgroundServer` and
  the CI smoke;
* :mod:`repro.serve.metrics` — the telemetry spine: mergeable log-bucket
  latency histograms with windowed percentiles, per-stage timers,
  per-tenant counters, Prometheus text exposition;
* :mod:`repro.serve.control` — the adaptive control plane:
  :class:`SLOController` (AIMD feedback on the batching knobs against a
  p99 SLO) and per-tenant token-bucket quotas with weighted fair queueing;
* :mod:`repro.serve.loadgen` — the deterministic closed-loop QPS load
  generator behind ``benchmarks/bench_qps.py``;
* :mod:`repro.serve.multiproc` — :class:`MultiProcessServer`: N forked
  server replicas sharing one port via ``SO_REUSEPORT``, with writes
  replicated through a shared op log + epoch counter (``kbqa serve
  --procs N``).
"""

from repro.serve.async_answerer import (
    AnswerTarget,
    AsyncAnswerer,
    DeadlineExceeded,
    OverloadedError,
    ServeConfig,
    ServeStats,
    normalized_key,
)
from repro.serve.app import BackgroundServer, KBQAServer, result_payload, run_smoke
from repro.serve.control import (
    ControllerConfig,
    FairQueue,
    QuotaConfig,
    QuotaExceeded,
    SLOController,
    TokenBucket,
    parse_quota,
)
from repro.serve.metrics import (
    Histogram,
    ServeMetrics,
    WindowedHistogram,
    merge_states,
    parse_prometheus_text,
    render_prometheus,
)
from repro.serve.multiproc import MultiProcessServer, multiproc_available
from repro.serve.loadgen import (
    LoadSpec,
    OpenLoadSpec,
    RampSpec,
    build_request_stream,
    latency_percentiles,
    run_load,
    run_load_cell,
    run_open_load,
    run_open_load_cell,
    run_ramp_cell,
    run_ramp_load,
)

__all__ = [
    "AnswerTarget",
    "AsyncAnswerer",
    "BackgroundServer",
    "ControllerConfig",
    "DeadlineExceeded",
    "FairQueue",
    "Histogram",
    "KBQAServer",
    "LoadSpec",
    "MultiProcessServer",
    "OpenLoadSpec",
    "OverloadedError",
    "QuotaConfig",
    "QuotaExceeded",
    "RampSpec",
    "SLOController",
    "ServeConfig",
    "ServeMetrics",
    "ServeStats",
    "TokenBucket",
    "WindowedHistogram",
    "build_request_stream",
    "latency_percentiles",
    "merge_states",
    "multiproc_available",
    "normalized_key",
    "parse_prometheus_text",
    "parse_quota",
    "render_prometheus",
    "result_payload",
    "run_load",
    "run_load_cell",
    "run_open_load",
    "run_open_load_cell",
    "run_ramp_cell",
    "run_ramp_load",
    "run_smoke",
]
