"""Async serving subsystem: coalescing answer service + HTTP front + load gen.

The serving story in three layers:

* :mod:`repro.serve.async_answerer` — :class:`AsyncAnswerer`: in-flight
  request coalescing on the normalized-question key, micro-batching into
  ``answer_many``, bounded-queue admission control, epoch-checked freshness
  under live KB updates;
* :mod:`repro.serve.app` — :class:`KBQAServer`: the stdlib asyncio HTTP
  front (``/answer``, ``/batch``, ``/facts``, ``/healthz``, ``/stats``)
  behind ``kbqa serve``, plus :class:`BackgroundServer` and the CI smoke;
* :mod:`repro.serve.loadgen` — the deterministic closed-loop QPS load
  generator behind ``benchmarks/bench_qps.py``;
* :mod:`repro.serve.multiproc` — :class:`MultiProcessServer`: N forked
  server replicas sharing one port via ``SO_REUSEPORT``, with writes
  replicated through a shared op log + epoch counter (``kbqa serve
  --procs N``).
"""

from repro.serve.async_answerer import (
    AnswerTarget,
    AsyncAnswerer,
    DeadlineExceeded,
    OverloadedError,
    ServeConfig,
    ServeStats,
    normalized_key,
)
from repro.serve.app import BackgroundServer, KBQAServer, result_payload, run_smoke
from repro.serve.multiproc import MultiProcessServer, multiproc_available
from repro.serve.loadgen import (
    LoadSpec,
    OpenLoadSpec,
    build_request_stream,
    latency_percentiles,
    run_load,
    run_load_cell,
    run_open_load,
    run_open_load_cell,
)

__all__ = [
    "AnswerTarget",
    "AsyncAnswerer",
    "BackgroundServer",
    "DeadlineExceeded",
    "KBQAServer",
    "LoadSpec",
    "MultiProcessServer",
    "OpenLoadSpec",
    "OverloadedError",
    "ServeConfig",
    "ServeStats",
    "build_request_stream",
    "latency_percentiles",
    "multiproc_available",
    "normalized_key",
    "result_payload",
    "run_load",
    "run_load_cell",
    "run_open_load",
    "run_open_load_cell",
    "run_smoke",
]
