"""SO_REUSEPORT multi-process serving front: N loops, one port.

PR 3/4 scale *evaluation* (thread/process pools behind one asyncio loop),
but a single loop still owns the socket: HTTP parsing, JSON encoding and
stream writes are serialized on one core.  This module forks N full server
processes — each with its own event loop, its own
:class:`~repro.serve.app.KBQAServer` and its own executor pool — all
listening on the **same** host:port via ``SO_REUSEPORT``, so the kernel
load-balances accepted connections across the processes and the whole
serving stack scales with cores.

Topology and protocols:

* **fork-and-inherit** — the parent trains (or receives) the system once;
  children are forked and inherit the trained state by copy-on-write
  (nothing is pickled; a live ``KBQA`` deliberately refuses pickling).
  Requires the ``fork`` start method and ``SO_REUSEPORT`` (both POSIX);
  :func:`multiproc_available` reports support.
* **port reservation** — with ``port=0`` the parent binds a placeholder
  ``SO_REUSEPORT`` socket first to fix the ephemeral port; the placeholder
  never listens, so it takes no connections, and every child binds its own
  listening socket to the reserved port.
* **cross-process writes** — each child registers a
  ``KBQAServer.fact_listener``: a successful ``/facts`` mutation is
  appended (under a global lock) to a shared operation log and a shared
  epoch counter (``multiprocessing.Value``) is bumped.  Every child polls
  the counter from its loop and replays foreign log entries through
  :meth:`AsyncAnswerer.apply` — the same write-quiescence path a local
  mutation takes — so an edit served by any process becomes visible on all
  of them (bounded by the poll interval), and each child's serving epoch
  bumps exactly as if the write were local.  Replay skips a child's own
  entries (already applied before they were logged).
* **supervision / self-healing** — the parent runs a supervisor thread
  that polls the children: a replica that died (SIGKILL, OOM, crash) is
  reaped, its orphaned shared-memory segments are reclaimed, and a
  replacement is forked from the parent's pristine system.  The
  replacement **catches up before it accepts traffic**: it replays the
  full op log onto its inherited system synchronously, *then* binds its
  ``SO_REUSEPORT`` socket — so a request load-balanced onto the healed
  replica can never observe pre-crash KB state.  Respawns are bounded
  (``max_respawns``) so a replica that dies deterministically on startup
  degrades to fewer replicas instead of a fork loop.
* **shutdown** — the parent sets a shared stop event; children drain their
  servers (which joins their pools and unlinks their snapshot segments)
  and exit; the parent joins the supervisor, then every child, and
  escalates to ``terminate`` only past a deadline; a final orphan sweep
  reclaims segments a killed child could not unlink.
  ``tests/test_serve_http.py`` asserts no child survives.

The log-replay protocol is best-effort ordered (entries apply in global log
order on every replica, but a replica's *own* write applies at its local
time): concurrent writers to semantically conflicting facts should
serialize at a higher layer.  For the read-heavy QA workload this targets,
writes are rare and idempotent (``add``/``delete`` of explicit triples).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import socket
import tempfile
import threading
import time
from typing import TYPE_CHECKING

from repro.exec.backend import bind_to_parent_death
from repro.exec.faults import fault_point
from repro.exec.shm import sweep_orphans
from repro.serve.async_answerer import ServeConfig

if TYPE_CHECKING:
    from repro.core.system import KBQA

DEFAULT_POLL_INTERVAL_S = 0.02


def multiproc_available() -> bool:
    """True when this platform can run the multi-process front
    (``SO_REUSEPORT`` + the ``fork`` start method)."""
    return hasattr(socket, "SO_REUSEPORT") and (
        "fork" in multiprocessing.get_all_start_methods()
    )


def _append_op(oplog_path: str, op_lock, op_count, entry: dict) -> int:
    """Append one op under the global lock; returns its log index."""
    with op_lock:
        index = op_count.value
        with open(oplog_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        op_count.value = index + 1
    return index


def _apply_replicated(system, op: str, subject: str, predicate: str, obj: str) -> None:
    """Apply one foreign op-log entry to this replica's system.

    With heap-backed stores the add/delete mutates this replica's private
    copy and fires its listeners.  With a shared-storage backend (the disk
    store: every replica opens the same SQLite file) the originating
    replica already wrote the row, so the local mutation is a no-op — but
    the change still has to reach this *process's* listeners (expansion
    maintainer, answer-cache invalidation), which is what the backend's
    ``notify_external`` hook does.
    """
    if op == "add":
        changed = system.add_fact(subject, predicate, obj)
    else:
        changed = system.delete_fact(subject, predicate, obj)
    if not changed:
        store = system.kb.store
        if getattr(store, "shared_storage", False):
            store.notify_external(op, subject, predicate, obj)


async def _replay_ops(
    server, oplog_path: str, op_lock, op_count, applied: int, own: set[int]
) -> int:
    """Apply foreign log entries from ``applied`` onward; returns the new
    cursor.  Each entry goes through the quiesced ``apply`` path, so the
    local serving epoch bumps exactly as for a local write.

    The read happens under the global op lock and is capped at the
    published count, so a sibling's in-progress append can never be
    observed as a torn line."""
    with op_lock:
        target = op_count.value
        with open(oplog_path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()[:target]
    for index in range(applied, len(lines)):
        if index in own:
            own.discard(index)
            continue
        entry = json.loads(lines[index])
        mutation = lambda e=entry: _apply_replicated(  # noqa: E731
            server.system, e["op"], e["s"], e["p"], e["o"]
        )
        await server.answerer.apply(mutation)
    return len(lines)


METRICS_DUMP_INTERVAL_S = 0.1


def _child_main(
    system: "KBQA",
    config: ServeConfig | None,
    host: str,
    port: int,
    index: int,
    op_count,
    op_lock,
    stop_event,
    ready,
    errors,
    oplog_path: str,
    poll_interval_s: float,
    metrics_dir: str | None = None,
) -> None:
    """Entry point of one forked server process."""
    import asyncio
    import signal

    # the parent coordinates shutdown through the stop event; a terminal
    # Ctrl-C must not race it with KeyboardInterrupts in every child
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # and a SIGKILL'd parent must not leak replicas: die with it.  (For a
    # replica forked by the supervisor thread the signal fires when that
    # *thread* exits — which only happens at teardown, after the stop event
    # is set, so it merely hastens an exit already in progress.)
    bind_to_parent_death()

    async def serve() -> None:
        from repro.serve.app import KBQAServer

        # Catch up before accepting traffic: a *respawned* replica forks
        # from the parent's original (pre-crash) system, so every logged op
        # is foreign to it and must land before the socket binds.  Nothing
        # is running yet, so the replay is a plain synchronous loop — no
        # quiescence protocol needed.  (First-generation children see an
        # empty log; this is a no-op for them.)
        with op_lock:
            target = op_count.value
            with open(oplog_path, encoding="utf-8") as handle:
                lines = handle.read().splitlines()[:target]
        for line in lines:
            entry = json.loads(line)
            _apply_replicated(system, entry["op"], entry["s"], entry["p"], entry["o"])
        applied = target
        own: set[int] = set()
        server = KBQAServer(
            system,
            config,
            host,
            port,
            reuse_port=True,
            metrics_dir=metrics_dir,
            replica_index=index,
        )

        def on_fact(op: str, subject: str, predicate: str, obj: str) -> None:
            own.add(
                _append_op(
                    oplog_path,
                    op_lock,
                    op_count,
                    {"op": op, "s": subject, "p": predicate, "o": obj},
                )
            )

        server.fact_listener = on_fact
        await server.start()
        ready.release()
        last_dump = 0.0
        try:
            while not stop_event.is_set():
                # the chaos harness kills replicas here — outside the op
                # lock, so a SIGKILL can never strand the global lock in a
                # held state and poison the surviving siblings
                fault_point("serve.replica")
                if op_count.value > applied:
                    applied = await _replay_ops(
                        server, oplog_path, op_lock, op_count, applied, own
                    )
                now = time.monotonic()
                if now - last_dump >= METRICS_DUMP_INTERVAL_S:
                    # publish cumulative metrics so whichever sibling serves
                    # a /metrics scrape can merge this replica's counters
                    server.dump_metrics()
                    last_dump = now
                await asyncio.sleep(poll_interval_s)
        finally:
            server.dump_metrics()  # final state survives for late scrapes
            await server.stop()

    try:
        asyncio.run(serve())
    except BaseException as error:  # surface child failures to the parent
        try:
            errors.put(f"server process {index}: {type(error).__name__}: {error}")
        except Exception:
            pass
        raise SystemExit(1)
    raise SystemExit(0)


class MultiProcessServer:
    """``procs`` forked :class:`~repro.serve.app.KBQAServer` replicas
    sharing one ``SO_REUSEPORT`` port.  Synchronous context manager::

        with MultiProcessServer(system, procs=4) as front:
            urllib.request.urlopen(front.url + "/healthz")

    Entering forks and blocks until every replica's socket is bound (or
    raises with the children's startup errors); exiting stops and joins
    every child, so leaked server processes are impossible.
    """

    def __init__(
        self,
        system: "KBQA",
        config: ServeConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        procs: int = 2,
        poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
        ready_timeout_s: float = 120.0,
        max_respawns: int = 8,
        supervise_interval_s: float = 0.05,
    ) -> None:
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        if not multiproc_available():
            raise ValueError(
                "multi-process serving needs SO_REUSEPORT and the fork start "
                "method (POSIX); use a single-process server here"
            )
        self._system = system
        self._config = config
        self.host = host
        self.port = port
        self.procs = procs
        self._poll_interval_s = poll_interval_s
        self._ready_timeout_s = ready_timeout_s
        self._max_respawns = max_respawns
        self._supervise_interval_s = supervise_interval_s
        self._ctx = multiprocessing.get_context("fork")
        self._children: list = []
        self._placeholder: socket.socket | None = None
        self._oplog_path: str | None = None
        self._metrics_dir: str | None = None
        self._stop_event = None
        self._errors = None
        self._op_count = None
        self._op_lock = None
        self._ready = None
        self._supervisor: threading.Thread | None = None
        self._given_up: set[int] = set()  # slots past the respawn budget
        self.respawned = 0  # replicas replaced after dying (self-healing)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "MultiProcessServer":
        # Reserve the port: bound (never listening) with SO_REUSEPORT so the
        # children can bind their listening sockets to the same address.
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            placeholder.bind((self.host, self.port))
        except OSError:
            placeholder.close()
            raise
        self._placeholder = placeholder
        self.port = placeholder.getsockname()[1]

        fd, self._oplog_path = tempfile.mkstemp(prefix="kbqa-oplog-", suffix=".jsonl")
        os.close(fd)
        self._metrics_dir = tempfile.mkdtemp(prefix="kbqa-metrics-")
        self._op_count = self._ctx.Value("Q", 0)
        self._op_lock = self._ctx.Lock()
        self._stop_event = self._ctx.Event()
        self._ready = self._ctx.Semaphore(0)
        self._errors = self._ctx.Queue()

        try:
            for index in range(self.procs):
                self._children.append(self._spawn_child(index))

            deadline = time.monotonic() + self._ready_timeout_s
            for _ in range(self.procs):
                if not self._ready.acquire(
                    timeout=max(deadline - time.monotonic(), 0.001)
                ):
                    failures = self._drain_errors()
                    raise RuntimeError(
                        "multi-process server failed to start"
                        + (": " + "; ".join(failures) if failures else "")
                    )
        except BaseException:
            # a failed fork or a replica that never became ready must not
            # leak the ones that did start, the port, or the op log
            self._teardown(force=True)
            raise
        self._supervisor = threading.Thread(
            target=self._supervise, name="kbqa-serve-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._teardown(force=False)
        failures = self._drain_errors()
        if failures:
            raise RuntimeError("server process failed: " + "; ".join(failures))

    # -- Internals ---------------------------------------------------------

    def _spawn_child(self, index: int):
        """Fork one replica for slot ``index`` (initial start and respawn)."""
        child = self._ctx.Process(
            target=_child_main,
            args=(
                self._system,
                self._config,
                self.host,
                self.port,
                index,
                self._op_count,
                self._op_lock,
                self._stop_event,
                self._ready,
                self._errors,
                self._oplog_path,
                self._poll_interval_s,
                self._metrics_dir,
            ),
            # not daemonic: a replica configured with a process
            # executor must be allowed to start its own worker pool
            name=f"kbqa-serve-{index}",
            daemon=False,
        )
        child.start()
        return child

    def _supervise(self) -> None:
        """Parent-side self-healing loop: reap dead replicas, fork
        replacements.

        A replacement forks from the parent's pristine system and catches
        itself up from the op log before binding (see ``_child_main``), so
        the slot returns at full correctness, not just full capacity.  The
        dead replica's published shared-memory segments (snapshot +
        payload publishes its SIGKILL skipped) are reclaimed here — the
        publisher pid is gone, so :func:`sweep_orphans` can prove them
        dead.  Slots that exhaust ``max_respawns`` are abandoned
        (``_given_up``): deterministic startup crashes degrade to fewer
        replicas instead of a fork loop.
        """
        assert self._stop_event is not None and self._ready is not None
        while not self._stop_event.wait(self._supervise_interval_s):
            for index, child in enumerate(self._children):
                if child.is_alive() or index in self._given_up:
                    continue
                child.join(timeout=0.1)  # reap the corpse
                sweep_orphans()
                if self.respawned >= self._max_respawns:
                    self._given_up.add(index)
                    continue
                if self._stop_event.is_set():
                    return
                self._children[index] = self._spawn_child(index)
                self.respawned += 1
                # wait (interruptibly) until the replacement binds, so one
                # flapping slot cannot fork faster than children come up
                deadline = time.monotonic() + self._ready_timeout_s
                while not self._stop_event.is_set():
                    if self._ready.acquire(timeout=0.1):
                        break
                    if time.monotonic() > deadline:
                        self._given_up.add(index)
                        break

    def _drain_errors(self) -> list[str]:
        failures: list[str] = []
        if self._errors is not None:
            try:
                while True:
                    failures.append(self._errors.get_nowait())
            except Exception:
                pass
        return failures

    def _teardown(self, *, force: bool) -> None:
        if self._stop_event is not None:
            self._stop_event.set()
        if self._supervisor is not None:
            # join the supervisor *before* the children: no respawn may
            # race the joins below, or a fresh fork could outlive teardown
            self._supervisor.join(timeout=10.0)
            self._supervisor = None
        deadline = time.monotonic() + (5.0 if force else 30.0)
        for child in self._children:
            while True:
                try:
                    child.join(timeout=max(deadline - time.monotonic(), 0.001))
                    break
                except KeyboardInterrupt:
                    # a repeated Ctrl-C lands mid-join (terminals signal the
                    # whole group); shorten the deadline and keep joining so
                    # children are never orphaned by an impatient operator
                    deadline = min(deadline, time.monotonic() + 2.0)
        for child in self._children:
            if child.is_alive():  # escalate only past the deadline
                child.terminate()
                child.join(timeout=5.0)
        self._children.clear()
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
        if self._oplog_path is not None:
            try:
                os.unlink(self._oplog_path)
            except OSError:
                pass
            self._oplog_path = None
        if self._metrics_dir is not None:
            shutil.rmtree(self._metrics_dir, ignore_errors=True)
            self._metrics_dir = None
        # segments a killed child never unlinked (its pid is dead now, so
        # they are provably orphans); live publishes are never touched
        sweep_orphans()
