"""Adaptive serving control plane: SLO feedback + per-tenant fairness.

The serving knobs (`batch_window_ms`, `max_batch`, `max_pending`) trade
latency against throughput, and the right setting depends on the offered
load — which shifts.  This module closes the loop:

* :class:`SLOController` — an AIMD feedback controller ticking every
  ``interval_s`` against the *windowed* p99 from the metrics spine
  (`repro.serve.metrics`): while p99 has headroom under the SLO it widens
  the batch window additively (amortizing dispatch into fuller batches)
  and grows ``max_batch`` back toward its configured cap; on an SLO breach
  it shrinks both multiplicatively — the classic stable-under-feedback
  shape (additive increase probes, multiplicative decrease backs off fast).
  It also adapts the ``max_pending`` admission bound to the measured
  service rate (Little's law: more queue than ``rate x SLO`` can only turn
  timely 503s into late 200s).  The controller reads only untainted
  samples — crash-retried batches are excluded upstream — so a worker
  SIGKILL's respawn spike cannot ratchet the window down.
* :class:`TokenBucket` / :class:`QuotaConfig` — per-tenant token-bucket
  quotas keyed on the ``X-KBQA-Client`` header (CLI spec
  ``"RATE:BURST[;tenant=weight...]"``).
* :class:`FairQueue` — the quota-aware replacement for the FIFO dispatch
  queue: per-tenant sub-queues drained by deficit weighted round-robin, so
  a tenant that floods past its token bucket queues behind *its own*
  backlog (bounded by its weighted share of ``max_pending``, which always
  reserves headroom for a newcomer) and then gets :class:`QuotaExceeded`
  (HTTP 429) — while other tenants' requests keep draining at their
  weight.  Mostly work-conserving: an uncontended tenant gets its token
  rate plus the lion's share of the queue; the newcomer reserve is what
  keeps a flood from turning other tenants' first requests into 503s.

Health checks never pass through any of this: ``/healthz`` is answered by
the HTTP layer before the answerer, so quotas and admission cannot starve
liveness probes.

This module deliberately imports nothing from ``async_answerer`` (which
imports it); the controller drives any object exposing mutable
``batch_window_ms`` / ``max_batch`` / ``max_pending`` attributes.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass


class QuotaExceeded(RuntimeError):
    """The tenant is past its token bucket *and* its queued share.

    Mapped to HTTP 429 — deliberately not a subclass of
    ``OverloadedError``, so the degraded-mode cached-answer fallback does
    not absorb it: a throttled tenant must see the throttle.
    """


@dataclass(frozen=True, slots=True)
class QuotaConfig:
    """Per-tenant token-bucket parameters plus scheduling weights.

    ``rate_qps``/``burst`` apply to *each* tenant's own bucket; ``weights``
    bias both the round-robin drain and the queued-backlog share (default
    weight 1.0).  Weights are clamped to a small positive floor so the
    deficit round-robin always terminates.
    """

    rate_qps: float
    burst: float
    weights: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError(f"quota rate_qps must be > 0, got {self.rate_qps}")
        if self.burst < 1:
            raise ValueError(f"quota burst must be >= 1, got {self.burst}")
        for tenant, weight in self.weights:
            if weight <= 0:
                raise ValueError(f"quota weight for {tenant!r} must be > 0, got {weight}")

    def weight(self, tenant: str) -> float:
        """The tenant's scheduling weight (default 1.0, floored at 0.05)."""
        for name, weight in self.weights:
            if name == tenant:
                return max(weight, 0.05)
        return 1.0


def parse_quota(spec: str) -> QuotaConfig:
    """Parse the CLI quota spec: ``"RATE:BURST[;tenant=weight]..."``.

    Examples: ``"50:100"`` (every tenant: 50 req/s sustained, 100 burst),
    ``"50:100;gold=4;free=1"`` (same buckets, gold drains 4x the weight).
    """
    head, *weight_parts = [part.strip() for part in spec.split(";") if part.strip()]
    rate_str, sep, burst_str = head.partition(":")
    if not sep:
        raise ValueError(f"quota spec must look like 'RATE:BURST[;tenant=weight]', got {spec!r}")
    try:
        rate = float(rate_str)
        burst = float(burst_str)
    except ValueError:
        raise ValueError(f"quota rate/burst must be numbers, got {head!r}") from None
    weights = []
    for part in weight_parts:
        tenant, eq, weight_str = part.partition("=")
        if not eq or not tenant:
            raise ValueError(f"quota weight must look like 'tenant=weight', got {part!r}")
        try:
            weights.append((tenant, float(weight_str)))
        except ValueError:
            raise ValueError(f"quota weight must be a number, got {part!r}") from None
    return QuotaConfig(rate_qps=rate, burst=burst, weights=tuple(weights))


class TokenBucket:
    """Continuous-refill token bucket (monotonic timestamps passed in)."""

    __slots__ = ("rate", "burst", "tokens", "_updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._updated = now

    def take(self, now: float, n: float = 1.0) -> bool:
        """Spend ``n`` tokens if the refilled balance covers them."""
        if now > self._updated:
            self.tokens = min(self.burst, self.tokens + (now - self._updated) * self.rate)
            self._updated = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


# Queue items are the answerer's (key, question, future, tenant, t_enq)
# tuples; the fair queue only inspects this field.
_TENANT_FIELD = 3
_ANON = ""  # untagged requests share one tenant bucket/queue


class FairQueue:
    """Per-tenant sub-queues drained by deficit weighted round-robin.

    Drop-in for the dispatch ``deque`` (``append`` / ``popleft`` /
    ``len`` / truthiness), plus :meth:`admit` for the quota decision at
    enqueue time.  Tokens are consumed at *admission*, never at drain, so
    the dispatcher can always make progress on whatever was admitted.

    Drain fairness (deficit round-robin): a visit deposits the tenant's
    weight into its credit balance once, then emits items — one per
    ``popleft`` call — until the credit or the backlog runs out, and only
    then rotates on.  Per rotation every backlogged tenant is served in
    proportion to its weight (sub-1 weights accrue credit across
    rotations), regardless of who floods the queue.
    """

    def __init__(self, quota: QuotaConfig) -> None:
        self.quota = quota
        self._queues: dict[str, deque] = {}
        self._rotation: deque[str] = deque()
        self._credits: dict[str, float] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def queued(self, tenant: str | None) -> int:
        return len(self._queues.get(tenant or _ANON, ()))

    def admit(self, tenant: str | None, now: float, *, max_pending: int) -> bool:
        """One admission decision: token, or queued-share headroom, or no.

        Past its bucket a tenant may still queue up to its weighted share
        of ``max_pending`` over the currently *contending* tenants plus one
        default-weight newcomer reserve — so a flooding tenant's uncharged
        backlog can never fill the whole admission budget, and a tenant
        arriving mid-flood finds both queue headroom and its own tokens
        intact (it cannot be starved into 503s by someone else's backlog).
        """
        name = tenant or _ANON
        bucket = self._buckets.get(name)
        if bucket is None:
            bucket = TokenBucket(self.quota.rate_qps, self.quota.burst, now)
            self._buckets[name] = bucket
        if bucket.take(now):
            return True
        contending = {t for t, q in self._queues.items() if q}
        contending.add(name)
        total_weight = sum(self.quota.weight(t) for t in contending) + 1.0
        share = max(1, int(max_pending * self.quota.weight(name) / total_weight))
        return len(self._queues.get(name, ())) < share

    def append(self, item: tuple) -> None:
        """Enqueue one admitted item on its tenant's sub-queue (registering
        the tenant in the drain rotation if it was idle)."""
        name = item[_TENANT_FIELD] or _ANON
        queue = self._queues.setdefault(name, deque())
        if name not in self._credits:
            self._rotation.append(name)
            self._credits[name] = self.quota.weight(name)
        queue.append(item)
        self._count += 1

    def popleft(self) -> tuple:
        """Dequeue the next item under deficit weighted round-robin."""
        if self._count == 0:
            raise IndexError("pop from an empty FairQueue")
        while True:
            name = self._rotation[0]
            queue = self._queues.get(name)
            if not queue:
                # tenant drained since its last visit: retire it from the
                # rotation (it re-registers on its next append)
                self._rotation.popleft()
                self._credits.pop(name, None)
                continue
            if self._credits[name] < 1.0:
                # fresh visit: deposit the quantum once, then spend it down
                self._credits[name] += self.quota.weight(name)
                if self._credits[name] < 1.0:
                    # sub-1 weight: accrue across rotations, serve later
                    self._rotation.rotate(-1)
                    continue
            self._credits[name] -= 1.0
            item = queue.popleft()
            self._count -= 1
            if self._credits[name] < 1.0 or not queue:
                self._rotation.rotate(-1)  # visit over: next tenant's turn
            return item


# -- SLO feedback controller ------------------------------------------------

DEFAULT_INTERVAL_S = 0.25


@dataclass(frozen=True, slots=True)
class ControllerConfig:
    """AIMD law parameters for :class:`SLOController`.

    ``headroom`` defines the dead band: p99 above ``slo_p99_ms`` shrinks,
    p99 below ``headroom * slo_p99_ms`` widens, in between the controller
    holds (hysteresis against oscillation).  ``min_samples`` gates ticks so
    an idle server never steers on noise.  ``snap_to_min_ms``: a window
    multiplicatively shrunk below this snaps straight to ``min_window_ms``
    (a geometric series never reaches zero on its own).

    The admission floor is ``max(min_pending, 2 * live max_batch)`` — deep
    enough to keep two full batches queued at the current batch knob.  At
    the default batch of 16 that is the familiar 32; when breaches have
    shrunk the batch, the floor follows it down so the Little's-law bound
    can actually cap queue wait near the SLO instead of pinning the queue
    at a depth sized for a batch shape the controller already abandoned.
    """

    slo_p99_ms: float
    interval_s: float = DEFAULT_INTERVAL_S
    headroom: float = 0.7
    widen_step_ms: float = 0.5
    shrink_factor: float = 0.5
    min_window_ms: float = 0.0
    max_window_ms: float = 10.0
    batch_step: int = 2
    min_batch: int = 1
    min_samples: int = 8
    snap_to_min_ms: float = 0.25
    adapt_admission: bool = True
    admission_safety: float = 4.0
    min_pending: int = 8
    trace_len: int = 256

    def __post_init__(self) -> None:
        if self.slo_p99_ms <= 0:
            raise ValueError(f"slo_p99_ms must be > 0, got {self.slo_p99_ms}")
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")
        if not 0.0 < self.headroom < 1.0:
            raise ValueError(f"headroom must be in (0, 1), got {self.headroom}")
        if not 0.0 < self.shrink_factor < 1.0:
            raise ValueError(f"shrink_factor must be in (0, 1), got {self.shrink_factor}")
        if self.min_window_ms < 0 or self.max_window_ms < self.min_window_ms:
            raise ValueError(
                f"need 0 <= min_window_ms <= max_window_ms, got "
                f"{self.min_window_ms}/{self.max_window_ms}"
            )


@dataclass
class _Trace:
    """One tick's record (kept in a bounded deque for /stats and the bench)."""

    t: float
    action: str
    p99_ms: float | None
    window_ms: float
    max_batch: int
    max_pending: int

    def as_dict(self) -> dict:
        return {
            "t": round(self.t, 3),
            "action": self.action,
            "p99_ms": self.p99_ms,
            "window_ms": round(self.window_ms, 3),
            "max_batch": self.max_batch,
            "max_pending": self.max_pending,
        }


class SLOController:
    """Ticks the AIMD law against an answerer's live knobs.

    ``answerer`` is anything with mutable ``batch_window_ms`` /
    ``max_batch`` / ``max_pending`` attributes; ``metrics`` provides
    :meth:`~repro.serve.metrics.ServeMetrics.controller_view`.  ``tick``
    is synchronous and deterministic given the metrics state — the unit
    tests drive it directly with injected clocks; :meth:`run` is the
    asyncio loop the answerer starts when ``ServeConfig.adaptive`` is on.
    """

    def __init__(
        self,
        answerer,
        metrics,
        config: ControllerConfig,
        *,
        batch_cap: int | None = None,
        pending_cap: int | None = None,
    ) -> None:
        self.answerer = answerer
        self.metrics = metrics
        self.config = config
        self._batch_cap = batch_cap if batch_cap is not None else answerer.max_batch
        self._pending_cap = (
            pending_cap if pending_cap is not None else answerer.max_pending
        )
        self._initial = (
            answerer.batch_window_ms,
            answerer.max_batch,
            answerer.max_pending,
        )
        self.ticks = 0
        self.idle_ticks = 0
        self.breaches = 0
        self.widened = 0
        self.shrunk = 0
        self.admission_changes = 0
        self.trace: deque[_Trace] = deque(maxlen=config.trace_len)

    # -- The control law ---------------------------------------------------

    def tick(self, now: float | None = None) -> str:
        """One synchronous control decision; returns the action taken
        (``idle`` / ``shrink`` / ``breach`` / ``widen`` / ``hold``)."""
        now = time.monotonic() if now is None else now
        cfg = self.config
        a = self.answerer
        self.ticks += 1
        view = self.metrics.controller_view(now)
        p99 = view["p99_ms"]
        if view["count"] < cfg.min_samples or p99 is None:
            self.idle_ticks += 1
            action = "idle"
        elif p99 > cfg.slo_p99_ms:
            self.breaches += 1
            action = "breach"
            new_window = a.batch_window_ms * cfg.shrink_factor
            if new_window < cfg.snap_to_min_ms:
                new_window = cfg.min_window_ms
            new_window = max(cfg.min_window_ms, new_window)
            new_batch = max(cfg.min_batch, int(a.max_batch * cfg.shrink_factor))
            if new_window < a.batch_window_ms or new_batch < a.max_batch:
                a.batch_window_ms = new_window
                a.max_batch = new_batch
                self.shrunk += 1
                action = "shrink"
        elif p99 < cfg.headroom * cfg.slo_p99_ms:
            action = "hold"
            new_window = min(cfg.max_window_ms, a.batch_window_ms + cfg.widen_step_ms)
            new_batch = min(self._batch_cap, a.max_batch + cfg.batch_step)
            if new_window > a.batch_window_ms or new_batch > a.max_batch:
                a.batch_window_ms = new_window
                a.max_batch = new_batch
                self.widened += 1
                action = "widen"
        else:
            action = "hold"  # inside the dead band: hysteresis
        if cfg.adapt_admission and view["count"] >= cfg.min_samples:
            # Little's law: sustainable queue ~ service rate x SLO; beyond a
            # safety factor of that, queued work can only finish late.
            target = int(view["rate_qps"] * (cfg.slo_p99_ms / 1000.0) * cfg.admission_safety)
            floor = max(cfg.min_pending, 2 * a.max_batch)
            target = max(min(floor, self._pending_cap), min(self._pending_cap, target))
            if target != a.max_pending:
                a.max_pending = target
                self.admission_changes += 1
        self.trace.append(
            _Trace(
                t=now,
                action=action,
                p99_ms=None if p99 is None else round(p99, 3),
                window_ms=a.batch_window_ms,
                max_batch=a.max_batch,
                max_pending=a.max_pending,
            )
        )
        return action

    async def run(self) -> None:
        """The asyncio loop: tick every ``interval_s`` until cancelled."""
        while True:
            await asyncio.sleep(self.config.interval_s)
            self.tick()

    # -- Introspection -----------------------------------------------------

    @property
    def adjustments(self) -> int:
        return self.widened + self.shrunk + self.admission_changes

    def snapshot(self) -> dict:
        """Counters, live vs initial knob values, and the tick trace —
        the ``/stats`` ``controller`` section and the bench's evidence."""
        window0, batch0, pending0 = self._initial
        return {
            "slo_p99_ms": self.config.slo_p99_ms,
            "interval_s": self.config.interval_s,
            "ticks": self.ticks,
            "idle_ticks": self.idle_ticks,
            "breaches": self.breaches,
            "widened": self.widened,
            "shrunk": self.shrunk,
            "admission_changes": self.admission_changes,
            "adjustments": self.adjustments,
            "window_ms": round(self.answerer.batch_window_ms, 3),
            "max_batch": self.answerer.max_batch,
            "max_pending": self.answerer.max_pending,
            "initial_window_ms": round(window0, 3),
            "initial_max_batch": batch0,
            "initial_max_pending": pending0,
            "trace": [entry.as_dict() for entry in self.trace],
        }
