"""Asyncio serving core: coalescing + micro-batching over the sync answerer.

The paper answers one BFQ in tens of milliseconds (Table 14); serving heavy
traffic is then a *concurrency* problem, and real question traffic is
heavily duplicated (the head of the query distribution).  This module turns
the synchronous ``answer_many`` batch API into an asyncio service with three
mechanisms:

* **in-flight coalescing** — concurrent requests for the same *normalized*
  question (the answer-cache key) share one evaluation: the first arrival
  enqueues it, later arrivals await the same future.  N duplicates cost one
  Eq 7 evaluation and one executor round trip.
* **micro-batching** — distinct pending questions are drained into
  ``answer_many`` batches of up to ``max_batch`` and dispatched to a bounded
  execution backend (`repro.exec`): a thread pool by default, or — for real
  CPU scaling of the pure-python Eq 7 loop — a shared-nothing process pool
  evaluating epoch-tagged frozen answerer snapshots, amortizing the
  event-loop/executor handoff and the serving-cache probes across the batch.
* **admission control** — at most ``max_pending`` evaluations may be queued
  or executing; beyond that :meth:`AsyncAnswerer.answer` raises
  :class:`OverloadedError` *immediately* (the deterministic overload
  response the HTTP front maps to 503), instead of letting latency grow
  without bound.

The failure model (``tests/test_fault_tolerance.py``): a request may carry
a **deadline** — past it the caller gets :class:`DeadlineExceeded` (HTTP
504) while the evaluation itself keeps running for its coalesced siblings
and the answer cache; a batch whose process workers were killed mid-flight
(``BrokenProcessPool``) is **re-dispatched** against respawned workers
after a jittered exponential backoff, bounded by ``max_crash_retries`` —
the executor delivers nothing on a crash, so the retry is invisible to
callers.

Correctness under live KB updates rests on an epoch protocol: every
invalidation (:meth:`AsyncAnswerer.invalidate`, thread-safe) bumps an epoch
counter on the event loop; a batch whose evaluation straddled a bump is
**re-evaluated** before its futures resolve, so any request admitted after
an invalidation can never observe a pre-invalidation answer.  Writers that
want stronger serialization use :meth:`AsyncAnswerer.apply`, which pauses
dispatch, drains in-flight batches, runs the mutation on the executor, bumps
the epoch and resumes — single-writer/multi-reader with quiescence.

All mutable state is confined to the event loop; the only cross-thread entry
points are ``invalidate`` (via ``call_soon_threadsafe``) and the executor
workers, which touch nothing but the target's own (locked) caches.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import time
from collections import deque
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, replace
from typing import Callable, Protocol, Sequence

from repro.core.online import AnswerResult
from repro.exec.backend import EXEC_KINDS, Executor, make_executor
from repro.exec.pool import ExecutorPool
from repro.exec.shm import SegmentUnavailable
from repro.exec.snapshot import SnapshotManager, evaluate_frozen_batch
from repro.nlp.tokenizer import tokenize
from repro.serve.control import (
    ControllerConfig,
    FairQueue,
    QuotaExceeded,
    SLOController,
    parse_quota,
)
from repro.serve.metrics import ServeMetrics


class AnswerTarget(Protocol):
    """Anything with the batch answering API (``KBQA``, ``OnlineAnswerer``)."""

    def answer_many(self, questions: Sequence[str]) -> list[AnswerResult]:
        ...


class OverloadedError(RuntimeError):
    """Admission control rejected the request: the evaluation queue is full.

    The HTTP front maps this to a ``503`` with a machine-readable body; an
    in-process caller should back off and retry.  Raised *before* the
    request consumes any evaluation resources.
    """


class DeadlineExceeded(RuntimeError):
    """The request's deadline expired before its evaluation completed.

    The HTTP front maps this to a ``504``.  The underlying evaluation is
    *not* cancelled — its batch carries other requests, and a coalesced
    duplicate may still be waiting on it — the expired caller just stops
    waiting.
    """


def _consume_failure(future: asyncio.Future) -> None:
    """Mark an abandoned future's exception as retrieved.

    A deadline-expired caller walks away from its future; if the batch
    later fails and nobody else awaits it, the loop would log an
    "exception was never retrieved" traceback at GC time.
    """
    if not future.cancelled():
        future.exception()


def normalized_key(question: str) -> str:
    """The coalescing key: tokenized-and-rejoined question text.

    Identical to the :class:`~repro.core.online.OnlineAnswerer` answer-cache
    key, so the serving layer and the answerer agree on which questions are
    "the same".
    """
    return " ".join(tokenize(question))


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Tuning knobs for :class:`AsyncAnswerer` (defaults favor tests/laptops).

    ``max_batch`` bounds distinct questions per ``answer_many`` dispatch;
    ``max_pending`` is the admission bound on evaluations queued or
    executing (coalesced joiners are free and never rejected);
    ``workers`` sizes the evaluation pool; ``executor`` picks its backend —
    ``"thread"`` (the default: shared-memory, cheap handoff, GIL-bound),
    ``"process"`` (shared-nothing workers evaluating epoch-tagged frozen
    answerer snapshots — real CPU parallelism for the pure-python Eq 7
    loop; the target must be picklable), or ``"serial"`` (inline on the
    event loop; the determinism baseline for tests).  None means
    ``"thread"`` — deliberately *not* the ``KBQA_EXEC`` environment, so a
    suite-wide env override cannot silently flip serving tests onto a
    backend their scripted targets cannot pickle for; the CLI resolves the
    environment into an explicit value instead.  ``coalesce`` toggles
    duplicate sharing (off exists for the A/B in the QPS benchmark);
    ``batch_window_ms`` optionally lingers before dispatching an
    under-filled batch, trading latency for fuller batches;
    ``max_stale_retries`` bounds re-evaluation when invalidations keep
    landing mid-flight — past it the freshest attempt is delivered anyway
    (bounded staleness instead of livelock under sustained writes).

    The failure-model knobs: ``deadline_ms`` is the default per-request
    deadline (0 disables; the HTTP front's ``X-KBQA-Deadline-Ms`` header
    overrides per request) after which the caller gets
    :class:`DeadlineExceeded` (HTTP 504) instead of waiting forever;
    ``max_crash_retries`` bounds how many times a batch whose pool workers
    died (``BrokenProcessPool``) is re-dispatched against respawned
    workers before the crash propagates; ``retry_backoff_ms`` is the base
    of the jittered exponential backoff slept between those crash retries
    (0 disables the sleep).

    The control-plane knobs (`repro.serve.control`): ``adaptive`` starts an
    SLO feedback controller that treats ``batch_window_ms`` / ``max_batch``
    / ``max_pending`` as *initial values* and retunes them live against the
    ``slo_ms`` p99 target (required > 0 when adaptive); ``quota`` is a
    per-tenant token-bucket spec (``"RATE:BURST[;tenant=weight...]"``) that
    replaces the FIFO dispatch queue with weighted-fair per-tenant queues —
    requests past quota get :class:`~repro.serve.control.QuotaExceeded`
    (HTTP 429).
    """

    max_batch: int = 16
    max_pending: int = 256
    workers: int = 2
    coalesce: bool = True
    batch_window_ms: float = 0.0
    max_stale_retries: int = 5
    executor: str | None = None
    deadline_ms: float = 0.0
    max_crash_retries: int = 2
    retry_backoff_ms: float = 2.0
    slo_ms: float = 0.0
    adaptive: bool = False
    quota: str | None = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.batch_window_ms < 0:
            raise ValueError(f"batch_window_ms must be >= 0, got {self.batch_window_ms}")
        if self.max_stale_retries < 1:
            raise ValueError(
                f"max_stale_retries must be >= 1, got {self.max_stale_retries}"
            )
        if self.deadline_ms < 0:
            raise ValueError(f"deadline_ms must be >= 0, got {self.deadline_ms}")
        if self.max_crash_retries < 0:
            raise ValueError(
                f"max_crash_retries must be >= 0, got {self.max_crash_retries}"
            )
        if self.retry_backoff_ms < 0:
            raise ValueError(
                f"retry_backoff_ms must be >= 0, got {self.retry_backoff_ms}"
            )
        if self.executor is not None and self.executor not in EXEC_KINDS:
            raise ValueError(
                f"executor must be one of {EXEC_KINDS} or None, got {self.executor!r}"
            )
        if self.slo_ms < 0:
            raise ValueError(f"slo_ms must be >= 0, got {self.slo_ms}")
        if self.adaptive and self.slo_ms <= 0:
            raise ValueError("adaptive serving requires slo_ms > 0")
        if self.quota is not None:
            parse_quota(self.quota)  # validate eagerly; ValueError on a bad spec


@dataclass(slots=True)
class ServeStats:
    """Monotonic serving counters (exposed raw on ``/stats``)."""

    requests: int = 0  # accepted question submissions
    coalesced: int = 0  # requests that joined an in-flight evaluation
    rejected: int = 0  # admission-control rejections
    batches: int = 0  # answer_many dispatches that delivered results
    evaluated: int = 0  # questions sent through answer_many (incl. retries)
    stale_retries: int = 0  # re-evaluations forced by a mid-flight invalidation
    stale_delivered: int = 0  # batches delivered at the retry cap (bounded staleness)
    invalidations: int = 0  # epoch bumps observed
    applies: int = 0  # quiesced writes through apply()
    max_batch_seen: int = 0
    deadline_expired: int = 0  # requests abandoned at their deadline (504s)
    crash_retries: int = 0  # batch re-dispatches after pool-worker death
    respawns: int = 0  # executors replaced after worker death
    degraded: int = 0  # answer-cache hits served in degraded mode (by the app)
    quota_rejected: int = 0  # per-tenant quota rejections (429s)
    fallback_served: int = 0  # answers recovered by the semantic fallback lane
    fallback_abstained: int = 0  # unanswered despite the lane being enabled


class AsyncAnswerer:
    """Coalescing, micro-batching asyncio front over a synchronous answerer.

    Lifecycle: ``await start()`` inside a running event loop (or use
    ``async with``), submit with :meth:`answer` / :meth:`answer_many`,
    ``await stop()`` to drain and shut the executor down.  One instance
    binds to one event loop.
    """

    def __init__(
        self,
        target: AnswerTarget,
        config: ServeConfig | None = None,
        key: Callable[[str], str] = normalized_key,
        pool: ExecutorPool | None = None,
    ) -> None:
        self.target = target
        self.config = config or ServeConfig()
        self.stats = ServeStats()
        self.metrics = ServeMetrics()
        # Fallback-lane accounting is result-driven (the `fallback` tag on
        # AnswerResult), so it works unchanged when evaluation happens in a
        # process worker whose target-side counters never come back.
        self._fallback_enabled = bool(getattr(target, "fallback_enabled", False))
        # Live knobs, seeded from the (frozen) config: the SLO controller
        # mutates these, never the config, so the configured values remain
        # the restart baseline and the controller caps.
        self.batch_window_ms: float = self.config.batch_window_ms
        self.max_batch: int = self.config.max_batch
        self.max_pending: int = self.config.max_pending
        self._key = key
        self._loop: asyncio.AbstractEventLoop | None = None
        # A borrowed ExecutorPool (owned by KBQAServer / the caller) decides
        # the backend and provides warm workers that survive this answerer's
        # stop(); without one the answerer builds and owns its executor.
        self._pool = pool
        self._exec_kind: str = (
            pool.kind if pool is not None else (self.config.executor or "thread")
        )
        self._executor: Executor | None = None
        self._snapshots: SnapshotManager | None = None
        # (key, question, future, tenant, t_enq) items not yet dispatched;
        # one entry per distinct in-flight key when coalescing is on.  With
        # a quota configured the FIFO becomes per-tenant weighted-fair.
        self._fair: FairQueue | None = (
            FairQueue(parse_quota(self.config.quota))
            if self.config.quota is not None
            else None
        )
        self._queue: deque | FairQueue = (
            self._fair if self._fair is not None else deque()
        )
        self.controller: SLOController | None = None
        self._controller_task: asyncio.Task | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._pending = 0  # queued + executing evaluations (admission gauge)
        self._epoch = 0
        self._running = False
        self._paused = False
        self._active_batches = 0
        self._batch_tasks: set[asyncio.Task] = set()
        self._dispatcher: asyncio.Task | None = None
        self._wakeup: asyncio.Event | None = None
        self._quiesced: asyncio.Event | None = None
        self._write_lock: asyncio.Lock | None = None

    # -- Lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind to the running loop and start the dispatcher.

        The process backend freezes an epoch-0 snapshot *now*, so an
        unpicklable target fails here, loudly, instead of inside the first
        dispatched batch.
        """
        if self._running:
            raise RuntimeError("AsyncAnswerer already started")
        self._loop = asyncio.get_running_loop()
        if self._pool is not None:
            self._executor = self._pool.executor()
        else:
            self._executor = make_executor(self._exec_kind, self.config.workers)
        if self._exec_kind == "process":
            # snapshots publish into shared memory: micro-batches carry only
            # (epoch, segment name); the blob crosses once per epoch
            self._snapshots = SnapshotManager(self.target, use_shm=True)
            try:
                self._snapshots.freeze(self._epoch)
            except Exception:
                if self._pool is None:
                    self._executor.close()
                self._executor = None
                self._snapshots.close()
                self._snapshots = None
                raise
        self._wakeup = asyncio.Event()
        self._quiesced = asyncio.Event()
        self._quiesced.set()
        self._write_lock = asyncio.Lock()
        self._running = True
        self._dispatcher = self._loop.create_task(
            self._dispatch_loop(), name="kbqa-serve-dispatch"
        )
        if self.config.adaptive:
            # The window may widen to amortize dispatch, but never past half
            # the SLO (a linger alone must not eat the whole budget) nor an
            # absolute 50 ms; the configured window stays usable as a larger
            # starting point for the static-vs-adaptive A/B.
            max_window = max(
                self.config.batch_window_ms, min(self.config.slo_ms / 2.0, 50.0)
            )
            self.controller = SLOController(
                self,
                self.metrics,
                # the admission floor self-clamps to pending_cap in tick()
                ControllerConfig(
                    slo_p99_ms=self.config.slo_ms,
                    max_window_ms=max_window,
                ),
                batch_cap=self.config.max_batch,
                pending_cap=self.config.max_pending,
            )
            self._controller_task = self._loop.create_task(
                self.controller.run(), name="kbqa-serve-controller"
            )

    async def stop(self) -> None:
        """Stop admitting, fail queued requests, drain batches, shut down."""
        if not self._running:
            return
        self._running = False
        if self._controller_task is not None:
            self._controller_task.cancel()
            try:
                await self._controller_task
            except asyncio.CancelledError:
                pass
            self._controller_task = None
        assert self._dispatcher is not None
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        self._dispatcher = None
        # Queued-but-undispatched requests fail deterministically.
        while self._queue:
            key, _question, future, _tenant, _t_enq = self._queue.popleft()
            self._pending -= 1
            if self._inflight.get(key) is future:
                del self._inflight[key]
            if not future.done():
                future.set_exception(RuntimeError("serving stopped"))
        # In-flight batches are allowed to finish (their futures resolve).
        while self._active_batches:
            assert self._quiesced is not None
            self._quiesced.clear()
            await self._quiesced.wait()
        assert self._executor is not None
        if self._pool is None:
            self._executor.close()  # joins thread *and* process workers
        self._executor = None
        if self._snapshots is not None:
            self._snapshots.close()  # unlinks every published segment
            self._snapshots = None

    async def __aenter__(self) -> "AsyncAnswerer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- Submission --------------------------------------------------------

    async def answer(
        self,
        question: str,
        *,
        deadline_s: float | None = None,
        tenant: str | None = None,
    ) -> AnswerResult:
        """Answer one question through coalescing + micro-batching.

        Raises :class:`OverloadedError` when admission control rejects the
        request; otherwise resolves to exactly what the synchronous path
        would return (equivalence-tested).  ``deadline_s`` bounds the wait
        (defaulting from ``config.deadline_ms`` when that is > 0): past it
        :class:`DeadlineExceeded` is raised and the caller walks away, but
        the evaluation itself keeps running — its batch carries other
        requests, and its result still warms the answer cache.

        ``tenant`` attributes the request to a client (the HTTP front passes
        the ``X-KBQA-Client`` header): it keys the per-tenant metrics and,
        with a quota configured, the token-bucket admission + fair-queue
        scheduling — a tenant past its bucket and its weighted queue share
        gets :class:`~repro.serve.control.QuotaExceeded` (HTTP 429).
        Joining an in-flight evaluation is always free: a coalesced
        duplicate costs the box nothing, so quotas never reject it.
        """
        if not self._running:
            raise RuntimeError("AsyncAnswerer is not running (call start())")
        if deadline_s is None and self.config.deadline_ms > 0:
            deadline_s = self.config.deadline_ms / 1000.0
        if tenant is not None:
            self.metrics.tenant_inc(tenant, "requests")
        key = self._key(question)
        shared = self._inflight.get(key) if self.config.coalesce else None
        if shared is not None:
            self.stats.requests += 1
            self.stats.coalesced += 1
            if tenant is not None:
                self.metrics.tenant_inc(tenant, "coalesced")
            result = await self._await_result(shared, deadline_s)
            return result if result.question == question else replace(result, question=question)
        if self._fair is not None and not self._fair.admit(
            tenant, time.monotonic(), max_pending=self.max_pending
        ):
            self.stats.quota_rejected += 1
            if tenant is not None:
                self.metrics.tenant_inc(tenant, "quota_rejected")
            raise QuotaExceeded(
                f"client {tenant or 'anonymous'} is over its request quota"
            )
        if self._pending >= self.max_pending:
            self.stats.rejected += 1
            if tenant is not None:
                self.metrics.tenant_inc(tenant, "rejected")
            raise OverloadedError(
                f"serving queue full ({self.max_pending} pending evaluations)"
            )
        assert self._loop is not None and self._wakeup is not None
        future: asyncio.Future = self._loop.create_future()
        if self.config.coalesce:
            self._inflight[key] = future
        self._queue.append((key, question, future, tenant, time.monotonic()))
        self._pending += 1
        self.stats.requests += 1
        self._wakeup.set()
        result = await self._await_result(future, deadline_s)
        return result if result.question == question else replace(result, question=question)

    async def _await_result(
        self, future: asyncio.Future, deadline_s: float | None
    ) -> AnswerResult:
        """Await an evaluation future, abandoning it at the deadline.

        ``shield`` keeps the future alive either way — a timeout cancels
        only the waiter.  An abandoned future gets a consuming callback so
        a later batch failure is not logged as an unretrieved exception.
        """
        if deadline_s is None:
            return await asyncio.shield(future)
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout=deadline_s)
        except TimeoutError:
            self.stats.deadline_expired += 1
            future.add_done_callback(_consume_failure)
            raise DeadlineExceeded(
                f"deadline of {deadline_s * 1000.0:g} ms expired before the "
                "evaluation completed"
            ) from None

    async def answer_many(
        self,
        questions: Sequence[str],
        *,
        deadline_s: float | None = None,
        tenant: str | None = None,
    ) -> list[AnswerResult]:
        """Concurrent submission of a client batch (order preserved).

        Admission is checked for the *whole* batch up front: if the distinct
        not-yet-in-flight questions cannot fit the remaining capacity, the
        batch is rejected before any of it is enqueued — a 503'd client
        batch must shed load, not consume ``max_pending`` evaluations whose
        results nobody reads.  (Individual submissions can still race other
        clients for the last slots; that narrow window keeps the per-call
        admission check authoritative.)
        """
        if not self._running:
            raise RuntimeError("AsyncAnswerer is not running (call start())")
        if self.config.coalesce:
            needed = len({self._key(q) for q in questions} - self._inflight.keys())
        else:
            needed = len(questions)
        free = self.max_pending - self._pending
        if needed > free:
            self.stats.rejected += len(questions)
            if tenant is not None:
                self.metrics.tenant_inc(tenant, "rejected", len(questions))
            raise OverloadedError(
                f"batch needs {needed} evaluations but only {max(free, 0)} "
                f"of {self.max_pending} slots are free"
            )
        return list(
            await asyncio.gather(
                *(self.answer(q, deadline_s=deadline_s, tenant=tenant) for q in questions)
            )
        )

    # -- Invalidation + writes ---------------------------------------------

    def invalidate(self) -> None:
        """Bump the serving epoch (thread-safe).

        Call after any KB mutation visible to the target answerer.  Batches
        whose evaluation overlapped the bump re-evaluate before resolving,
        so requests admitted after this call never see pre-invalidation
        answers.  The HTTP server wires the KB backend's change stream here.
        """
        loop = self._loop
        if loop is None:
            return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            self._invalidate_on_loop()
        else:
            loop.call_soon_threadsafe(self._invalidate_on_loop)

    def _invalidate_on_loop(self) -> None:
        self._epoch += 1
        self.stats.invalidations += 1

    async def apply(self, mutation: Callable[[], object]) -> object:
        """Run ``mutation`` with write-quiescence; returns its result.

        Dispatch pauses, in-flight batches drain, the mutation runs off the
        event loop (so synchronous change listeners — expansion refresh,
        cache clears — never block it), the epoch bumps, dispatch resumes.
        Writers serialize against each other on an async lock.

        The mutation always runs in *this* process: it must mutate the live
        KB, and a closure is not picklable anyway — under the process
        backend it goes to the loop's default thread pool, and the workers
        pick the change up through the next epoch's refrozen snapshot.
        """
        if not self._running:
            raise RuntimeError("AsyncAnswerer is not running (call start())")
        assert self._write_lock is not None and self._loop is not None
        async with self._write_lock:
            self._paused = True
            try:
                while self._active_batches:
                    assert self._quiesced is not None
                    self._quiesced.clear()
                    await self._quiesced.wait()
                if self._exec_kind == "thread":
                    assert self._executor is not None
                    result = await asyncio.wrap_future(self._executor.submit(mutation))
                else:
                    result = await self._loop.run_in_executor(None, mutation)
                self._invalidate_on_loop()
                self.stats.applies += 1
                return result
            finally:
                self._paused = False
                assert self._wakeup is not None
                self._wakeup.set()

    # -- Dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Drain the queue into bounded ``answer_many`` batches forever."""
        assert self._wakeup is not None and self._loop is not None
        worker_slots = asyncio.Semaphore(self.config.workers)
        while True:
            while not self._queue or self._paused:
                self._wakeup.clear()
                if self._queue and not self._paused:
                    break  # racing set() between check and clear()
                await self._wakeup.wait()
            window_ms = self.batch_window_ms  # live knob: controller-tunable
            if window_ms > 0 and len(self._queue) < self.max_batch:
                await asyncio.sleep(window_ms / 1000.0)
                self.metrics.observe("batch_linger", window_ms)
            # Acquire the worker slot *before* popping: the only cancellation
            # points are awaits, so a stop() can never strand a popped batch.
            await worker_slots.acquire()
            size = min(len(self._queue), self.max_batch)
            if size == 0 or self._paused:
                worker_slots.release()
                continue
            batch = [self._queue.popleft() for _ in range(size)]
            now = time.monotonic()
            for item in batch:
                self.metrics.observe("queue_wait", (now - item[4]) * 1000.0, now)
            self._active_batches += 1
            task = self._loop.create_task(self._run_batch(batch, worker_slots))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _evaluate(self, questions: list[str], epoch: int) -> list[AnswerResult]:
        """One ``answer_many`` evaluation on the configured backend.

        * ``serial`` — inline on the event loop (blocks it; the determinism
          baseline for tests and a degenerate single-user mode);
        * ``thread`` — the live target on a pool thread (shared memory);
        * ``process`` — an epoch-tagged frozen snapshot on a process worker:
          the task carries only ``(epoch, segment name)`` of the snapshot
          *published into shared memory* for ``epoch`` (the blob crosses
          the pipe never, and the segment once per epoch per worker); a
          bumped epoch re-freezes from the live (already mutated) target
          and republishes before the retry dispatch.  The ``pickle.dumps``
          of a large system is not cheap, so a re-freeze runs on a side
          thread — only the batch that triggers it waits; the event loop
          keeps accepting and completing other requests.
        """
        if self._exec_kind == "serial":
            return self.target.answer_many(questions)
        assert self._executor is not None
        if self._exec_kind == "process":
            assert self._snapshots is not None and self._loop is not None
            task = self._snapshots.cached_task(epoch, questions)
            if task is None:
                task = await self._loop.run_in_executor(
                    None, self._snapshots.task_for, epoch, questions
                )
            return await asyncio.wrap_future(
                self._executor.submit(evaluate_frozen_batch, task)
            )
        return await asyncio.wrap_future(
            self._executor.submit(self.target.answer_many, questions)
        )

    async def _run_batch(
        self,
        batch: list[tuple[str, str, asyncio.Future, str | None, float]],
        worker_slots: asyncio.Semaphore,
    ) -> None:
        """Evaluate one micro-batch on the executor; deliver or retry.

        The freshness invariant lives in the retry loop: a result set is
        delivered only if the epoch did not change between dispatch and
        completion, otherwise the batch re-evaluates against the (already
        invalidated, hence refreshed) target caches — and, on the process
        backend, against a snapshot *re-frozen at the new epoch*, so worker
        copies can never pin pre-invalidation state.  Retries are capped at
        ``max_stale_retries`` so a writer mutating faster than one epoch
        bump per evaluation degrades to *bounded staleness* (the freshest
        attempt is delivered, ``stale_delivered`` counts it) instead of
        livelocking the batch's futures.

        Worker death (``BrokenExecutor``) is the other retry arm: the
        executor is respawned and the whole batch re-dispatched against the
        fresh workers — ``Executor.map``/``submit`` deliver nothing on a
        crash, so the retry is invisible to callers — after a jittered
        exponential backoff, bounded by ``max_crash_retries``.
        """
        questions = [item[1] for item in batch]
        try:
            retries = 0
            crashes = 0
            while True:
                epoch = self._epoch
                executor = self._executor
                eval_start = time.monotonic()
                try:
                    results = await self._evaluate(questions, epoch)
                except BrokenExecutor:
                    # pool workers died mid-batch (SIGKILL / OOM): respawn
                    # and re-dispatch, bounded — a workload that kills every
                    # pool it touches must surface, not loop
                    crashes += 1
                    if crashes > self.config.max_crash_retries:
                        raise
                    self.stats.crash_retries += 1
                    self._respawn_executor(executor)
                    backoff = self._backoff_s(crashes)
                    if backoff > 0:
                        await asyncio.sleep(backoff)
                    continue
                except SegmentUnavailable:
                    # the shared-memory publish for `epoch` was retired by a
                    # newer epoch while this batch dispatched — same meaning
                    # as a stale epoch, so retry against the fresh publish
                    # (bounded: re-raise past the cap instead of spinning)
                    self.stats.stale_retries += 1
                    retries += 1
                    if retries > self.config.max_stale_retries:
                        raise
                    continue
                self.metrics.observe(
                    "evaluate", (time.monotonic() - eval_start) * 1000.0
                )
                self.stats.evaluated += len(questions)
                if epoch == self._epoch:
                    break
                self.stats.stale_retries += 1
                retries += 1
                if retries >= self.config.max_stale_retries:
                    self.stats.stale_delivered += 1
                    break
            self.stats.batches += 1
            self.stats.max_batch_seen = max(self.stats.max_batch_seen, len(questions))
            done = time.monotonic()
            # A batch that survived a crash retry carries the respawn +
            # backoff cost: its samples are tainted, i.e. excluded from the
            # controller's histogram so the spike cannot shrink the window.
            tainted = crashes > 0
            for (key, _question, future, tenant, t_enq), result in zip(batch, results):
                if self._inflight.get(key) is future:
                    del self._inflight[key]
                if not future.done():
                    future.set_result(result)
                if getattr(result, "fallback", False):
                    self.stats.fallback_served += 1
                elif self._fallback_enabled and not result.answered:
                    self.stats.fallback_abstained += 1
                self.metrics.observe_total(
                    (done - t_enq) * 1000.0, tainted=tainted, now=done
                )
                if tenant is not None:
                    self.metrics.tenant_inc(tenant, "completed")
        except Exception as error:  # target failure: fail the whole batch
            for key, _question, future, tenant, _t_enq in batch:
                if self._inflight.get(key) is future:
                    del self._inflight[key]
                if not future.done():
                    future.set_exception(error)
                if tenant is not None:
                    self.metrics.tenant_inc(tenant, "failed")
        finally:
            self._pending -= len(batch)
            self._active_batches -= 1
            worker_slots.release()
            if self._active_batches == 0:
                assert self._quiesced is not None
                self._quiesced.set()

    def _respawn_executor(self, broken: Executor | None) -> None:
        """Replace a crashed executor with fresh workers (event-loop only).

        Identity-checked against ``broken``: concurrent batches that
        crashed on the *same* dead pool all call in, but only the first
        respawns — the rest pick up the replacement on their retry.  With
        a borrowed pool the check (and the published-payload preservation)
        lives in :meth:`ExecutorPool.respawn`.
        """
        if self._pool is not None:
            if self._pool.respawn(broken):
                self.stats.respawns += 1
            self._executor = self._pool.executor()
            return
        if broken is None or self._executor is not broken:
            return  # a sibling batch already replaced it
        try:
            broken.close()  # reaps whatever the crash left behind
        except Exception:  # pragma: no cover - broken pools may refuse
            pass
        self._executor = make_executor(self._exec_kind, self.config.workers)
        self.stats.respawns += 1

    def _backoff_s(self, attempt: int) -> float:
        """Jittered exponential backoff before crash-retry ``attempt``.

        Doubles from ``retry_backoff_ms``, capped at 250 ms, with ±50%
        jitter so concurrent crashed batches do not re-dispatch in
        lockstep against the freshly respawned workers.
        """
        base = self.config.retry_backoff_ms / 1000.0
        if base <= 0:
            return 0.0
        return min(base * (2 ** (attempt - 1)), 0.25) * random.uniform(0.5, 1.5)

    # -- Introspection -----------------------------------------------------

    def snapshot(self) -> dict:
        """Counters + live gauges for ``/stats`` and the load harness.

        The counter block is *derived* from :class:`ServeStats` via
        ``dataclasses.asdict`` so a new counter field can never be silently
        dropped from the snapshot (``tests/test_serve_metrics.py`` asserts
        the invariant); gauges and config echoes are appended explicitly.
        """
        data: dict = dataclasses.asdict(self.stats)
        data.update(
            {
                "pending": self._pending,
                "inflight_keys": len(self._inflight),
                "active_batches": self._active_batches,
                "epoch": self._epoch,
                "running": self._running,
                "coalesce": self.config.coalesce,
                "executor": self._exec_kind,
                "workers": self.config.workers,
                "snapshot_refreezes": (
                    self._snapshots.refreezes if self._snapshots is not None else 0
                ),
                "snapshot_publishes": (
                    self._snapshots.publishes if self._snapshots is not None else 0
                ),
                "pooled": self._pool is not None,
                # live control-plane knobs (== config unless adaptive)
                "batch_window_ms": round(self.batch_window_ms, 3),
                "max_batch": self.max_batch,
                "max_pending": self.max_pending,
                "adaptive": self.config.adaptive,
                "quota": self.config.quota is not None,
            }
        )
        return data

    def metrics_state(self) -> dict:
        """The mergeable telemetry unit: stage histograms + tenant counters
        from the metrics spine, with the :class:`ServeStats` counters folded
        in — what one replica dumps for cross-process ``/metrics`` merging."""
        state = self.metrics.state()
        state["counters"] = dataclasses.asdict(self.stats)
        return state

    def controller_snapshot(self) -> dict | None:
        """The SLO controller's counters, knobs and tick trace (None when
        not adaptive)."""
        return self.controller.snapshot() if self.controller is not None else None
