"""Serving telemetry spine: streaming latency histograms + counters.

The adaptive control plane (`repro.serve.control`) steers three live knobs
— batch window, batch size, admission bound — off *measured* tail latency,
so the measurement layer has to be cheap enough to sit on the hot path and
honest enough to steer by.  Three properties drive the design:

* **fixed log-bucket histograms** — latencies land in geometrically spaced
  buckets (growth ``2**0.25``, ~±9% relative resolution, ~0.05 ms …
  ~80 s).  Recording is one bisect + two adds under one uncontended lock;
  no sample list ever grows.  Bucket bounds are a module constant, so any
  two histograms (across stages, replicas, or processes) merge by adding
  count arrays — that is what the multi-process front does at ``/stats``
  and ``/metrics``.
* **windowed percentiles** — the controller must react to the *recent*
  p99, not the lifetime one, so each histogram keeps a ring of
  sub-histograms rotated by monotonic time: a windowed view sums the
  live slots (a few hundred ints), and stale slots are recycled lazily on
  the next record.  The cumulative histogram is kept alongside for
  Prometheus, whose scrape model wants monotonic totals.
* **per-stage and per-tenant attribution** — queue wait, batch linger and
  evaluation time are recorded separately from end-to-end total, and
  per-tenant counters make a noisy client visible.  Samples from batches
  that survived a *crash retry* are excluded from the controller's view
  (``tainted``): a worker SIGKILL inflates latency by the respawn cost,
  and shrinking the batch window in response would punish healthy traffic
  for a fault the retry path already absorbed.

Export formats: :func:`render_prometheus` writes the Prometheus text
exposition format (``/metrics``); :meth:`ServeMetrics.snapshot` returns the
JSON-friendly windowed view folded into ``/stats``;
:meth:`ServeMetrics.state` / :func:`merge_states` are the mergeable
cumulative form replicas dump to disk for cross-process aggregation.
:func:`parse_prometheus_text` is the validating parser the smoke test and
the test suite use to prove the exposition output is well-formed.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from math import ceil

# Geometric bucket bounds shared by every histogram: merging is defined
# only because these are a module constant, never per-instance.
BUCKET_GROWTH = 2.0 ** 0.25
_FIRST_BOUND_MS = 0.05
_LAST_BOUND_MS = 80_000.0


def _build_bounds() -> tuple[float, ...]:
    bounds = [_FIRST_BOUND_MS]
    while bounds[-1] < _LAST_BOUND_MS:
        bounds.append(bounds[-1] * BUCKET_GROWTH)
    return tuple(bounds)


BUCKET_BOUNDS_MS: tuple[float, ...] = _build_bounds()
_OVERFLOW = len(BUCKET_BOUNDS_MS)  # index of the +Inf bucket


class Histogram:
    """One fixed log-bucket latency histogram (values in milliseconds).

    Not thread-safe by itself; :class:`ServeMetrics` provides the lock.
    """

    __slots__ = ("counts", "sum_ms", "count")

    def __init__(self) -> None:
        self.counts = [0] * (_OVERFLOW + 1)
        self.sum_ms = 0.0
        self.count = 0

    def reset(self) -> None:
        """Zero every bucket and the running sum/count."""
        for i in range(len(self.counts)):
            self.counts[i] = 0
        self.sum_ms = 0.0
        self.count = 0

    def record(self, value_ms: float) -> None:
        self.counts[bisect_left(BUCKET_BOUNDS_MS, value_ms)] += 1
        self.sum_ms += value_ms
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram by bucket-count addition."""
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum_ms += other.sum_ms
        self.count += other.count

    def percentile(self, q: float) -> float | None:
        """The upper bucket bound covering quantile ``q`` in [0, 100].

        Conservative (like Prometheus ``histogram_quantile`` it reports a
        bound, not an interpolation); ``None`` on an empty histogram.
        """
        if self.count == 0:
            return None
        rank = max(1, ceil(self.count * q / 100.0))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                if i >= _OVERFLOW:
                    return BUCKET_BOUNDS_MS[-1] * BUCKET_GROWTH
                return BUCKET_BOUNDS_MS[i]
        return BUCKET_BOUNDS_MS[-1] * BUCKET_GROWTH  # pragma: no cover

    def mean(self) -> float | None:
        return self.sum_ms / self.count if self.count else None

    def to_state(self) -> dict:
        return {"counts": list(self.counts), "sum_ms": self.sum_ms, "count": self.count}

    @classmethod
    def from_state(cls, state: dict) -> "Histogram":
        """Rebuild from :meth:`to_state` output (validates bucket count)."""
        hist = cls()
        counts = state.get("counts", [])
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"histogram state has {len(counts)} buckets, expected {len(hist.counts)}"
            )
        hist.counts = [int(c) for c in counts]
        hist.sum_ms = float(state.get("sum_ms", 0.0))
        hist.count = int(state.get("count", 0))
        return hist


class WindowedHistogram:
    """A cumulative histogram plus a time-rotated ring of recent windows.

    ``record`` lands the sample in the cumulative histogram *and* the ring
    slot for ``now``'s window; a slot whose epoch fell out of the ring is
    reset in place on first touch (no timer thread).  ``view`` sums the
    slots still inside the lookback and reports the span they cover, which
    is what turns a windowed count into a service *rate*.
    """

    __slots__ = ("window_s", "windows", "total", "_epochs", "_ring")

    def __init__(self, window_s: float = 0.5, windows: int = 8) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if windows < 2:
            raise ValueError(f"windows must be >= 2, got {windows}")
        self.window_s = window_s
        self.windows = windows
        self.total = Histogram()
        self._epochs = [-1] * windows
        self._ring = [Histogram() for _ in range(windows)]

    def record(self, value_ms: float, now: float) -> None:
        """Record into the cumulative histogram and ``now``'s ring slot."""
        self.total.record(value_ms)
        epoch = int(now / self.window_s)
        slot = epoch % self.windows
        if self._epochs[slot] != epoch:
            self._ring[slot].reset()
            self._epochs[slot] = epoch
        self._ring[slot].record(value_ms)

    def view(self, now: float) -> tuple[Histogram, float]:
        """(merged recent histogram, seconds of lookback it spans)."""
        epoch = int(now / self.window_s)
        merged = Histogram()
        live = 0
        for slot in range(self.windows):
            if epoch - self._epochs[slot] < self.windows and self._epochs[slot] >= 0:
                merged.merge(self._ring[slot])
                live += 1
        return merged, max(live, 1) * self.window_s


class ServeMetrics:
    """The per-answerer telemetry hub: stage histograms + tenant counters.

    ``observe_total`` feeds two histograms: the ``total`` stage (every
    completed request) and the controller histogram (*untainted* requests
    only — crash-retried batches are excluded so respawn latency spikes
    cannot steer the knobs).  All mutation happens under one lock; the
    callers are the event loop and, for reads, the stats/bench threads.
    """

    STAGES = ("total", "queue_wait", "batch_linger", "evaluate")

    def __init__(self, *, window_s: float = 0.5, windows: int = 8) -> None:
        self._lock = threading.Lock()
        self._window_s = window_s
        self._stages = {
            name: WindowedHistogram(window_s, windows) for name in self.STAGES
        }
        self._controller = WindowedHistogram(window_s, windows)
        self._tenants: dict[str, dict[str, int]] = {}
        self.tainted = 0  # samples excluded from the controller's view

    # -- Recording ---------------------------------------------------------

    def observe(self, stage: str, value_ms: float, now: float | None = None) -> None:
        """Record one sample into the named stage histogram."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._stages[stage].record(value_ms, now)

    def observe_total(
        self, value_ms: float, *, tainted: bool = False, now: float | None = None
    ) -> None:
        """Record one end-to-end latency; ``tainted=True`` (crash-retried
        batch) keeps it out of the controller's steering histogram."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._stages["total"].record(value_ms, now)
            if tainted:
                self.tainted += 1
            else:
                self._controller.record(value_ms, now)

    def tenant_inc(self, tenant: str, event: str, n: int = 1) -> None:
        """Bump one per-tenant event counter."""
        with self._lock:
            counters = self._tenants.setdefault(tenant, {})
            counters[event] = counters.get(event, 0) + n

    # -- Views -------------------------------------------------------------

    def controller_view(self, now: float | None = None) -> dict:
        """The windowed signal the SLO controller ticks on."""
        now = time.monotonic() if now is None else now
        with self._lock:
            hist, span_s = self._controller.view(now)
        return {
            "count": hist.count,
            "p50_ms": hist.percentile(50),
            "p99_ms": hist.percentile(99),
            "span_s": span_s,
            "rate_qps": hist.count / span_s if span_s > 0 else 0.0,
        }

    def snapshot(self, now: float | None = None) -> dict:
        """JSON-friendly windowed + cumulative view for ``/stats``."""
        now = time.monotonic() if now is None else now
        stages = {}
        with self._lock:
            for name, wh in self._stages.items():
                recent, span_s = wh.view(now)
                stages[name] = {
                    "count": wh.total.count,
                    "mean_ms": _round3(wh.total.mean()),
                    "recent_count": recent.count,
                    "recent_span_s": span_s,
                    "p50_ms": _round3(recent.percentile(50)),
                    "p95_ms": _round3(recent.percentile(95)),
                    "p99_ms": _round3(recent.percentile(99)),
                }
            tenants = {t: dict(c) for t, c in self._tenants.items()}
            tainted = self.tainted
        return {"stages": stages, "tenants": tenants, "tainted_excluded": tainted}

    def state(self) -> dict:
        """Cumulative, mergeable state (the replica dump / merge unit)."""
        with self._lock:
            return {
                "stages": {
                    name: wh.total.to_state() for name, wh in self._stages.items()
                },
                "tenants": {t: dict(c) for t, c in self._tenants.items()},
                "counters": {},
                "tainted": self.tainted,
            }


def _round3(value: float | None) -> float | None:
    return None if value is None else round(value, 3)


def merge_states(states: list[dict]) -> dict:
    """Sum any number of :meth:`ServeMetrics.state` dicts into one.

    Shape-tolerant: stages/tenants/counters missing from one replica's dump
    (e.g. a replica that saw no traffic yet) contribute nothing, and so does
    an *empty* histogram state (``{}`` or ``counts: []`` with zero samples).
    A histogram whose bucket layout disagrees with this process's
    :data:`BUCKET_BOUNDS_MS` (replica built against a different layout) or
    that carries samples without buckets raises a ``ValueError`` naming the
    stage — merging it positionally would silently mis-bin every sample.
    """
    merged: dict = {"stages": {}, "tenants": {}, "counters": {}, "tainted": 0}
    for state in states:
        for name, hist_state in state.get("stages", {}).items():
            if not isinstance(hist_state, dict):
                raise ValueError(
                    f"stage {name!r}: histogram state must be a dict, "
                    f"got {type(hist_state).__name__}"
                )
            if not hist_state.get("counts"):
                if int(hist_state.get("count", 0)):
                    raise ValueError(
                        f"stage {name!r}: histogram state carries "
                        f"{hist_state['count']} samples but no buckets"
                    )
                continue  # empty dump: contributes nothing
            try:
                hist = Histogram.from_state(hist_state)
            except ValueError as error:
                raise ValueError(f"stage {name!r}: {error}") from None
            if name in merged["stages"]:
                existing = Histogram.from_state(merged["stages"][name])
                existing.merge(hist)
                merged["stages"][name] = existing.to_state()
            else:
                merged["stages"][name] = hist.to_state()
        for tenant, counters in state.get("tenants", {}).items():
            out = merged["tenants"].setdefault(tenant, {})
            for event, value in counters.items():
                out[event] = out.get(event, 0) + int(value)
        for counter, value in state.get("counters", {}).items():
            merged["counters"][counter] = merged["counters"].get(counter, 0) + int(value)
        merged["tainted"] += int(state.get("tainted", 0))
    return merged


# -- Prometheus text exposition --------------------------------------------

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    # Prometheus accepts any float syntax; integers render without the dot.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(state: dict, gauges: dict | None = None) -> str:
    """Render one (possibly merged) state dict as Prometheus text format.

    Stage histograms become ``kbqa_stage_latency_ms`` with a ``stage``
    label and cumulative ``le`` buckets; global counters become
    ``kbqa_serve_events_total{event=...}``; tenant counters become
    ``kbqa_tenant_events_total{tenant=...,event=...}``; ``gauges`` maps
    fully-qualified metric names to instantaneous values.
    """
    lines: list[str] = []
    lines.append("# TYPE kbqa_stage_latency_ms histogram")
    for stage in sorted(state.get("stages", {})):
        hist = Histogram.from_state(state["stages"][stage])
        label = _escape_label(stage)
        cumulative = 0
        for i, bound in enumerate(BUCKET_BOUNDS_MS):
            cumulative += hist.counts[i]
            lines.append(
                f'kbqa_stage_latency_ms_bucket{{stage="{label}",le="{_fmt(round(bound, 4))}"}} '
                f"{cumulative}"
            )
        lines.append(
            f'kbqa_stage_latency_ms_bucket{{stage="{label}",le="+Inf"}} {hist.count}'
        )
        lines.append(f'kbqa_stage_latency_ms_sum{{stage="{label}"}} {_fmt(round(hist.sum_ms, 4))}')
        lines.append(f'kbqa_stage_latency_ms_count{{stage="{label}"}} {hist.count}')
    lines.append("# TYPE kbqa_serve_events_total counter")
    for event in sorted(state.get("counters", {})):
        value = state["counters"][event]
        lines.append(
            f'kbqa_serve_events_total{{event="{_escape_label(event)}"}} {_fmt(value)}'
        )
    tenants = state.get("tenants", {})
    if tenants:
        lines.append("# TYPE kbqa_tenant_events_total counter")
        for tenant in sorted(tenants):
            for event in sorted(tenants[tenant]):
                lines.append(
                    f'kbqa_tenant_events_total{{tenant="{_escape_label(tenant)}",'
                    f'event="{_escape_label(event)}"}} {_fmt(tenants[tenant][event])}'
                )
    lines.append("# TYPE kbqa_controller_excluded_samples_total counter")
    lines.append(
        f"kbqa_controller_excluded_samples_total {_fmt(state.get('tainted', 0))}"
    )
    for name in sorted(gauges or {}):
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(gauges[name])}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse (and validate) Prometheus text format into
    ``{metric: [(labels, value), ...]}``.

    Strict enough to catch real framing bugs — malformed sample lines,
    unparseable values, non-monotonic ``le`` bucket counts — without
    implementing the full exposition grammar.  Raises ``ValueError``.
    """
    series: dict[str, list[tuple[dict[str, str], float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"line {lineno}: no metric name in {line!r}")
        try:
            value = float(value_part)
        except ValueError:
            raise ValueError(
                f"line {lineno}: unparseable value {value_part!r}"
            ) from None
        labels: dict[str, str] = {}
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ValueError(f"line {lineno}: unterminated labels in {line!r}")
            name, _, label_blob = name_part.partition("{")
            for pair in _split_labels(label_blob[:-1], lineno):
                key, sep, raw = pair.partition("=")
                if not sep or len(raw) < 2 or raw[0] != '"' or raw[-1] != '"':
                    raise ValueError(f"line {lineno}: malformed label {pair!r}")
                labels[key] = _unescape_label(raw[1:-1])
        else:
            name = name_part
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"line {lineno}: invalid metric name {name!r}")
        series.setdefault(name, []).append((labels, value))
    for name, samples in series.items():
        if name.endswith("_bucket"):
            _check_bucket_monotonic(name, samples)
    return series


def _unescape_label(raw: str) -> str:
    """Invert :func:`_escape_label` — a left-to-right scan, because chained
    ``str.replace`` calls corrupt ``\\\\n`` (escaped-backslash + n)."""
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\" and i + 1 < len(raw):
            nxt = raw[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _split_labels(blob: str, lineno: int) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for ch in blob:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated quote in labels")
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


def _check_bucket_monotonic(
    name: str, samples: list[tuple[dict[str, str], float]]
) -> None:
    """Cumulative ``le`` bucket counts must be non-decreasing per series."""
    groups: dict[tuple, list[tuple[float, float]]] = {}
    for labels, value in samples:
        le = labels.get("le")
        if le is None:
            raise ValueError(f"{name}: bucket sample without le label")
        bound = float("inf") if le == "+Inf" else float(le)
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        groups.setdefault(key, []).append((bound, value))
    for key, buckets in groups.items():
        buckets.sort()
        last = -1.0
        for bound, value in buckets:
            if value < last:
                raise ValueError(
                    f"{name}{dict(key)}: bucket counts not monotonic at le={bound}"
                )
            last = value
