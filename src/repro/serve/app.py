"""The KBQA answer service: HTTP routes over :class:`AsyncAnswerer`.

Endpoints (all JSON):

* ``POST /answer``  ``{"question": "..."}`` -> one answer payload; ``503``
  with ``{"error": "overloaded", ...}`` when admission control rejects —
  unless the answer cache holds the question, in which case the cached
  result is served with ``"degraded": true`` (an answer beats a refusal).
  An ``X-KBQA-Deadline-Ms`` header (or ``ServeConfig.deadline_ms``) bounds
  the wait: past it the request gets a ``504``.
* ``POST /batch``   ``{"questions": [...]}`` -> ``{"results": [...]}`` in
  input order (each question goes through coalescing individually); the
  deadline header applies per question, and the degraded fallback fires
  only when *every* question is cached.
* ``POST /facts``   ``{"op": "add"|"delete", "subject", "predicate",
  "object"}`` -> applies a live KB edit through the write-quiescence path,
  so the expansion refresh + cache invalidation happen with no evaluation
  in flight.
* ``GET /healthz``  liveness + uptime — answered *before* the answerer, so
  admission control and tenant quotas can never starve a liveness probe.
* ``GET /stats``    serving counters, answerer cache occupancy, KB stats,
  the metrics spine's windowed latency view and (when adaptive) the SLO
  controller's knobs + tick trace.
* ``GET /metrics``  Prometheus text exposition of the telemetry spine
  (stage latency histograms, serve/tenant counters, live-knob gauges);
  under the multi-process front each replica periodically dumps its
  cumulative state to a shared directory and whichever replica serves the
  scrape merges the dumps with its own live state.

Requests may carry an ``X-KBQA-Client`` header naming the tenant: it keys
the per-tenant counters and — with ``ServeConfig.quota`` set — the
token-bucket admission whose rejections map to ``429``.

The server also subscribes to the KB backend's change stream (single and
batched) and routes every external mutation into
:meth:`AsyncAnswerer.invalidate`, so edits made directly against the store —
not just through ``/facts`` — keep in-flight results fresh.

:class:`BackgroundServer` runs the whole thing on a private event-loop
thread for synchronous callers (tests, the CLI smoke mode, examples).
"""

from __future__ import annotations

import asyncio
import json as _json
import os
import threading
import time
from concurrent.futures import BrokenExecutor
from typing import TYPE_CHECKING, Callable

from repro.core.online import AnswerResult
from repro.exec.pool import ExecutorPool
from repro.serve.async_answerer import (
    AsyncAnswerer,
    DeadlineExceeded,
    OverloadedError,
    ServeConfig,
)
from repro.serve.control import QuotaExceeded
from repro.serve.http import (
    BadRequest,
    HTTPRequest,
    read_request,
    response_bytes,
    text_response_bytes,
)
from repro.serve.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    merge_states,
    render_prometheus,
)

if TYPE_CHECKING:
    from repro.core.system import KBQA


def result_payload(result: AnswerResult, *, degraded: bool = False) -> dict:
    """JSON shape of one answer (stable: clients and tests key off this).

    ``degraded=True`` marks an answer served from the answer cache while the
    evaluation backend was unavailable — correct as of its caching, but not
    freshly evaluated.
    """
    return {
        "question": result.question,
        "answered": result.answered,
        "value": result.value,
        "values": list(result.values),
        "score": result.score,
        "entity": result.entity,
        "template": result.template,
        "predicate": str(result.predicate) if result.predicate is not None else None,
        "found_predicate": result.found_predicate,
        "degraded": degraded,
        "fallback": result.fallback,
    }


class KBQAServer:
    """Asyncio HTTP front over one trained :class:`~repro.core.system.KBQA`.

    ``port=0`` binds an ephemeral port (read ``server.port`` after
    :meth:`start`).  Use ``async with`` or pair :meth:`start`/:meth:`stop`.

    The server owns a persistent :class:`~repro.exec.pool.ExecutorPool` for
    its evaluation backend: answerer restarts within the server's lifetime
    reuse the same warm workers, and :meth:`stop` is the single point that
    joins them.  ``reuse_port=True`` binds the listening socket with
    ``SO_REUSEPORT`` so N sibling server processes can share one port (the
    `repro.serve.multiproc` front); ``fact_listener`` is called after every
    successful ``/facts`` mutation with ``(op, subject, predicate, object)``
    — the hook the multi-process front uses to replicate writes to its
    siblings.
    """

    def __init__(
        self,
        system: "KBQA",
        config: ServeConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        reuse_port: bool = False,
        fact_listener: "Callable[[str, str, str, str], None] | None" = None,
        metrics_dir: str | None = None,
        replica_index: int = 0,
    ) -> None:
        self.system = system
        self.config = config or ServeConfig()
        self.host = host
        self.port = port
        self.reuse_port = reuse_port
        self.fact_listener = fact_listener
        # multi-process metrics merging: replicas dump cumulative state
        # here (dump_metrics, called from the multiproc poll loop) and any
        # replica serving /metrics or /stats merges the siblings' dumps
        # with its own live state
        self.metrics_dir = metrics_dir
        self.replica_index = replica_index
        # the pool kind is resolved here, explicitly, so ServeConfig's
        # deliberate env-blindness is preserved (the CLI resolves KBQA_EXEC
        # into config.executor before constructing the server)
        self.exec_pool = ExecutorPool(
            self.config.executor or "thread", self.config.workers
        )
        self.answerer = AsyncAnswerer(system, self.config, pool=self.exec_pool)
        self._server: asyncio.Server | None = None
        self._unsubscribe = None
        self._connections: set[asyncio.Task] = set()
        self._started_monotonic = 0.0
        self.bad_requests = 0  # malformed/truncated requests answered with 400
        self.disconnects = 0  # connections dropped mid-request by the client

    # -- Lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start the answerer, subscribe to KB changes, bind the socket."""
        await self.answerer.start()
        # External mutations (library calls, other threads) invalidate too —
        # /facts goes further and quiesces, but the change stream is the
        # correctness backstop for *any* write path.
        self._unsubscribe = self.system.kb.store.subscribe(
            lambda _change: self.answerer.invalidate(),
            lambda _changes: self.answerer.invalidate(),
        )
        self._server = await asyncio.start_server(
            self._on_connection,
            self.host,
            self.port,
            reuse_port=self.reuse_port or None,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()

    async def stop(self) -> None:
        """Close the socket, cancel open connections, drain the answerer."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        await self.answerer.stop()
        # the answerer borrows the pool; the server joins the workers
        self.exec_pool.close()

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's foreground mode)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def __aenter__(self) -> "KBQAServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- Connection handling -----------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except BadRequest as error:
                    # malformed/truncated bytes: a clean 400 (best-effort —
                    # the writer may already be gone) and close, never a
                    # traceback out of the connection task
                    self.bad_requests += 1
                    try:
                        writer.write(
                            response_bytes(400, {"error": str(error)}, keep_alive=False)
                        )
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        self.disconnects += 1
                    break
                if request is None:
                    break
                status, payload = await self._route(request)
                keep = request.keep_alive
                if isinstance(payload, str):  # /metrics: Prometheus text
                    writer.write(
                        text_response_bytes(
                            status,
                            payload,
                            keep_alive=keep,
                            content_type=PROMETHEUS_CONTENT_TYPE,
                        )
                    )
                else:
                    writer.write(response_bytes(status, payload, keep_alive=keep))
                await writer.drain()
                if not keep:
                    break
        except asyncio.CancelledError:
            pass  # server shutdown cancels open connections
        except (ConnectionResetError, BrokenPipeError, TimeoutError, OSError):
            self.disconnects += 1  # client went away mid-request/response
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError, asyncio.CancelledError):
                pass

    # -- Routing -----------------------------------------------------------

    async def _route(self, request: HTTPRequest) -> tuple[int, dict | str]:
        route = (request.method, request.path)
        try:
            if route == ("GET", "/healthz"):
                return 200, {
                    "status": "ok",
                    "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
                }
            if route == ("GET", "/stats"):
                payload = {
                    "serve": self.answerer.snapshot(),
                    "caches": self.system.answerer.cache_info(),
                    "kb": self.system.kb.store.stats(),
                    "http": {
                        "bad_requests": self.bad_requests,
                        "disconnects": self.disconnects,
                    },
                    "metrics": self.answerer.metrics.snapshot(),
                    "controller": self.answerer.controller_snapshot(),
                }
                if self.metrics_dir is not None:
                    merged, reporting = self._merged_state()
                    payload["replicas"] = {
                        "reporting": reporting,
                        "requests": merged["counters"].get("requests", 0),
                        "batches": merged["counters"].get("batches", 0),
                    }
                return 200, payload
            if route == ("GET", "/metrics"):
                return 200, self._render_metrics()
            if route == ("POST", "/answer"):
                return await self._handle_answer(request)
            if route == ("POST", "/batch"):
                return await self._handle_batch(request)
            if route == ("POST", "/facts"):
                return await self._handle_facts(request)
            if request.path in (
                "/healthz", "/stats", "/metrics", "/answer", "/batch", "/facts",
            ):
                return 405, {"error": f"method {request.method} not allowed"}
            return 404, {"error": f"no route for {request.path}"}
        except BadRequest as error:
            return 400, {"error": str(error)}
        except DeadlineExceeded as error:
            return 504, {"error": "deadline exceeded", "detail": str(error)}
        except QuotaExceeded as error:
            return 429, {"error": "quota exceeded", "detail": str(error)}
        except OverloadedError:
            return 503, {
                "error": "overloaded",
                "max_pending": self.answerer.max_pending,
            }
        except Exception as error:  # deterministic 500, never a hung socket
            return 500, {"error": f"{type(error).__name__}: {error}"}

    # -- Metrics export ----------------------------------------------------

    def _own_metrics_path(self) -> str:
        assert self.metrics_dir is not None
        return os.path.join(self.metrics_dir, f"replica-{self.replica_index}.json")

    def dump_metrics(self) -> None:
        """Atomically publish this replica's cumulative metrics state.

        Called periodically from the multi-process front's poll loop; the
        tmp-write + rename means a sibling merging mid-dump can never read
        a torn file.
        """
        if self.metrics_dir is None:
            return
        path = self._own_metrics_path()
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            _json.dump(self.answerer.metrics_state(), handle, separators=(",", ":"))
        os.replace(tmp, path)

    def _merged_state(self) -> tuple[dict, int]:
        """This replica's live state merged with every sibling's last dump.

        Returns ``(state, replicas_reporting)`` where the count includes
        this replica.  A sibling's dump of *this* replica's slot is ignored
        in favor of the live state (fresher by up to one dump interval).
        """
        states = [self.answerer.metrics_state()]
        if self.metrics_dir is not None:
            own = (
                os.path.basename(self._own_metrics_path()),
                os.path.basename(self._own_metrics_path()) + ".tmp",
            )
            try:
                names = sorted(os.listdir(self.metrics_dir))
            except OSError:
                names = []
            for name in names:
                if name in own or not name.endswith(".json"):
                    continue
                try:
                    with open(
                        os.path.join(self.metrics_dir, name), encoding="utf-8"
                    ) as handle:
                        states.append(_json.load(handle))
                except (OSError, ValueError):
                    continue  # sibling died mid-rename or dumped garbage
        return merge_states(states), len(states)

    def _render_metrics(self) -> str:
        """The ``/metrics`` body: merged counters + live-knob gauges."""
        state, reporting = (
            self._merged_state()
            if self.metrics_dir is not None
            else (merge_states([self.answerer.metrics_state()]), 1)
        )
        snapshot = self.answerer.snapshot()
        gauges = {
            "kbqa_batch_window_ms": self.answerer.batch_window_ms,
            "kbqa_max_batch": self.answerer.max_batch,
            "kbqa_max_pending": self.answerer.max_pending,
            "kbqa_pending": snapshot["pending"],
            "kbqa_serving_epoch": snapshot["epoch"],
            "kbqa_replicas_reporting": reporting,
        }
        return render_prometheus(state, gauges)

    @staticmethod
    def _tenant(request: HTTPRequest) -> str | None:
        """The requesting tenant from ``X-KBQA-Client`` (None: untagged)."""
        raw = request.headers.get("x-kbqa-client", "").strip()
        return raw or None

    @staticmethod
    def _deadline_s(request: HTTPRequest) -> float | None:
        """Per-request deadline from ``X-KBQA-Deadline-Ms`` (None: config
        default applies)."""
        raw = request.headers.get("x-kbqa-deadline-ms")
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise BadRequest(f"invalid X-KBQA-Deadline-Ms: {raw!r}") from None
        if value <= 0:
            raise BadRequest("X-KBQA-Deadline-Ms must be > 0")
        return value / 1000.0

    async def _handle_answer(self, request: HTTPRequest) -> tuple[int, dict]:
        payload = request.json()
        question = payload.get("question")
        if not isinstance(question, str) or not question.strip():
            raise BadRequest("'question' must be a non-empty string")
        deadline_s = self._deadline_s(request)
        tenant = self._tenant(request)
        try:
            if deadline_s is None:  # config default applies inside answer()
                result = await self.answerer.answer(question, tenant=tenant)
            else:
                result = await self.answerer.answer(
                    question, deadline_s=deadline_s, tenant=tenant
                )
        except (OverloadedError, BrokenExecutor) as error:
            # degraded mode: the evaluation backend is saturated or its
            # workers just died — a cached answer beats a refusal, so probe
            # the answer cache (free) before surfacing the 503/500
            cached = self.system.answerer.cached_answer(question)
            if cached is None:
                raise error
            self.answerer.stats.degraded += 1
            return 200, result_payload(cached, degraded=True)
        return 200, result_payload(result)

    async def _handle_batch(self, request: HTTPRequest) -> tuple[int, dict]:
        payload = request.json()
        questions = payload.get("questions")
        if (
            not isinstance(questions, list)
            or not questions
            or not all(isinstance(q, str) and q.strip() for q in questions)
        ):
            raise BadRequest("'questions' must be a non-empty list of strings")
        deadline_s = self._deadline_s(request)
        tenant = self._tenant(request)
        try:
            if deadline_s is None:
                results = await self.answerer.answer_many(questions, tenant=tenant)
            else:
                results = await self.answerer.answer_many(
                    questions, deadline_s=deadline_s, tenant=tenant
                )
        except (OverloadedError, BrokenExecutor) as error:
            # a batch degrades only whole: partially-cached output would be
            # indistinguishable from a shorter result list
            cached = [self.system.answerer.cached_answer(q) for q in questions]
            if any(c is None for c in cached):
                raise error
            self.answerer.stats.degraded += len(cached)
            return 200, {
                "results": [result_payload(c, degraded=True) for c in cached]
            }
        return 200, {"results": [result_payload(r) for r in results]}

    async def _handle_facts(self, request: HTTPRequest) -> tuple[int, dict]:
        payload = request.json()
        op = payload.get("op")
        if op not in ("add", "delete"):
            raise BadRequest("'op' must be 'add' or 'delete'")
        triple = []
        for field_name in ("subject", "predicate", "object"):
            value = payload.get(field_name)
            if not isinstance(value, str) or not value:
                raise BadRequest(f"'{field_name}' must be a non-empty string")
            triple.append(value)
        subject, predicate, obj = triple
        if op == "add":
            mutation = lambda: self.system.add_fact(subject, predicate, obj)  # noqa: E731
        else:
            mutation = lambda: self.system.delete_fact(subject, predicate, obj)  # noqa: E731
        changed = await self.answerer.apply(mutation)
        if changed and self.fact_listener is not None:
            self.fact_listener(op, subject, predicate, obj)
        return 200, {"op": op, "changed": bool(changed)}


class BackgroundServer:
    """A :class:`KBQAServer` on a private event-loop thread.

    Synchronous context manager for tests, examples and the CLI smoke mode::

        with BackgroundServer(system) as bg:
            urllib.request.urlopen(bg.url + "/healthz")

    Entering starts the thread and blocks until the socket is bound (or the
    startup error is re-raised); exiting stops the server and joins the
    thread, so leaking event loops is impossible.
    """

    def __init__(
        self,
        system: "KBQA",
        config: ServeConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._system = system
        self._config = config
        self._host = host
        self._port = port
        self.server: KBQAServer | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._error: BaseException | None = None

    @property
    def url(self) -> str:
        assert self.server is not None, "server not started"
        return f"http://{self.server.host}:{self.server.port}"

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = KBQAServer(self._system, self._config, self._host, self._port)
        try:
            await server.start()
        except BaseException as error:
            self._error = error
            self._ready.set()
            return
        self.server = server
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await server.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surface loop crashes to the joiner
            self._error = error
            self._ready.set()

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="kbqa-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._error is not None:
            self._thread.join(timeout=5)
            raise RuntimeError("server failed to start") from self._error
        if self.server is None:
            raise RuntimeError("server did not become ready within 60s")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            if self._thread.is_alive():
                raise RuntimeError("server thread did not shut down within 30s")
        if self._error is not None:
            raise RuntimeError("server loop crashed") from self._error


def run_smoke(
    system: "KBQA",
    questions: list[str],
    *,
    threads: int = 8,
    requests_per_thread: int = 4,
    config: ServeConfig | None = None,
    procs: int = 1,
) -> dict:
    """Start a server, hammer it from ``threads`` concurrent clients, stop.

    Every client issues ``requests_per_thread`` ``POST /answer`` calls (the
    question stream repeats, so coalescing gets exercised), one client-side
    ``/batch``, and a ``/healthz`` + ``/stats`` read; ``/metrics`` must
    parse as Prometheus text format.  With ``config.adaptive`` the smoke
    additionally keeps load on the server until the SLO controller has
    adjusted at least one knob (window / batch / admission), failing if it
    never does.  Raises ``RuntimeError`` on any non-200, mismatched
    payload, or unclean shutdown; returns a summary dict on success.  This
    is the CI serving smoke test and the ``kbqa serve --smoke``
    implementation.

    ``procs > 1`` runs the same client traffic against a
    :class:`~repro.serve.multiproc.MultiProcessServer` — N forked replicas
    sharing the port via ``SO_REUSEPORT`` — and additionally asserts every
    replica process exited (the CI ``--procs 2`` smoke step).
    """
    import json
    import multiprocessing
    import urllib.error
    import urllib.request

    if not questions:
        raise ValueError("need at least one question for the smoke run")

    def post(url: str, payload: dict) -> tuple[int, dict]:
        data = json.dumps(payload).encode("utf-8")
        req = urllib.request.Request(
            url, data=data, headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read().decode("utf-8"))

    failures: list[str] = []
    statuses: list[int] = []
    lock = threading.Lock()

    if procs > 1:
        from repro.serve.multiproc import MultiProcessServer

        front: "BackgroundServer | MultiProcessServer" = MultiProcessServer(
            system, config, procs=procs
        )
    else:
        front = BackgroundServer(system, config)

    with front as bg:
        answer_url = bg.url + "/answer"

        def client(worker: int) -> None:
            for i in range(requests_per_thread):
                question = questions[(worker + i) % len(questions)]
                try:
                    status, payload = post(answer_url, {"question": question})
                except Exception as error:  # transport failure is a failure
                    with lock:
                        failures.append(f"/answer transport error: {error!r}")
                    continue
                with lock:
                    statuses.append(status)
                    if status != 200:
                        failures.append(f"/answer -> {status}: {payload}")
                    elif payload.get("question") != question:
                        failures.append(f"/answer echoed {payload.get('question')!r}")

        workers = [
            threading.Thread(target=client, args=(n,), name=f"smoke-{n}")
            for n in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            if worker.is_alive():
                failures.append(f"client thread {worker.name} hung")
        expected = threads * requests_per_thread
        if len(statuses) + sum("transport" in f for f in failures) != expected:
            failures.append(
                f"only {len(statuses)}/{expected} /answer responses recorded"
            )

        status, batch = post(bg.url + "/batch", {"questions": questions[:4] * 2})
        if status != 200 or len(batch.get("results", [])) != len(questions[:4] * 2):
            failures.append(f"/batch -> {status}: {batch}")

        controller_adjustments = 0
        if config is not None and config.adaptive:
            # keep traffic flowing until the controller proves it is alive:
            # p99 well under the SLO must widen the window (or the admission
            # target must move) within a few 250 ms control intervals
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                for i in range(16):
                    post(answer_url, {"question": questions[i % len(questions)]})
                with urllib.request.urlopen(bg.url + "/stats", timeout=30) as resp:
                    live = json.loads(resp.read().decode("utf-8"))
                controller = live.get("controller") or {}
                controller_adjustments = controller.get("adjustments", 0)
                if controller_adjustments:
                    break
            if not controller_adjustments:
                failures.append("adaptive controller never adjusted a knob")

        from repro.serve.metrics import parse_prometheus_text

        with urllib.request.urlopen(bg.url + "/metrics", timeout=30) as resp:
            metrics_text = resp.read().decode("utf-8")
        try:
            metrics_series = parse_prometheus_text(metrics_text)
        except ValueError as error:
            metrics_series = {}
            failures.append(f"/metrics does not parse: {error}")
        else:
            for required in ("kbqa_stage_latency_ms_bucket", "kbqa_serve_events_total"):
                if required not in metrics_series:
                    failures.append(f"/metrics is missing {required}")

        with urllib.request.urlopen(bg.url + "/healthz", timeout=30) as resp:
            if resp.status != 200:
                failures.append(f"/healthz -> {resp.status}")
        with urllib.request.urlopen(bg.url + "/stats", timeout=30) as resp:
            stats = json.loads(resp.read().decode("utf-8"))
        thread = bg._thread if isinstance(bg, BackgroundServer) else None

    if thread is not None and thread.is_alive():
        failures.append("server thread still alive after shutdown")
    if procs > 1:
        leftovers = [c for c in multiprocessing.active_children() if c.is_alive()]
        if leftovers:
            failures.append(
                f"{len(leftovers)} server process(es) still alive after shutdown"
            )
    if failures:
        raise RuntimeError("serving smoke failed: " + "; ".join(failures))
    serve_stats = stats["serve"]
    summary = {
        "requests": len(statuses),
        "http_200": sum(1 for s in statuses if s == 200),
        "serve_requests": serve_stats["requests"],
        "coalesced": serve_stats["coalesced"],
        "batches": serve_stats["batches"],
        "max_batch_seen": serve_stats["max_batch_seen"],
        "executor": serve_stats["executor"],
        "procs": procs,
        "metrics_series": len(metrics_series),
        "clean_shutdown": True,
    }
    if config is not None and config.adaptive:
        summary["controller_adjustments"] = controller_adjustments
        summary["batch_window_ms"] = serve_stats["batch_window_ms"]
        summary["max_pending"] = serve_stats["max_pending"]
    return summary
