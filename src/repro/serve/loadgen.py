"""Closed-loop load generator for the serving layer (QPS measurement).

Drives an :class:`~repro.serve.async_answerer.AsyncAnswerer` in-process with
``concurrency`` client coroutines pulling from one deterministic request
stream.  The stream models head-heavy question traffic with one knob,
``duplicate_rate``: each request is, with that probability, drawn from a
small *hot set*, otherwise the next question from the full pool.  Sweeping
``duplicate_rate`` x ``concurrency`` with coalescing on/off is exactly the
``qps`` section of ``BENCH_perf.json`` (see ``benchmarks/bench_qps.py``).

The generator is closed-loop (a client issues its next request only after
the previous one resolves), so measured QPS is throughput under
``concurrency`` outstanding requests, not an open-loop arrival-rate fiction.
Admission rejections are counted, never retried — a rejected request is a
served (negative) response from the client's point of view.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass

from repro.serve.async_answerer import AsyncAnswerer, OverloadedError


@dataclass(frozen=True, slots=True)
class LoadSpec:
    """One load-generation cell.

    ``requests`` total submissions, issued by ``concurrency`` closed-loop
    clients; ``duplicate_rate`` in [0, 1] sends that fraction of requests to
    the first ``hot_set`` questions of the pool; ``seed`` fixes the stream.
    """

    requests: int = 512
    concurrency: int = 16
    duplicate_rate: float = 0.0
    hot_set: int = 8
    seed: int = 7

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError(f"duplicate_rate must be in [0, 1], got {self.duplicate_rate}")
        if self.hot_set < 1:
            raise ValueError(f"hot_set must be >= 1, got {self.hot_set}")


def build_request_stream(questions: list[str], spec: LoadSpec) -> list[str]:
    """The deterministic request sequence for one cell (same seed -> same
    stream, so coalescing on/off runs see identical traffic)."""
    if not questions:
        raise ValueError("question pool is empty")
    rng = random.Random(spec.seed)
    hot = questions[: spec.hot_set]
    stream: list[str] = []
    cold_cursor = 0
    for _ in range(spec.requests):
        if rng.random() < spec.duplicate_rate:
            stream.append(hot[rng.randrange(len(hot))])
        else:
            stream.append(questions[cold_cursor % len(questions)])
            cold_cursor += 1
    return stream


async def run_load(answerer: AsyncAnswerer, stream: list[str], concurrency: int) -> dict:
    """Run one closed-loop load cell against a started answerer.

    Returns wall-clock QPS plus outcome counters and the answerer's own
    serving counters (coalesced / batches / evaluated), which is what the
    benchmark's coalescing A/B keys off.
    """
    cursor = 0
    answered = 0
    no_answer = 0
    rejected = 0

    async def client() -> None:
        nonlocal cursor, answered, no_answer, rejected
        while True:
            if cursor >= len(stream):
                return
            question = stream[cursor]
            cursor += 1
            try:
                result = await answerer.answer(question)
            except OverloadedError:
                rejected += 1
                continue
            if result.answered:
                answered += 1
            else:
                no_answer += 1

    start = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(concurrency)))
    wall_s = time.perf_counter() - start

    completed = answered + no_answer
    snapshot = answerer.snapshot()
    return {
        "requests": len(stream),
        "completed": completed,
        "answered": answered,
        "no_answer": no_answer,
        "rejected": rejected,
        "wall_s": round(wall_s, 4),
        "qps": round(completed / wall_s, 1) if wall_s > 0 else float("inf"),
        "coalesced": snapshot["coalesced"],
        "batches": snapshot["batches"],
        "evaluated": snapshot["evaluated"],
        "max_batch_seen": snapshot["max_batch_seen"],
    }


def run_load_cell(
    target,
    questions: list[str],
    spec: LoadSpec,
    *,
    coalesce: bool = True,
    max_batch: int = 16,
    workers: int = 2,
) -> dict:
    """Synchronous one-call cell: fresh answerer, fresh loop, one stream.

    ``target`` is anything with ``answer_many`` (typically an
    ``OnlineAnswerer`` with the answer cache disabled, so the measured
    effect is the *serving layer's* coalescing, not the target's cache).
    """
    from repro.serve.async_answerer import ServeConfig

    stream = build_request_stream(questions, spec)
    config = ServeConfig(
        max_batch=max_batch,
        max_pending=max(spec.concurrency * 2, 64),
        workers=workers,
        coalesce=coalesce,
    )

    async def _run() -> dict:
        async with AsyncAnswerer(target, config) as answerer:
            return await run_load(answerer, stream, spec.concurrency)

    result = asyncio.run(_run())
    result["coalesce"] = coalesce
    result["concurrency"] = spec.concurrency
    result["duplicate_rate"] = spec.duplicate_rate
    return result
