"""Load generators for the serving layer: closed-loop QPS and open-loop latency.

Drives an :class:`~repro.serve.async_answerer.AsyncAnswerer` in-process with
one deterministic request stream.  The stream models head-heavy question
traffic with one knob, ``duplicate_rate``: each request is, with that
probability, drawn from a small *hot set*, otherwise the next question from
the full pool.  Sweeping ``duplicate_rate`` x ``concurrency`` with
coalescing on/off is exactly the ``qps`` section of ``BENCH_perf.json``
(see ``benchmarks/bench_qps.py``).

Two arrival disciplines:

* **closed-loop** (:func:`run_load`) — ``concurrency`` client coroutines,
  each issuing its next request only after the previous one resolves;
  measured QPS is throughput under that many outstanding requests.
* **open-loop** (:func:`run_open_load`) — fixed-rate Poisson arrivals
  (seeded exponential inter-arrival gaps) that do *not* wait for responses,
  which is how real traffic behaves; the deliverable is the p50/p99
  response-latency distribution at an offered rate, the ROADMAP's "serving
  latency trajectory" item.

Admission rejections are counted, never retried — a rejected request is a
served (negative) response from the client's point of view.  Worker counts
default through :func:`repro.exec.backend.resolve_workers` (explicit arg >
``KBQA_WORKERS`` > fallback, clamped >= 1), so CI can pin them for
determinism.
"""

from __future__ import annotations

import asyncio
import random
import statistics
import time
from dataclasses import dataclass

from repro.exec.backend import resolve_workers
from repro.serve.async_answerer import (
    AsyncAnswerer,
    DeadlineExceeded,
    OverloadedError,
    normalized_key,
)
from repro.serve.control import QuotaExceeded


def _error_classes(
    rejected: int, deadline: int, failed: int, snapshot: dict, quota: int = 0
) -> dict:
    """Per-class error/degradation counters for one load cell.

    Client-observed classes (rejections, quota denials, deadline expiries,
    hard failures) plus the answerer's own retry/self-healing counters —
    the row the CI perf harness publishes so a fault-injection leg can
    assert *which* failure mode fired, not just a pass/fail.
    """
    return {
        "rejected": rejected,
        "quota": quota,
        "deadline": deadline,
        "failed": failed,
        "stale_retries": snapshot["stale_retries"],
        "crash_retries": snapshot["crash_retries"],
        "respawns": snapshot["respawns"],
        "degraded": snapshot["degraded"],
    }


@dataclass(frozen=True, slots=True)
class LoadSpec:
    """One load-generation cell.

    ``requests`` total submissions, issued by ``concurrency`` closed-loop
    clients; ``duplicate_rate`` in [0, 1] sends that fraction of requests to
    the first ``hot_set`` questions of the pool; ``seed`` fixes the stream.
    """

    requests: int = 512
    concurrency: int = 16
    duplicate_rate: float = 0.0
    hot_set: int = 8
    seed: int = 7

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError(f"duplicate_rate must be in [0, 1], got {self.duplicate_rate}")
        if self.hot_set < 1:
            raise ValueError(f"hot_set must be >= 1, got {self.hot_set}")


def build_request_stream(questions: list[str], spec: LoadSpec) -> list[str]:
    """The deterministic request sequence for one cell (same seed -> same
    stream, so coalescing on/off runs see identical traffic)."""
    if not questions:
        raise ValueError("question pool is empty")
    rng = random.Random(spec.seed)
    hot = questions[: spec.hot_set]
    stream: list[str] = []
    cold_cursor = 0
    for _ in range(spec.requests):
        if rng.random() < spec.duplicate_rate:
            stream.append(hot[rng.randrange(len(hot))])
        else:
            stream.append(questions[cold_cursor % len(questions)])
            cold_cursor += 1
    return stream


def build_zipf_stream(
    questions: list[str],
    requests: int,
    *,
    exponent: float = 1.1,
    seed: int = 7,
) -> list[str]:
    """A Zipf-skewed request stream: question at rank r drawn ~ 1/r^exponent.

    The scenario harness's hot-set axis: unlike the two-tier
    ``duplicate_rate`` model, the whole pool stays reachable but the head
    dominates — rank 1 of a 1.1-exponent draw over 10k questions carries
    ~7% of traffic on its own.  Deterministic for a given (pool, requests,
    exponent, seed).
    """
    if not questions:
        raise ValueError("question pool is empty")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if exponent <= 0:
        raise ValueError(f"exponent must be > 0, got {exponent}")
    rng = random.Random(seed)
    weights = [1.0 / (rank**exponent) for rank in range(1, len(questions) + 1)]
    return rng.choices(questions, weights=weights, k=requests)


async def run_load(
    answerer: AsyncAnswerer,
    stream: list[str],
    concurrency: int,
    *,
    deadline_s: float | None = None,
) -> dict:
    """Run one closed-loop load cell against a started answerer.

    Returns wall-clock QPS plus outcome counters, per-class error counts
    and the answerer's own serving counters (coalesced / batches /
    evaluated), which is what the benchmark's coalescing A/B keys off.
    ``deadline_s`` attaches a per-request deadline; expiries are counted,
    never retried (like rejections, an expiry is a served negative).
    """
    cursor = 0
    answered = 0
    no_answer = 0
    rejected = 0
    quota_denied = 0
    deadline_expired = 0
    failed = 0

    async def client() -> None:
        nonlocal cursor, answered, no_answer, rejected, quota_denied
        nonlocal deadline_expired, failed
        while True:
            if cursor >= len(stream):
                return
            question = stream[cursor]
            cursor += 1
            try:
                result = await answerer.answer(question, deadline_s=deadline_s)
            except QuotaExceeded:
                quota_denied += 1
                continue
            except OverloadedError:
                rejected += 1
                continue
            except DeadlineExceeded:
                deadline_expired += 1
                continue
            except Exception:
                failed += 1
                continue
            if result.answered:
                answered += 1
            else:
                no_answer += 1

    start = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(concurrency)))
    wall_s = time.perf_counter() - start

    completed = answered + no_answer
    snapshot = answerer.snapshot()
    return {
        "requests": len(stream),
        "completed": completed,
        "answered": answered,
        "no_answer": no_answer,
        "rejected": rejected,
        "wall_s": round(wall_s, 4),
        "qps": round(completed / wall_s, 1) if wall_s > 0 else float("inf"),
        "coalesced": snapshot["coalesced"],
        "batches": snapshot["batches"],
        "evaluated": snapshot["evaluated"],
        "max_batch_seen": snapshot["max_batch_seen"],
        "error_classes": _error_classes(
            rejected, deadline_expired, failed, snapshot, quota_denied
        ),
    }


def run_load_cell(
    target,
    questions: list[str],
    spec: LoadSpec,
    *,
    coalesce: bool = True,
    max_batch: int = 16,
    workers: int | None = None,
    executor: str | None = None,
) -> dict:
    """Synchronous one-call cell: fresh answerer, fresh loop, one stream.

    ``target`` is anything with ``answer_many`` (typically an
    ``OnlineAnswerer`` with the answer cache disabled, so the measured
    effect is the *serving layer's* coalescing, not the target's cache).
    ``workers`` resolves through ``KBQA_WORKERS`` and clamps >= 1;
    ``executor`` picks the evaluation backend (None = thread).
    """
    from repro.serve.async_answerer import ServeConfig

    stream = build_request_stream(questions, spec)
    config = ServeConfig(
        max_batch=max_batch,
        max_pending=max(spec.concurrency * 2, 64),
        workers=resolve_workers(workers, fallback=2),
        coalesce=coalesce,
        executor=executor,
    )

    async def _run() -> dict:
        async with AsyncAnswerer(target, config) as answerer:
            return await run_load(answerer, stream, spec.concurrency)

    result = asyncio.run(_run())
    result["coalesce"] = coalesce
    result["concurrency"] = spec.concurrency
    result["duplicate_rate"] = spec.duplicate_rate
    result["executor"] = config.executor or "thread"
    result["workers"] = config.workers
    return result


# -- Open-loop (fixed-rate Poisson) ----------------------------------------


@dataclass(frozen=True, slots=True)
class OpenLoadSpec:
    """One open-loop latency cell.

    ``rate_qps`` is the offered Poisson arrival rate; ``requests`` arrivals
    are generated with seeded exponential gaps, sharing the closed-loop
    stream model for question selection (``duplicate_rate`` / ``hot_set``).
    """

    rate_qps: float = 200.0
    requests: int = 256
    duplicate_rate: float = 0.5
    hot_set: int = 8
    seed: int = 7

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError(f"rate_qps must be > 0, got {self.rate_qps}")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError(f"duplicate_rate must be in [0, 1], got {self.duplicate_rate}")
        if self.hot_set < 1:
            raise ValueError(f"hot_set must be >= 1, got {self.hot_set}")


def latency_percentiles(latencies_ms: list[float]) -> dict:
    """p50/p95/p99/max of a latency sample (safe for 0- and 1-element
    samples, which ``statistics.quantiles`` rejects)."""
    if not latencies_ms:
        return {"p50_ms": None, "p95_ms": None, "p99_ms": None, "max_ms": None}
    ordered = sorted(latencies_ms)
    if len(ordered) == 1:
        only = round(ordered[0], 3)
        return {"p50_ms": only, "p95_ms": only, "p99_ms": only, "max_ms": only}
    quantile = statistics.quantiles(ordered, n=100, method="inclusive")
    return {
        "p50_ms": round(quantile[49], 3),
        "p95_ms": round(quantile[94], 3),
        "p99_ms": round(quantile[98], 3),
        "max_ms": round(ordered[-1], 3),
    }


async def run_open_load(
    answerer: AsyncAnswerer,
    stream: list[str],
    rate_qps: float,
    *,
    seed: int = 7,
    deadline_s: float | None = None,
    expected: dict | None = None,
) -> dict:
    """Fire the stream at a Poisson ``rate_qps`` against a started answerer.

    Arrivals never wait for earlier responses (open loop): each request is
    spawned as its own task after a seeded exponential gap.  Returns the
    response-latency percentiles over completed requests, the achieved
    arrival/completion rates, and per-class error counts — under overload
    the honest signal is p99 latency growth plus 503s (and, with
    ``deadline_s`` set, deadline expiries), not a throughput number.
    ``expected`` maps ``normalized_key(question)`` to the reference answer
    value tuple, exactly as in :func:`run_ramp_load`: completions that
    disagree count ``incorrect`` (the scenario harness's recall input).
    """
    rng = random.Random(seed)
    latencies_ms: list[float] = []
    rejected = 0
    quota_denied = 0
    answered = 0
    deadline_expired = 0
    failed = 0
    incorrect = 0
    checked = 0

    async def one(question: str) -> None:
        nonlocal rejected, quota_denied, answered, deadline_expired, failed
        nonlocal incorrect, checked
        start = time.perf_counter()
        try:
            result = await answerer.answer(question, deadline_s=deadline_s)
        except QuotaExceeded:
            quota_denied += 1
            return
        except OverloadedError:
            rejected += 1
            return
        except DeadlineExceeded:
            deadline_expired += 1
            return
        except Exception:
            failed += 1
            return
        latencies_ms.append((time.perf_counter() - start) * 1000.0)
        if result.answered:
            answered += 1
        if expected is not None:
            reference = expected.get(normalized_key(question))
            if reference is not None:
                checked += 1
                if tuple(result.values) != tuple(reference):
                    incorrect += 1

    start = time.perf_counter()
    tasks = []
    for question in stream:
        tasks.append(asyncio.ensure_future(one(question)))
        await asyncio.sleep(rng.expovariate(rate_qps))
    arrival_wall_s = time.perf_counter() - start
    await asyncio.gather(*tasks)
    wall_s = time.perf_counter() - start

    completed = len(latencies_ms)
    snapshot = answerer.snapshot()
    return {
        "error_classes": _error_classes(
            rejected, deadline_expired, failed, snapshot, quota_denied
        ),
        "requests": len(stream),
        "completed": completed,
        "answered": answered,
        "rejected": rejected,
        "checked": checked,
        "incorrect": incorrect,
        "offered_qps": round(rate_qps, 1),
        "achieved_arrival_qps": (
            round(len(stream) / arrival_wall_s, 1) if arrival_wall_s > 0 else None
        ),
        "completion_qps": round(completed / wall_s, 1) if wall_s > 0 else None,
        "wall_s": round(wall_s, 4),
        **latency_percentiles(latencies_ms),
    }


def run_open_load_cell(
    target,
    questions: list[str],
    spec: OpenLoadSpec,
    *,
    coalesce: bool = True,
    max_batch: int = 16,
    workers: int | None = None,
    executor: str | None = None,
    max_pending: int = 256,
    batch_window_ms: float = 0.0,
) -> dict:
    """Synchronous one-call open-loop cell (fresh answerer, fresh loop).

    ``batch_window_ms`` is the dispatch linger: an under-filled micro-batch
    waits that long for more arrivals before dispatching — the
    latency/throughput trade the ``batch_window`` sweep in
    ``benchmarks/bench_qps.py`` charts per offered rate.
    """
    from repro.serve.async_answerer import ServeConfig

    stream = build_request_stream(
        questions,
        LoadSpec(
            requests=spec.requests,
            concurrency=1,  # arrival discipline replaces closed-loop clients
            duplicate_rate=spec.duplicate_rate,
            hot_set=spec.hot_set,
            seed=spec.seed,
        ),
    )
    config = ServeConfig(
        max_batch=max_batch,
        max_pending=max_pending,
        workers=resolve_workers(workers, fallback=2),
        coalesce=coalesce,
        executor=executor,
        batch_window_ms=batch_window_ms,
    )

    async def _run() -> dict:
        async with AsyncAnswerer(target, config) as answerer:
            result = await run_open_load(
                answerer, stream, spec.rate_qps, seed=spec.seed
            )
            snapshot = answerer.snapshot()
            result["batches"] = snapshot["batches"]
            result["evaluated"] = snapshot["evaluated"]
            result["max_batch_seen"] = snapshot["max_batch_seen"]
            return result

    result = asyncio.run(_run())
    result["duplicate_rate"] = spec.duplicate_rate
    result["coalesce"] = coalesce
    result["executor"] = config.executor or "thread"
    result["workers"] = config.workers
    result["batch_window_ms"] = batch_window_ms
    return result


# -- Open-loop ramp (rate sweep + per-tenant tagging) -----------------------


@dataclass(frozen=True, slots=True)
class RampSpec:
    """An open-loop rate ramp: one answerer, several offered-rate steps.

    ``rates_qps`` is the ramp profile (e.g. 1x -> 10x of a base rate); each
    step fires ``requests_per_step`` Poisson arrivals using the shared
    stream model with a per-step derived seed — or, when
    ``step_duration_s`` is set, ``rate * duration`` arrivals so every step
    covers the same wall-clock span regardless of rate (queues at
    overloaded steps get the time they need to actually build).  ``tenants`` optionally tags
    each request with a client name drawn by traffic share —
    ``(("hog", 0.9), ("payg", 0.1))`` sends ~90% of arrivals as ``hog`` —
    which is what the fairness bench keys off.  The answerer persists
    across steps, so an adaptive controller's state (window, batch,
    admission target) carries through the ramp exactly as it would on a
    live server.
    """

    rates_qps: tuple[float, ...] = (50.0, 100.0, 200.0, 400.0, 500.0)
    requests_per_step: int = 128
    step_duration_s: float | None = None
    duplicate_rate: float = 0.5
    hot_set: int = 8
    seed: int = 7
    tenants: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.rates_qps:
            raise ValueError("rates_qps must name at least one step")
        if any(rate <= 0 for rate in self.rates_qps):
            raise ValueError(f"every ramp rate must be > 0, got {self.rates_qps}")
        if self.requests_per_step < 1:
            raise ValueError(
                f"requests_per_step must be >= 1, got {self.requests_per_step}"
            )
        if self.step_duration_s is not None and self.step_duration_s <= 0:
            raise ValueError(
                f"step_duration_s must be > 0, got {self.step_duration_s}"
            )
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError(f"duplicate_rate must be in [0, 1], got {self.duplicate_rate}")
        if self.hot_set < 1:
            raise ValueError(f"hot_set must be >= 1, got {self.hot_set}")
        for name, share in self.tenants:
            if not name:
                raise ValueError("tenant names must be non-empty")
            if share <= 0:
                raise ValueError(f"tenant share must be > 0, got {name}={share}")


def _pick_tenant(
    rng: random.Random, tenants: tuple[tuple[str, float], ...]
) -> str | None:
    """Draw one tenant name by share (None when the ramp is untagged)."""
    if not tenants:
        return None
    roll = rng.random() * sum(share for _, share in tenants)
    cumulative = 0.0
    for name, share in tenants:
        cumulative += share
        if roll < cumulative:
            return name
    return tenants[-1][0]


def _blank_tenant_row() -> dict:
    return {
        "requests": 0,
        "completed": 0,
        "rejected": 0,
        "quota": 0,
        "deadline": 0,
        "failed": 0,
        "incorrect": 0,
    }


async def run_ramp_load(
    answerer: AsyncAnswerer,
    questions: list[str],
    spec: RampSpec,
    *,
    expected: dict | None = None,
    deadline_s: float | None = None,
) -> dict:
    """Drive the ramp against one started answerer, step by step.

    Per step: the offered rate, client-observed outcome counts, latency
    percentiles over completions, and the answerer's live knob values at
    step end (the adaptive A/B reads the window trajectory off these).
    ``expected`` maps ``normalized_key(question)`` to the reference answer
    value tuple; completions that disagree are counted ``incorrect`` — the
    zero-incorrect guard that keeps the controller honest (an adaptive run
    that wins the latency race by corrupting answers loses the cell).
    Aggregates per-tenant outcome counts across all steps.
    """
    steps: list[dict] = []
    tenants: dict[str, dict] = {}
    total_incorrect = 0

    for step_index, rate_qps in enumerate(spec.rates_qps):
        step_seed = spec.seed + 1000 * step_index
        if spec.step_duration_s is not None:
            step_requests = max(1, round(rate_qps * spec.step_duration_s))
        else:
            step_requests = spec.requests_per_step
        stream = build_request_stream(
            questions,
            LoadSpec(
                requests=step_requests,
                concurrency=1,  # arrival discipline replaces closed-loop clients
                duplicate_rate=spec.duplicate_rate,
                hot_set=spec.hot_set,
                seed=step_seed,
            ),
        )
        rng = random.Random(step_seed + 1)
        latencies_ms: list[float] = []
        counts = {
            "completed": 0,
            "answered": 0,
            "rejected": 0,
            "quota": 0,
            "deadline": 0,
            "failed": 0,
            "incorrect": 0,
        }

        def row(tenant: str | None) -> dict:
            key = tenant or "anonymous"
            if key not in tenants:
                tenants[key] = _blank_tenant_row()
            return tenants[key]

        async def one(question: str, tenant: str | None) -> None:
            tenant_row = row(tenant)
            tenant_row["requests"] += 1
            start = time.perf_counter()
            try:
                result = await answerer.answer(
                    question, deadline_s=deadline_s, tenant=tenant
                )
            except QuotaExceeded:
                counts["quota"] += 1
                tenant_row["quota"] += 1
                return
            except OverloadedError:
                counts["rejected"] += 1
                tenant_row["rejected"] += 1
                return
            except DeadlineExceeded:
                counts["deadline"] += 1
                tenant_row["deadline"] += 1
                return
            except Exception:
                counts["failed"] += 1
                tenant_row["failed"] += 1
                return
            latencies_ms.append((time.perf_counter() - start) * 1000.0)
            counts["completed"] += 1
            tenant_row["completed"] += 1
            if result.answered:
                counts["answered"] += 1
            if expected is not None:
                reference = expected.get(normalized_key(question))
                if reference is not None and tuple(result.values) != tuple(reference):
                    counts["incorrect"] += 1
                    tenant_row["incorrect"] += 1

        tasks = []
        for question in stream:
            tenant = _pick_tenant(rng, spec.tenants)
            tasks.append(asyncio.ensure_future(one(question, tenant)))
            await asyncio.sleep(rng.expovariate(rate_qps))
        await asyncio.gather(*tasks)

        total_incorrect += counts["incorrect"]
        steps.append(
            {
                "offered_qps": round(rate_qps, 1),
                "requests": len(stream),
                **counts,
                **latency_percentiles(latencies_ms),
                # the live knobs as the controller left them at step end
                "batch_window_ms": round(answerer.batch_window_ms, 3),
                "max_batch": answerer.max_batch,
                "max_pending": answerer.max_pending,
            }
        )

    return {
        "steps": steps,
        "tenants": tenants,
        "incorrect": total_incorrect,
    }


def run_ramp_cell(
    target,
    questions: list[str],
    spec: RampSpec,
    *,
    adaptive: bool = False,
    slo_ms: float = 0.0,
    quota: str | None = None,
    coalesce: bool = True,
    max_batch: int = 16,
    workers: int | None = None,
    executor: str | None = None,
    max_pending: int = 256,
    batch_window_ms: float = 0.0,
    expected: dict | None = None,
) -> dict:
    """Synchronous one-call ramp cell (fresh answerer + loop, whole ramp).

    The adaptive-vs-static A/B in ``benchmarks/bench_qps.py`` calls this
    twice with identical traffic: once with ``adaptive=False`` (the static
    ``batch_window_ms`` holds for the whole ramp) and once with
    ``adaptive=True`` + an SLO (the controller re-tunes the same starting
    knobs step by step).  ``quota`` enables per-tenant admission for the
    fairness cell.
    """
    from repro.serve.async_answerer import ServeConfig

    config = ServeConfig(
        max_batch=max_batch,
        max_pending=max_pending,
        workers=resolve_workers(workers, fallback=2),
        coalesce=coalesce,
        executor=executor,
        batch_window_ms=batch_window_ms,
        slo_ms=slo_ms,
        adaptive=adaptive,
        quota=quota,
    )

    async def _run() -> dict:
        async with AsyncAnswerer(target, config) as answerer:
            result = await run_ramp_load(answerer, questions, spec, expected=expected)
            snapshot = answerer.snapshot()
            result["error_classes"] = _error_classes(
                snapshot["rejected"],
                snapshot["deadline_expired"],
                0,
                snapshot,
                snapshot["quota_rejected"],
            )
            result["controller"] = answerer.controller_snapshot()
            return result

    result = asyncio.run(_run())
    result["adaptive"] = adaptive
    result["slo_ms"] = slo_ms
    result["quota"] = quota
    result["coalesce"] = coalesce
    result["executor"] = config.executor or "thread"
    result["workers"] = config.workers
    result["start_batch_window_ms"] = batch_window_ms
    return result
