"""repro — reproduction of *KBQA: Learning Question Answering over QA
Corpora and Knowledge Bases* (Cui et al., PVLDB 10(5), 2017).

Public entry points:

* :func:`repro.suite.build_suite` — assemble world, KBs, corpus, benchmarks;
* :class:`repro.core.KBQA` — train and answer (``KBQA.train(...)``,
  ``.answer(...)``, ``.answer_complex(...)``);
* :mod:`repro.baselines` — keyword / rule / synonym (DEANNA-like) /
  bootstrapping comparators and the hybrid composition;
* :mod:`repro.eval` — QALD- and WebQuestions-style metrics and runners.
"""

from repro.core.system import KBQA, KBQAConfig
from repro.suite import Suite, build_suite

__version__ = "1.0.0"

__all__ = ["KBQA", "KBQAConfig", "Suite", "build_suite", "__version__"]
