"""Term dictionary: bidirectional mapping between RDF terms and integer ids.

Dictionary encoding is the standard trick in RDF engines (including
Trinity.RDF, the paper's substrate): triples are stored as integer tuples so
index structures stay compact and comparisons are O(1).  Ids are assigned
densely in insertion order, which additionally makes them usable as array
indexes.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Dictionary:
    """Interns term strings and hands out dense integer ids.

    >>> d = Dictionary()
    >>> d.encode("barack obama")
    0
    >>> d.decode(0)
    'barack obama'
    """

    def __init__(self) -> None:
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: list[str] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def encode(self, term: str) -> int:
        """Return the id for ``term``, assigning a new one if unseen."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def lookup(self, term: str) -> int | None:
        """Return the id for ``term`` or ``None`` if it was never interned."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> str:
        """Return the term string for ``term_id``.

        Raises :class:`KeyError` for ids that were never assigned, since a
        dangling id always indicates a bug in the caller.
        """
        if 0 <= term_id < len(self._id_to_term):
            return self._id_to_term[term_id]
        raise KeyError(f"unknown term id {term_id}")

    def decode_many(self, term_ids: Iterable[int]) -> list[str]:
        """Decode a batch of ids in one call (hot-path convenience)."""
        table = self._id_to_term
        return [table[term_id] for term_id in term_ids]

    def terms(self) -> Iterator[str]:
        """Iterate all interned terms in id order."""
        return iter(self._id_to_term)

    def terms_from(self, start: int) -> Iterator[str]:
        """Iterate terms with id >= ``start`` in id order.

        Ids are dense and append-only, so derived statistics (e.g. the
        store's resource count) can be kept current by scanning only the
        tail added since the last visit.
        """
        return iter(self._id_to_term[start:])
