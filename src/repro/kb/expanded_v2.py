"""``ExpandedStore`` binary artifact format v2: struct-packed, mmap-read.

The v1 artifact (``repro.kb.expansion``) is line-oriented JSON — simple and
diffable, but reloading it costs one ``json.loads`` per line and an
intermediate Python object per row, which is exactly the reload time the
ROADMAP flags at KB scale.  v2 stores the same canonical content as flat
little-endian id arrays behind a fixed struct header:

* the **writer** emits paths/subjects/objects/reach in the identical
  canonical order as the v1 writer (sorted path keys remapped to file-local
  ids, subjects in id order, object/seed sets sorted), so v2 bytes are
  deterministic and a ``v1 -> load -> v2 -> load -> v1`` round trip is
  byte-identical at both ends (``tests/test_expansion_persistence.py``);
* the **reader** maps the file (``mmap``) and walks the id arrays through
  ``memoryview.cast`` — ids are consumed straight out of the page cache
  with no line splitting, no JSON, and no per-row temporaries, so a pool
  worker (or ``kbqa expand --load``) can open an artifact zero-copy;
* every id is **bounds-checked against the header counts before use**, and
  the file size itself is validated against the header, so a truncated,
  version-bumped or corrupted artifact fails with the documented
  :class:`ValueError` instead of garbage decodes.

Layout (all integers little-endian; u32 unless noted)::

    header   magic 8s = b"KBQAXPD2", then u32 fields: version=2,
             max_length, n_tails, n_terms, n_seeds, n_paths, n_path_ids,
             n_subjects, n_groups, n_triples, n_reach_nodes, n_reach_pairs,
             tails_blob_len, pad; u64 terms_blob_len
    tails    offsets u32 x (n_tails+1), utf-8 blob (padded to 4)
    terms    offsets u64 x (n_terms+1), utf-8 blob (padded to 4)
    seeds    u32 x n_seeds                      (sorted)
    paths    offsets u32 x (n_paths+1), flat predicate ids u32 x n_path_ids
             (canonical sorted-key order; offsets index the flat array)
    triples  subject ids u32 x n_subjects       (sorted)
             group counts u32 x n_subjects
             group path ids u32 x n_groups      (file-local, sorted per subject)
             group object counts u32 x n_groups
             object ids u32 x n_triples         (sorted per group)
    reach    node ids u32 x n_reach_nodes       (sorted)
             seed counts u32 x n_reach_nodes
             seed ids u32 x n_reach_pairs       (sorted per node)

The format is self-contained (it carries the dictionary), exactly like v1;
:meth:`repro.kb.expansion.ExpandedStore.load` sniffs the magic and routes
here automatically.

v2 reloads zero-copy but still *materializes* the dict indexes before the
first lookup; `repro.kb.expanded_v3` builds the index structure into the
file itself (prefix-sum offset tables + binary-searchable id permutations,
reusing this module's cursor/packing helpers) so a v3 reload is O(1) and
lookups run straight off the mapping.
"""

from __future__ import annotations

import mmap
import struct
from array import array
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.kb.expansion import ExpandedStore

EXPANSION_V2_MAGIC = b"KBQAXPD2"
EXPANSION_V2_VERSION = 2

_HEADER = struct.Struct("<8s14IQ")


def _pad4(n: int) -> int:
    return (-n) % 4


def _u32_array(values) -> bytes:
    packed = array("I", values)
    if packed.itemsize != 4:  # pragma: no cover - exotic platforms
        packed = array("L", values)
    return packed.tobytes()


def _u64_array(values) -> bytes:
    return array("Q", values).tobytes()


def save_v2(store: "ExpandedStore", path: str | Path) -> None:
    """Serialize ``store`` in the v2 binary layout (canonical, deterministic)."""
    # canonical path order: sort interned keys, remap to file-local ids
    sorted_keys = sorted(store._path_keys)
    file_path_id = {key: i for i, key in enumerate(sorted_keys)}
    remap = [file_path_id[key] for key in store._path_keys]

    tails = sorted(store.tail_predicates)
    tails_utf8 = [t.encode("utf-8") for t in tails]
    tails_blob = b"".join(tails_utf8)
    tail_offsets: list[int] = [0]
    for chunk in tails_utf8:
        tail_offsets.append(tail_offsets[-1] + len(chunk))

    terms_utf8 = [term.encode("utf-8") for term in store.dictionary.terms()]
    terms_blob = b"".join(terms_utf8)
    term_offsets: list[int] = [0]
    for chunk in terms_utf8:
        term_offsets.append(term_offsets[-1] + len(chunk))

    seeds = sorted(store.seed_ids)

    path_offsets: list[int] = [0]
    path_ids: list[int] = []
    for key in sorted_keys:
        path_ids.extend(key)
        path_offsets.append(len(path_ids))

    subject_ids: list[int] = []
    group_counts: list[int] = []
    group_path_ids: list[int] = []
    group_obj_counts: list[int] = []
    object_ids: list[int] = []
    for s_id in sorted(store._by_subject):
        groups = sorted(
            (remap[p_id], sorted(objs)) for p_id, objs in store._by_subject[s_id].items()
        )
        subject_ids.append(s_id)
        group_counts.append(len(groups))
        for file_pid, objs in groups:
            group_path_ids.append(file_pid)
            group_obj_counts.append(len(objs))
            object_ids.extend(objs)

    reach_nodes: list[int] = []
    reach_counts: list[int] = []
    reach_seeds: list[int] = []
    for node_id, node_seeds in sorted(store.reach_items()):
        ordered = sorted(node_seeds)
        reach_nodes.append(node_id)
        reach_counts.append(len(ordered))
        reach_seeds.extend(ordered)

    header = _HEADER.pack(
        EXPANSION_V2_MAGIC,
        EXPANSION_V2_VERSION,
        store.max_length,
        len(tails),
        len(term_offsets) - 1,
        len(seeds),
        len(sorted_keys),
        len(path_ids),
        len(subject_ids),
        len(group_path_ids),
        len(object_ids),
        len(reach_nodes),
        len(reach_seeds),
        len(tails_blob),
        0,  # pad / reserved
        len(terms_blob),
    )
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(_u32_array(tail_offsets))
        handle.write(tails_blob)
        handle.write(b"\x00" * _pad4(len(tails_blob)))
        handle.write(_u64_array(term_offsets))
        handle.write(terms_blob)
        handle.write(b"\x00" * _pad4(len(terms_blob)))
        handle.write(_u32_array(seeds))
        handle.write(_u32_array(path_offsets))
        handle.write(_u32_array(path_ids))
        handle.write(_u32_array(subject_ids))
        handle.write(_u32_array(group_counts))
        handle.write(_u32_array(group_path_ids))
        handle.write(_u32_array(group_obj_counts))
        handle.write(_u32_array(object_ids))
        handle.write(_u32_array(reach_nodes))
        handle.write(_u32_array(reach_counts))
        handle.write(_u32_array(reach_seeds))


class _Cursor:
    """Sequential section reader over the mapped file, bounds-checked."""

    def __init__(self, view: memoryview, path: str | Path) -> None:
        self.view = view
        self.path = path
        self.offset = _HEADER.size

    def take(self, nbytes: int) -> memoryview:
        end = self.offset + nbytes
        if end > len(self.view):
            raise ValueError(
                f"{self.path}: truncated expansion file "
                f"(need {end} bytes, have {len(self.view)})"
            )
        chunk = self.view[self.offset : end]
        self.offset = end
        return chunk

    def u32s(self, count: int) -> memoryview:
        return self.take(4 * count).cast("I")

    def u64s(self, count: int) -> memoryview:
        return self.take(8 * count).cast("Q")

    def blob(self, nbytes: int) -> memoryview:
        chunk = self.take(nbytes)
        self.take(_pad4(nbytes))  # alignment padding
        return chunk


def _decode_strings(offsets, blob: memoryview, path: str | Path, what: str) -> list[str]:
    """Decode length-offset-framed utf-8 strings, validating monotonicity."""
    out: list[str] = []
    previous = 0
    for index in range(len(offsets) - 1):
        start, end = offsets[index], offsets[index + 1]
        if not (previous <= start <= end <= len(blob)):
            raise ValueError(f"{path}: corrupt {what} offsets")
        previous = start
        out.append(str(blob[start:end], "utf-8"))
    return out


def load_v2(cls: type, path: str | Path) -> "ExpandedStore":
    """Reload a v2 artifact into a fresh ``cls`` instance (own dictionary).

    Raises :class:`ValueError` on a bad magic, an unsupported version, a
    truncated file, or any id out of the header-declared ranges — checked
    *before* the id is used, mirroring the v1 loader's guarantees.
    """
    with open(path, "rb") as handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as error:  # an empty file cannot be mapped
            raise ValueError(f"{path}: truncated expansion file (empty)") from error
        view = memoryview(mapped)
        try:
            return _load_from_view(cls, view, path)
        finally:
            view.release()
            try:
                mapped.close()
            except BufferError:
                # a raised parse error's traceback still references the
                # section views; the mapping is reclaimed with it
                pass


def _load_from_view(cls: type, view: memoryview, path: str | Path) -> "ExpandedStore":
    if len(view) < _HEADER.size:
        raise ValueError(f"{path}: truncated expansion file (no v2 header)")
    (
        magic,
        version,
        max_length,
        n_tails,
        n_terms,
        n_seeds,
        n_paths,
        n_path_ids,
        n_subjects,
        n_groups,
        n_triples,
        n_reach_nodes,
        n_reach_pairs,
        tails_blob_len,
        _pad,
        terms_blob_len,
    ) = _HEADER.unpack_from(view, 0)
    if magic != EXPANSION_V2_MAGIC:
        raise ValueError(f"{path}: not a {EXPANSION_V2_MAGIC!r} file")
    if version != EXPANSION_V2_VERSION:
        raise ValueError(
            f"{path}: unsupported format version {version} "
            f"(supported: {EXPANSION_V2_VERSION})"
        )

    cursor = _Cursor(view, path)
    tail_offsets = cursor.u32s(n_tails + 1)
    tails_blob = cursor.blob(tails_blob_len)
    term_offsets = cursor.u64s(n_terms + 1)
    terms_blob = cursor.blob(terms_blob_len)
    seed_ids = cursor.u32s(n_seeds)
    path_offsets = cursor.u32s(n_paths + 1)
    path_ids = cursor.u32s(n_path_ids)
    subject_ids = cursor.u32s(n_subjects)
    group_counts = cursor.u32s(n_subjects)
    group_path_ids = cursor.u32s(n_groups)
    group_obj_counts = cursor.u32s(n_groups)
    object_ids = cursor.u32s(n_triples)
    reach_nodes = cursor.u32s(n_reach_nodes)
    reach_counts = cursor.u32s(n_reach_nodes)
    reach_seeds = cursor.u32s(n_reach_pairs)
    if cursor.offset != len(view):
        raise ValueError(
            f"{path}: trailing bytes after the declared sections "
            f"({len(view) - cursor.offset})"
        )

    tails = _decode_strings(tail_offsets, tails_blob, path, "tail-predicate")
    store = cls(max_length=max_length, tail_predicates=frozenset(tails))

    encode = store.dictionary.encode
    for term in _decode_strings(term_offsets, terms_blob, path, "dictionary"):
        encode(term)
    if len(store.dictionary) != n_terms:
        raise ValueError(f"{path}: dictionary count mismatch")

    def check_term_id(term_id: int) -> int:
        if not 0 <= term_id < n_terms:
            raise ValueError(f"{path}: term id {term_id} out of range")
        return term_id

    store.seed_ids = {check_term_id(s) for s in seed_ids}

    interned: list[tuple[int, ...]] = []
    for index in range(n_paths):
        start, end = path_offsets[index], path_offsets[index + 1]
        if not (0 <= start <= end <= n_path_ids):
            raise ValueError(f"{path}: corrupt path offsets")
        key = tuple(check_term_id(p) for p in path_ids[start:end])
        store.path_id(key)
        interned.append(key)

    record = store.record_encoded
    group_cursor = 0
    object_cursor = 0
    for index in range(n_subjects):
        s_id = check_term_id(subject_ids[index])
        group_end = group_cursor + group_counts[index]
        if group_end > n_groups:
            raise ValueError(f"{path}: group counts exceed the declared total")
        while group_cursor < group_end:
            file_pid = group_path_ids[group_cursor]
            if not 0 <= file_pid < n_paths:
                raise ValueError(f"{path}: path id {file_pid} out of range")
            key = interned[file_pid]
            object_end = object_cursor + group_obj_counts[group_cursor]
            if object_end > n_triples:
                raise ValueError(f"{path}: object counts exceed the declared total")
            while object_cursor < object_end:
                record(s_id, key, check_term_id(object_ids[object_cursor]))
                object_cursor += 1
            group_cursor += 1
    if group_cursor != n_groups or object_cursor != n_triples:
        raise ValueError(
            f"{path}: triple count mismatch "
            f"(header {n_triples}, loaded {object_cursor})"
        )
    if len(store) != n_triples:
        raise ValueError(
            f"{path}: triple count mismatch (header {n_triples}, loaded {len(store)})"
        )

    note_reach = store.note_reach
    pair_cursor = 0
    for index in range(n_reach_nodes):
        node_id = check_term_id(reach_nodes[index])
        pair_end = pair_cursor + reach_counts[index]
        if pair_end > n_reach_pairs:
            raise ValueError(f"{path}: reach counts exceed the declared total")
        while pair_cursor < pair_end:
            note_reach(node_id, check_term_id(reach_seeds[pair_cursor]))
            pair_cursor += 1
    if pair_cursor != n_reach_pairs:
        raise ValueError(f"{path}: reach pair count mismatch")
    return store


def is_v2_file(path: str | Path) -> bool:
    """True when ``path`` starts with the v2 magic (format sniffing)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(EXPANSION_V2_MAGIC)) == EXPANSION_V2_MAGIC
    except OSError:
        return False
