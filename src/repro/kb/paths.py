"""Predicate paths — the paper's *expanded predicates* (Definition 1).

An expanded predicate ``p+ = (p1, ..., pk)`` connects subject ``s`` to object
``o`` when there is a chain ``s -p1-> s2 -p2-> ... -pk-> o`` in the store.
Paths are first-class values: the template model maps templates to paths
exactly as it maps them to direct predicates (a direct predicate is the
length-1 path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.kb.backend import KBBackend

PATH_SEPARATOR = "->"


@dataclass(frozen=True, slots=True)
class PredicatePath:
    """An immutable sequence of predicate names."""

    predicates: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ValueError("a predicate path needs at least one predicate")

    @classmethod
    def single(cls, predicate: str) -> "PredicatePath":
        return cls((predicate,))

    @classmethod
    def parse(cls, text: str) -> "PredicatePath":
        """Inverse of :meth:`__str__`; used by model persistence."""
        parts = [p.strip() for p in text.split(PATH_SEPARATOR)]
        if not all(parts):
            raise ValueError(f"malformed predicate path: {text!r}")
        return cls(tuple(parts))

    def __len__(self) -> int:
        return len(self.predicates)

    def __iter__(self) -> Iterator[str]:
        return iter(self.predicates)

    def __str__(self) -> str:
        return PATH_SEPARATOR.join(self.predicates)

    @property
    def is_direct(self) -> bool:
        """True for length-1 paths (plain KB predicates)."""
        return len(self.predicates) == 1

    @property
    def last(self) -> str:
        return self.predicates[-1]

    def extend(self, predicate: str) -> "PredicatePath":
        return PredicatePath(self.predicates + (predicate,))


def follow(store: KBBackend, subject: str, path: PredicatePath) -> set[str]:
    """``V(e, p+)`` — all objects reached from ``subject`` through ``path``.

    This is the online-procedure traversal of Sec 6.1 (start from the entity
    node and walk the predicate sequence).
    """
    frontier = {subject}
    for predicate in path:
        next_frontier: set[str] = set()
        for node in frontier:
            next_frontier |= store.objects(node, predicate)
        if not next_frontier:
            return set()
        frontier = next_frontier
    return frontier


def paths_between(
    store: KBBackend, subject: str, obj: str, max_length: int
) -> set[PredicatePath]:
    """All predicate paths of length <= ``max_length`` from subject to obj.

    Used during entity-value extraction to decide whether a candidate (e, v)
    pair 'has some corresponding relationship in the knowledge base' (Eq 8)
    when expanded predicates are enabled.  Depth-limited DFS; the fan-out at
    each step is bounded by the entity's out-degree, which is small in
    practice (Table 6 reports ~3.69 values per entity-predicate pair).
    """
    found: set[PredicatePath] = set()
    _dfs_paths(store, subject, obj, max_length, (), found)
    return found


def _dfs_paths(
    store: KBBackend,
    node: str,
    target: str,
    budget: int,
    prefix: tuple[str, ...],
    found: set[PredicatePath],
) -> None:
    if budget == 0:
        return
    for predicate in store.predicates_of(node):
        objects = store.objects(node, predicate)
        if target in objects:
            found.add(PredicatePath(prefix + (predicate,)))
        if budget > 1:
            for nxt in objects:
                _dfs_paths(store, nxt, target, budget - 1, prefix + (predicate,), found)
