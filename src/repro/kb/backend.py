"""The pluggable KB backend seam.

The paper's systems story (Sec 6.2, Table 14) assumes the billion-scale KB
is *partitioned* and queried through a uniform interface (Trinity.RDF).  At
library scale the same shape is the :class:`KBBackend` protocol: everything
above the KB layer — predicate expansion, :class:`~repro.core.kbview.KBView`,
the online answerer, the CLI and the benchmark harness — depends on this
protocol, never on a concrete store class.  Three implementations ship in-tree:

* :class:`~repro.kb.store.TripleStore` — the single in-memory store;
* :class:`~repro.kb.sharded.ShardedTripleStore` — the same index structure
  partitioned by subject id across N shards, with shard-parallel scans;
* :class:`~repro.kb.disk.DiskTripleStore` — the same protocol over one
  SQLite file, reopened (not rebuilt) across process restarts.

:func:`resolve_backend` is the one place that choice is made — explicit
argument over the ``KBQA_BACKEND`` environment variable over a
shard-count-driven default — so the CLI, the suite builder and the tests
all agree on what a backend name means.

Backends are *live*: ``add``/``delete`` mutate the indexes in place and fan
out a :class:`KBChange` to every subscribed listener, which is how the
expansion layer (`repro.kb.live`) and the serving caches invalidate
incrementally instead of rebuilding.  Bursts go through
:meth:`BackendBase.batch`, which defers notifications so a bulk load costs
one coalesced flush instead of one listener round per triple.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Protocol, runtime_checkable

from repro.kb.dictionary import Dictionary
from repro.kb.triple import Triple, is_literal

ADD = "add"
DELETE = "delete"


@dataclass(frozen=True, slots=True)
class KBChange:
    """One applied mutation, in dictionary-id space.

    ``action`` is :data:`ADD` or :data:`DELETE`.  Listeners receive a change
    only after the indexes already reflect it, so they may re-query the
    backend synchronously.
    """

    action: str
    subject_id: int
    predicate_id: int
    object_id: int


ChangeListener = Callable[[KBChange], None]
BatchListener = Callable[[tuple[KBChange, ...]], None]


class BackendBase:
    """Shared plumbing for concrete backends: change listeners + the
    incremental resource count.

    Both in-tree backends mix this in so listener semantics and literal
    counting are written exactly once.  ``_init_backend_state`` must run in
    the subclass ``__init__`` after ``self.dictionary`` exists.
    """

    dictionary: "Dictionary"

    def _init_backend_state(self) -> None:
        """Initialize listener, batching and resource-count state."""
        self._listeners: list[tuple[ChangeListener, BatchListener | None]] = []
        self._batch_depth = 0
        self._deferred: list[KBChange] = []
        # Resource count, kept current by scanning only the dictionary tail
        # added since the last reconcile — dictionary ids are dense and
        # append-only, so this is O(1) amortized per add and correct even
        # when terms are interned through a shared dictionary (e.g. by an
        # ExpandedStore) rather than through ``add``.
        self._n_resources = 0
        self._n_terms_counted = 0

    def subscribe(
        self,
        listener: ChangeListener,
        batch_listener: BatchListener | None = None,
    ) -> Callable[[], None]:
        """Register a change listener; returns an unsubscribe callable.

        Listeners fire synchronously after every successful ``add`` /
        ``delete``, with the indexes already reflecting the change.  Inside a
        :meth:`batch` block, notifications are deferred; at block exit a
        listener that also registered ``batch_listener`` receives the whole
        burst in **one** call (the coalescing hook), while plain listeners
        get the deferred changes replayed one by one in mutation order.
        """
        entry = (listener, batch_listener)
        self._listeners.append(entry)

        def unsubscribe() -> None:
            if entry in self._listeners:
                self._listeners.remove(entry)

        return unsubscribe

    def _notify(self, change: KBChange) -> None:
        if self._batch_depth:
            self._deferred.append(change)
            return
        for listener, _batch_listener in self._listeners:
            listener(change)

    @contextmanager
    def batch(self):
        """Defer change notifications until the block exits.

        ``with backend.batch(): ...`` turns a burst of ``add``/``delete``
        calls (e.g. a bulk load) into one flush: the indexes mutate
        immediately — reads inside the block see every applied change — but
        listeners hear nothing until exit.  Batch-aware listeners (those
        registered with a ``batch_listener``) then get the entire run of
        changes in a single call, which is what lets the expansion
        maintainer refresh each affected seed exactly once instead of once
        per change.  Blocks nest; only the outermost exit flushes.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._deferred:
                changes = tuple(self._deferred)
                self._deferred.clear()
                for listener, batch_listener in list(self._listeners):
                    if batch_listener is not None:
                        batch_listener(changes)
                    else:
                        for change in changes:
                            listener(change)

    def __getstate__(self) -> dict:
        """Pickle as a shared-nothing copy: the indexes and dictionary ship,
        the change-listener wiring does not.

        Listeners are process-local by nature (bound methods of live systems,
        cache-invalidation closures) and would drag unpicklable state — and
        wrong semantics — into a worker.  A thawed backend therefore starts
        with no subscribers and no in-flight batch; the process-parallel
        layers (``repro.exec``) rely on exactly this to freeze shard tables
        and serving snapshots.
        """
        state = self.__dict__.copy()
        state["_listeners"] = []
        state["_batch_depth"] = 0
        state["_deferred"] = []
        return state

    def _reconcile_resources(self) -> None:
        """Fold dictionary terms added since the last call into the count."""
        n_terms = len(self.dictionary)
        if n_terms == self._n_terms_counted:
            return
        for term in self.dictionary.terms_from(self._n_terms_counted):
            if not is_literal(term):
                self._n_resources += 1
        self._n_terms_counted = n_terms


@runtime_checkable
class KBBackend(Protocol):
    """What every knowledge-base backend must provide.

    The protocol has four faces:

    * **string reads** — the public boundary the NLP/eval layers use;
    * **id-level reads** — the hot-path API (``objects_ids``,
      ``triples_ids``, the grouped ``spo_items_ids`` scan) that hands out
      dictionary-encoded views with zero per-row string materialization;
    * **writes** — ``add``/``delete`` with :class:`KBChange` notification;
    * **sharding** — ``n_shards`` and the per-shard ``shard_spo_items_ids``
      scan so the Sec 6.2 expansion can fan out shard-parallel.

    A single-store backend reports ``n_shards == 1`` and serves shard 0.
    """

    dictionary: Dictionary

    # -- Writes (with change notification) ---------------------------------

    def add(self, subject: str, predicate: str, obj: str) -> bool:
        """Insert a triple; True if new.  Notifies listeners on success."""
        ...

    def delete(self, subject: str, predicate: str, obj: str) -> bool:
        """Remove a triple; True if present.  Notifies listeners on success."""
        ...

    def subscribe(
        self,
        listener: ChangeListener,
        batch_listener: BatchListener | None = None,
    ) -> Callable[[], None]:
        """Register a change listener; returns an unsubscribe callable."""
        ...

    def batch(self):
        """Context manager deferring change notifications until exit."""
        ...

    # -- String-level reads ------------------------------------------------

    def __len__(self) -> int:
        ...

    def has(self, subject: str, predicate: str, obj: str) -> bool:
        """Point membership test for one triple."""
        ...

    def objects(self, subject: str, predicate: str) -> set[str]:
        """``V(e, p)`` — all objects for a (subject, predicate) pair."""
        ...

    def subjects(self, predicate: str, obj: str) -> set[str]:
        """All subjects s with (s, predicate, obj) in the store."""
        ...

    def predicates_between(self, subject: str, obj: str) -> set[str]:
        """All direct predicates p with (subject, p, obj) in the store."""
        ...

    def predicates_of(self, subject: str) -> set[str]:
        """All predicates leaving ``subject``."""
        ...

    def out_degree(self, subject: str) -> int:
        """Number of triples with ``subject`` in subject position."""
        ...

    def has_subject(self, subject: str) -> bool:
        """True when ``subject`` occurs in subject position."""
        ...

    def triples(self) -> Iterator[Triple]:
        """Scan all triples, decoded."""
        ...

    def subjects_iter(self) -> Iterator[str]:
        """All distinct subjects, decoded."""
        ...

    def predicates(self) -> set[str]:
        """All distinct predicates in the store."""
        ...

    def stats(self) -> dict[str, int]:
        """Store-level counts (triples/terms/resources/predicates/subjects)."""
        ...

    # -- Id-level reads (hot paths) ----------------------------------------

    def lookup_id(self, term: str) -> int | None:
        """Dictionary id of ``term`` (None when never interned)."""
        ...

    def decode_id(self, term_id: int) -> str:
        """Term string for a dictionary id."""
        ...

    def has_subject_id(self, subject_id: int) -> bool:
        """True when ``subject_id`` occurs in subject position."""
        ...

    def objects_ids(self, subject_id: int, predicate_id: int) -> set[int] | frozenset[int]:
        """``V(e, p)`` as object ids (read-only view)."""
        ...

    def predicates_ids_of(self, subject_id: int):
        """Ids of predicates leaving ``subject_id`` (read-only view)."""
        ...

    def triples_ids(self) -> Iterator[tuple[int, int, int]]:
        """Scan all triples as ``(s_id, p_id, o_id)``."""
        ...

    def spo_items_ids(self) -> Iterator[tuple[int, dict[int, set[int]]]]:
        """Grouped id-keyed scan: ``(s_id, {p_id: {o_id}})`` per subject."""
        ...

    # -- Sharding ----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Number of subject partitions (1 for a single store)."""
        ...

    def shard_spo_items_ids(self, shard: int) -> Iterator[tuple[int, dict[int, set[int]]]]:
        """Grouped id-keyed scan restricted to one subject shard."""
        ...

    def shard_table(self, shard: int) -> dict[int, dict[int, set[int]]]:
        """One shard's grouped id-keyed table (``{s_id: {p_id: {o_id}}}``).

        This is the picklable, shared-nothing unit the process-parallel
        expansion ships to workers (``repro.exec.tasks``); callers treat it
        as a read-only view of the shard's SPO index.
        """
        ...


BACKEND_KINDS = ("memory", "sharded", "disk")
KBQA_BACKEND_ENV = "KBQA_BACKEND"


def resolve_backend(
    kind: str | None = None,
    *,
    shards: int = 1,
    path: str | None = None,
) -> KBBackend:
    """Construct the KB backend every layer above the KB speaks through.

    Precedence: an explicit ``kind`` wins, else the ``KBQA_BACKEND``
    environment variable (how the CI matrix pins a leg to ``disk`` without
    threading a flag through every entry point), else a default driven by
    the shard count — ``sharded`` when ``shards > 1``, ``memory`` otherwise.
    The environment variable is a *default*, not a mandate: a call that
    structurally requires partitioning (``shards > 1``) keeps the sharded
    backend even when the environment names a single-shard one — only an
    explicit ``kind`` argument can produce that contradiction (and raises).

    ``path`` names the database file for the ``disk`` backend (``None`` =
    ephemeral temp file); ``shards`` sizes the ``sharded`` backend.  The
    combinations that cannot mean anything — a path on an in-memory
    backend, shards on a single-partition one — raise ``ValueError``
    rather than being silently dropped.
    """
    if kind is None:
        kind = os.environ.get(KBQA_BACKEND_ENV) or None
        if kind is not None and kind in BACKEND_KINDS and shards > 1 and kind != "sharded":
            kind = "sharded"
    if kind is None:
        kind = "sharded" if shards > 1 else "memory"
    if kind not in BACKEND_KINDS:
        raise ValueError(
            f"unknown KB backend {kind!r} (expected one of {', '.join(BACKEND_KINDS)})"
        )
    if path is not None and kind != "disk":
        raise ValueError(f"backend {kind!r} does not take a database path")
    if shards > 1 and kind != "sharded":
        raise ValueError(f"backend {kind!r} is single-shard (got shards={shards})")
    if kind == "sharded":
        from repro.kb.sharded import ShardedTripleStore

        return ShardedTripleStore(shards=max(shards, 1))
    if kind == "disk":
        from repro.kb.disk import DiskTripleStore

        return DiskTripleStore(path)
    from repro.kb.store import TripleStore

    return TripleStore()
