"""Basic-graph-pattern queries over the triple store.

Trinity.RDF, the paper's substrate, is a SPARQL engine; KBQA itself only
needs point lookups, but a reproduction of the substrate should be queryable
the same way.  This module evaluates conjunctive triple patterns (the BGP
core of SPARQL) with variables written ``?name``:

    >>> q = [("?p", "pob", "?c"), ("?c", "name", make_literal("honolulu"))]
    >>> solve(store, q)                                     # doctest: +SKIP
    [{'?p': 'm.person_0001', '?c': 'm.city_0007'}, ...]

Evaluation is by iterative binding extension with a greedy
most-bound-pattern-first join order — the textbook index-nested-loop
strategy every RDF engine starts from.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.kb.backend import KBBackend

Pattern = tuple[str, str, str]
Binding = dict[str, str]


def is_variable(term: str) -> bool:
    """Query variables are written ``?name``."""
    return term.startswith("?")


def _substitute(pattern: Pattern, binding: Binding) -> Pattern:
    return tuple(binding.get(t, t) for t in pattern)  # type: ignore[return-value]


def _bound_count(pattern: Pattern, binding: Binding) -> int:
    return sum(1 for t in _substitute(pattern, binding) if not is_variable(t))


def _match_pattern(store: KBBackend, pattern: Pattern) -> Iterable[Binding]:
    """All bindings satisfying a single (possibly variable-free) pattern."""
    s, p, o = pattern
    s_var, p_var, o_var = is_variable(s), is_variable(p), is_variable(o)

    if not s_var and not p_var and not o_var:
        if store.has(s, p, o):
            yield {}
        return
    if not s_var and not p_var:  # (s, p, ?o)
        for obj in store.objects(s, p):
            yield {o: obj}
        return
    if not p_var and not o_var:  # (?s, p, o)
        for subj in store.subjects(p, o):
            yield {s: subj}
        return
    if not s_var and not o_var:  # (s, ?p, o)
        for pred in store.predicates_between(s, o):
            yield {p: pred}
        return
    if not s_var:  # (s, ?p, ?o)
        for pred in store.predicates_of(s):
            for obj in store.objects(s, pred):
                binding = {}
                if p_var:
                    binding[p] = pred
                if o_var:
                    binding[o] = obj
                if p_var and o_var and p == o and pred != obj:
                    continue
                yield binding
        return
    # Fully or mostly unbound: fall back to a scan.
    for triple in store.triples():
        binding: Binding = {}
        ok = True
        for var, value in ((s, triple.subject), (p, triple.predicate), (o, triple.object)):
            if is_variable(var):
                if var in binding and binding[var] != value:
                    ok = False
                    break
                binding[var] = value
            elif var != value:
                ok = False
                break
        if ok:
            yield binding


def solve(
    store: KBBackend,
    patterns: Sequence[Pattern],
    limit: int | None = None,
) -> list[Binding]:
    """All variable bindings satisfying every pattern (conjunction).

    Patterns are joined greedily: at each step the pattern with the most
    already-bound positions is evaluated next, so selective lookups come
    first and scans are deferred.
    """
    for pattern in patterns:
        if len(pattern) != 3:
            raise ValueError(f"pattern must have 3 terms: {pattern!r}")

    results: list[Binding] = []
    _extend(store, list(patterns), {}, results, limit)
    return results


def _extend(
    store: KBBackend,
    remaining: list[Pattern],
    binding: Binding,
    results: list[Binding],
    limit: int | None,
) -> None:
    if limit is not None and len(results) >= limit:
        return
    if not remaining:
        results.append(dict(binding))
        return
    # Greedy join order: most-bound pattern first.
    index = max(range(len(remaining)), key=lambda i: _bound_count(remaining[i], binding))
    pattern = remaining[index]
    rest = remaining[:index] + remaining[index + 1 :]
    for extension in _match_pattern(store, _substitute(pattern, binding)):
        conflict = any(binding.get(var, value) != value for var, value in extension.items())
        if conflict:
            continue
        binding.update(extension)
        _extend(store, rest, binding, results, limit)
        for var in extension:
            del binding[var]


def select(
    store: KBBackend,
    patterns: Sequence[Pattern],
    variables: Sequence[str],
    limit: int | None = None,
) -> list[tuple[str, ...]]:
    """SPARQL-SELECT-style projection of :func:`solve` results (distinct)."""
    seen: set[tuple[str, ...]] = set()
    out: list[tuple[str, ...]] = []
    for binding in solve(store, patterns, limit=None):
        row = tuple(binding.get(v, "") for v in variables)
        if row not in seen:
            seen.add(row)
            out.append(row)
            if limit is not None and len(out) >= limit:
                break
    return out
