"""Plain-text serialization for triple stores.

The format is a tab-separated line per triple — an N-Triples-like encoding
that keeps dumps diffable and loadable without a parser dependency.  Tabs and
newlines are escaped so arbitrary literals round-trip.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.kb.backend import KBBackend
from repro.kb.store import TripleStore
from repro.kb.triple import Triple

_ESCAPES = {"\\": "\\\\", "\t": "\\t", "\n": "\\n", "\r": "\\r"}


def _escape(term: str) -> str:
    out = term
    for raw, esc in _ESCAPES.items():
        out = out.replace(raw, esc)
    return out


def _unescape(term: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(term):
        ch = term[i]
        if ch == "\\" and i + 1 < len(term):
            nxt = term[i + 1]
            mapped = {"\\": "\\", "t": "\t", "n": "\n", "r": "\r"}.get(nxt)
            if mapped is not None:
                out.append(mapped)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def save_ntriples(store: KBBackend, path: str | Path) -> int:
    """Write every triple of ``store`` to ``path``; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for triple in store.triples():
            fields = (triple.subject, triple.predicate, triple.object)
            handle.write("\t".join(_escape(f) for f in fields))
            handle.write("\n")
            count += 1
    return count


def load_ntriples(path: str | Path, into: KBBackend | None = None) -> KBBackend:
    """Load a store previously written by :func:`save_ntriples`.

    Loads into a fresh single :class:`TripleStore` by default; pass ``into``
    (e.g. a :class:`~repro.kb.sharded.ShardedTripleStore`) to fill any other
    backend instead.
    """
    store = into if into is not None else TripleStore()
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            fields = line.split("\t")
            if len(fields) != 3:
                raise ValueError(f"{path}:{line_no}: expected 3 fields, got {len(fields)}")
            store.add(*(_unescape(f) for f in fields))
    return store


def iter_triples_text(triples: Iterable[Triple]) -> Iterable[str]:
    """Render triples as serialized lines (used by tests for golden output)."""
    for triple in triples:
        yield "\t".join(_escape(f) for f in (triple.subject, triple.predicate, triple.object))
