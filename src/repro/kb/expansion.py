"""Predicate expansion — memory-efficient multi-source BFS (Sec 6.2).

The paper generates all ``(s, p+, o)`` triples with ``|p+| <= k`` whose
subject occurs in the QA corpus, by ``k`` rounds of *index + scan + join*
over the disk-resident knowledge base: build a hash index on the current
frontier, scan every triple once, and join triple subjects against the
frontier.  We follow exactly that structure (a full :meth:`TripleStore.triples`
scan per round, never a per-node graph walk), which keeps the cost
``O(k * |K| + #spo)`` as analysed in the paper.

Two paper-mandated restrictions are honoured:

* only subjects from the seed set (QA-corpus entities) start paths — the
  'reduction on s' of Sec 6.2;
* paths of length >= 2 must end with a *naming* predicate (``name`` /
  ``alias``) — Sec 6.3 discards other tails as 'very weak relations'.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.kb.paths import PredicatePath
from repro.kb.store import TripleStore

DEFAULT_TAIL_PREDICATES = frozenset({"name", "alias"})


@dataclass
class ExpandedStore:
    """Materialized ``(s, p+, o)`` triples produced by :func:`expand_predicates`.

    Provides the two lookups the KBQA pipeline needs — ``V(e, p+)`` and
    ``paths_between(e, v)`` — over the *expanded* predicate space, with the
    same hash-probe complexity the base store offers for direct predicates.
    """

    max_length: int
    _by_subject: dict[str, dict[PredicatePath, set[str]]] = field(
        default_factory=lambda: defaultdict(dict)
    )
    _by_pair: dict[tuple[str, str], set[PredicatePath]] = field(
        default_factory=lambda: defaultdict(set)
    )
    _triple_count: int = 0

    def record(self, subject: str, path: PredicatePath, obj: str) -> None:
        """Insert one (s, p+, o) triple (idempotent)."""
        objects = self._by_subject[subject].setdefault(path, set())
        if obj not in objects:
            objects.add(obj)
            self._by_pair[(subject, obj)].add(path)
            self._triple_count += 1

    # -- Lookups ----------------------------------------------------------

    def objects(self, subject: str, path: PredicatePath) -> set[str]:
        """``V(e, p+)`` over expanded predicates."""
        return set(self._by_subject.get(subject, {}).get(path, ()))

    def paths_between(self, subject: str, obj: str) -> set[PredicatePath]:
        """All expanded predicates connecting (subject, obj)."""
        return set(self._by_pair.get((subject, obj), ()))

    def paths_of(self, subject: str) -> set[PredicatePath]:
        """All expanded predicates leaving ``subject``."""
        return set(self._by_subject.get(subject, ()))

    def value_count(self, subject: str, path: PredicatePath) -> int:
        return len(self._by_subject.get(subject, {}).get(path, ()))

    # -- Inventory ----------------------------------------------------------

    def __len__(self) -> int:
        """Number of materialized (s, p+, o) triples."""
        return self._triple_count

    def subjects(self) -> Iterator[str]:
        return iter(self._by_subject)

    def distinct_paths(self) -> set[PredicatePath]:
        """All expanded predicates materialized for any subject."""
        paths: set[PredicatePath] = set()
        for by_path in self._by_subject.values():
            paths.update(by_path)
        return paths

    def triples(self) -> Iterator[tuple[str, PredicatePath, str]]:
        """Scan every materialized (s, p+, o)."""
        for subject, by_path in self._by_subject.items():
            for path, objects in by_path.items():
                for obj in objects:
                    yield subject, path, obj

    def stats(self) -> dict[str, int]:
        """Triple/subject/path counts split by direct vs expanded."""
        paths = self.distinct_paths()
        return {
            "spo_triples": self._triple_count,
            "subjects": len(self._by_subject),
            "paths": len(paths),
            "direct_paths": sum(1 for p in paths if p.is_direct),
            "expanded_paths": sum(1 for p in paths if not p.is_direct),
        }


def expand_predicates(
    store: TripleStore,
    seeds: Iterable[str],
    max_length: int = 3,
    tail_predicates: frozenset[str] = DEFAULT_TAIL_PREDICATES,
) -> ExpandedStore:
    """Generate all ``(s, p+, o)`` with ``s`` in ``seeds``, ``|p+| <= max_length``.

    Implements Algorithm of Sec 6.2: round ``i`` joins a full scan of the
    store against the frontier produced by round ``i-1``.  ``frontier`` maps
    an intermediate node to the set of ``(seed, prefix-path)`` ways it was
    reached; joining a triple ``(node, p, o)`` extends each way by ``p``.

    Length-1 paths are recorded unconditionally (they are ordinary KB
    predicates); longer paths are recorded only when their final predicate is
    in ``tail_predicates``, but *traversal* continues through any predicate so
    that e.g. ``marriage -> person -> name`` is reachable even though
    ``marriage -> person`` itself is discarded.
    """
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")

    expanded = ExpandedStore(max_length=max_length)
    seed_set = {s for s in seeds if store.has_subject(s)}
    if not seed_set:
        return expanded

    # frontier: node -> set of (seed, prefix) provenance entries; a ``None``
    # prefix marks a seed node at round 0 (PredicatePath cannot be empty).
    frontier: dict[str, set[tuple[str, PredicatePath | None]]] = {
        seed: {(seed, None)} for seed in seed_set
    }

    for round_index in range(1, max_length + 1):
        next_frontier: dict[str, set[tuple[str, PredicatePath | None]]] = defaultdict(set)
        for triple in store.triples():
            provenance = frontier.get(triple.subject)
            if not provenance:
                continue
            for seed, prefix in provenance:
                path = (
                    PredicatePath.single(triple.predicate)
                    if prefix is None
                    else prefix.extend(triple.predicate)
                )
                if len(path) == 1 or path.last in tail_predicates:
                    expanded.record(seed, path, triple.object)
                if round_index < max_length:
                    next_frontier[triple.object].add((seed, path))
        frontier = next_frontier

    return expanded
