"""Predicate expansion — memory-efficient multi-source BFS (Sec 6.2).

The paper generates all ``(s, p+, o)`` triples with ``|p+| <= k`` whose
subject occurs in the QA corpus, by ``k`` rounds of *index + scan + join*
over the disk-resident knowledge base: build a hash index on the current
frontier, scan every triple once, and join triple subjects against the
frontier.  We follow exactly that structure (a full id-keyed scan per round,
never a per-node graph walk), which keeps the cost ``O(k * |K| + #spo)`` as
analysed in the paper.

The scan and join are *ID-native*: the frontier, the prefix paths and the
materialized ``(s, p+, o)`` triples are all dictionary-encoded integers, so
no term string or :class:`~repro.kb.triple.Triple` object is built per row.
Strings appear only at the :class:`ExpandedStore` public boundary, where
decoded results are cached as frozen views (one decode per key, shared across
calls).  ``expand_predicates_baseline`` preserves the original string-level
implementation as the reference for equivalence tests and the before/after
benchmark.

Two paper-mandated restrictions are honoured:

* only subjects from the seed set (QA-corpus entities) start paths — the
  'reduction on s' of Sec 6.2;
* paths of length >= 2 must end with a *naming* predicate (``name`` /
  ``alias``) — Sec 6.3 discards other tails as 'very weak relations'.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.kb.dictionary import Dictionary
from repro.kb.paths import PredicatePath
from repro.kb.store import TripleStore

DEFAULT_TAIL_PREDICATES = frozenset({"name", "alias"})

_EMPTY_FROZEN: frozenset = frozenset()


class ExpandedStore:
    """Materialized ``(s, p+, o)`` triples produced by :func:`expand_predicates`.

    Provides the two lookups the KBQA pipeline needs — ``V(e, p+)`` and
    ``paths_between(e, v)`` — over the *expanded* predicate space, with the
    same hash-probe complexity the base store offers for direct predicates.

    Storage is id-encoded: subjects/objects are dictionary ids and each
    distinct predicate path is interned to a dense path id.  Public lookups
    return decoded **frozen views**: the decode happens at most once per key
    and the resulting frozenset is shared by every subsequent call (callers
    must not mutate results — they never did; see ``core/kbview.py`` and
    ``core/extraction.py``, which build their own sets).
    """

    def __init__(self, max_length: int, dictionary: Dictionary | None = None) -> None:
        self.max_length = max_length
        self.dictionary = dictionary if dictionary is not None else Dictionary()
        # s_id -> path_id -> {o_id}
        self._by_subject: dict[int, dict[int, set[int]]] = defaultdict(dict)
        # (s_id, o_id) -> {path_id}
        self._by_pair: dict[tuple[int, int], set[int]] = defaultdict(set)
        # path interning: tuple of predicate ids <-> dense path id
        self._path_key_to_id: dict[tuple[int, ...], int] = {}
        self._path_keys: list[tuple[int, ...]] = []
        self._triple_count = 0
        # decoded frozen views, built lazily, one per key
        self._decoded_paths: dict[int, PredicatePath] = {}
        self._objects_cache: dict[tuple[int, int], frozenset[str]] = {}
        self._pairs_cache: dict[tuple[int, int], frozenset[PredicatePath]] = {}
        self._paths_of_cache: dict[int, frozenset[PredicatePath]] = {}

    # -- Id-level mutation / lookup ----------------------------------------

    def path_id(self, path_key: tuple[int, ...]) -> int:
        """Intern a tuple of predicate ids; returns its dense path id."""
        existing = self._path_key_to_id.get(path_key)
        if existing is not None:
            return existing
        new_id = len(self._path_keys)
        self._path_key_to_id[path_key] = new_id
        self._path_keys.append(path_key)
        return new_id

    def record_encoded(self, subject_id: int, path_key: tuple[int, ...], object_id: int) -> bool:
        """Insert one id-encoded (s, p+, o) triple (idempotent)."""
        p_id = self.path_id(path_key)
        objects = self._by_subject[subject_id].setdefault(p_id, set())
        if object_id in objects:
            return False
        objects.add(object_id)
        self._by_pair[(subject_id, object_id)].add(p_id)
        self._triple_count += 1
        # invalidate any frozen views covering this key
        self._objects_cache.pop((subject_id, p_id), None)
        self._pairs_cache.pop((subject_id, object_id), None)
        self._paths_of_cache.pop(subject_id, None)
        return True

    def objects_ids(self, subject_id: int, path_id: int) -> set[int] | frozenset[int]:
        """Id-level ``V(e, p+)`` (read-only view; empty is a frozenset)."""
        return self._by_subject.get(subject_id, {}).get(path_id, _EMPTY_FROZEN)

    # -- String-boundary mutation ------------------------------------------

    def record(self, subject: str, path: PredicatePath, obj: str) -> None:
        """Insert one (s, p+, o) triple given as strings (idempotent)."""
        encode = self.dictionary.encode
        path_key = tuple(encode(p) for p in path.predicates)
        self.record_encoded(encode(subject), path_key, encode(obj))

    # -- Decoding helpers ----------------------------------------------------

    def _decode_path(self, path_id: int) -> PredicatePath:
        path = self._decoded_paths.get(path_id)
        if path is None:
            decode = self.dictionary.decode
            path = PredicatePath(tuple(decode(p) for p in self._path_keys[path_id]))
            self._decoded_paths[path_id] = path
        return path

    def _lookup_path_id(self, path: PredicatePath) -> int | None:
        lookup = self.dictionary.lookup
        key: list[int] = []
        for predicate in path.predicates:
            p = lookup(predicate)
            if p is None:
                return None
            key.append(p)
        return self._path_key_to_id.get(tuple(key))

    # -- Lookups ----------------------------------------------------------

    def objects(self, subject: str, path: PredicatePath) -> frozenset[str]:
        """``V(e, p+)`` over expanded predicates (shared frozen view)."""
        s = self.dictionary.lookup(subject)
        if s is None:
            return _EMPTY_FROZEN
        p = self._lookup_path_id(path)
        if p is None:
            return _EMPTY_FROZEN
        key = (s, p)
        cached = self._objects_cache.get(key)
        if cached is None:
            object_ids = self._by_subject.get(s, {}).get(p)
            if not object_ids:
                return _EMPTY_FROZEN
            cached = frozenset(self.dictionary.decode_many(object_ids))
            self._objects_cache[key] = cached
        return cached

    def paths_between(self, subject: str, obj: str) -> frozenset[PredicatePath]:
        """All expanded predicates connecting (subject, obj) (frozen view)."""
        lookup = self.dictionary.lookup
        s = lookup(subject)
        o = lookup(obj)
        if s is None or o is None:
            return _EMPTY_FROZEN
        key = (s, o)
        cached = self._pairs_cache.get(key)
        if cached is None:
            path_ids = self._by_pair.get(key)
            if not path_ids:
                return _EMPTY_FROZEN
            cached = frozenset(self._decode_path(p) for p in path_ids)
            self._pairs_cache[key] = cached
        return cached

    def paths_of(self, subject: str) -> frozenset[PredicatePath]:
        """All expanded predicates leaving ``subject`` (frozen view)."""
        s = self.dictionary.lookup(subject)
        if s is None:
            return _EMPTY_FROZEN
        cached = self._paths_of_cache.get(s)
        if cached is None:
            by_path = self._by_subject.get(s)
            if not by_path:
                return _EMPTY_FROZEN
            cached = frozenset(self._decode_path(p) for p in by_path)
            self._paths_of_cache[s] = cached
        return cached

    def value_count(self, subject: str, path: PredicatePath) -> int:
        """``|V(e, p+)|`` without decoding a single object."""
        s = self.dictionary.lookup(subject)
        if s is None:
            return 0
        p = self._lookup_path_id(path)
        if p is None:
            return 0
        return len(self._by_subject.get(s, {}).get(p, ()))

    # -- Inventory ----------------------------------------------------------

    def __len__(self) -> int:
        """Number of materialized (s, p+, o) triples."""
        return self._triple_count

    def subjects(self) -> Iterator[str]:
        """All subjects with at least one expanded triple."""
        decode = self.dictionary.decode
        return (decode(s) for s in self._by_subject)

    def distinct_paths(self) -> set[PredicatePath]:
        """All expanded predicates materialized for any subject."""
        return {self._decode_path(p) for p in range(len(self._path_keys))}

    def triples(self) -> Iterator[tuple[str, PredicatePath, str]]:
        """Scan every materialized (s, p+, o), decoded."""
        decode = self.dictionary.decode
        for s, by_path in self._by_subject.items():
            subject = decode(s)
            for p, object_ids in by_path.items():
                path = self._decode_path(p)
                for o in object_ids:
                    yield subject, path, decode(o)

    def triples_ids(self) -> Iterator[tuple[int, int, int]]:
        """Id-native scan: ``(s_id, path_id, o_id)`` per materialized triple."""
        for s, by_path in self._by_subject.items():
            for p, object_ids in by_path.items():
                for o in object_ids:
                    yield s, p, o

    def stats(self) -> dict[str, int]:
        """Triple/subject/path counts split by direct vs expanded."""
        n_direct = sum(1 for key in self._path_keys if len(key) == 1)
        return {
            "spo_triples": self._triple_count,
            "subjects": len(self._by_subject),
            "paths": len(self._path_keys),
            "direct_paths": n_direct,
            "expanded_paths": len(self._path_keys) - n_direct,
        }


def expand_predicates(
    store: TripleStore,
    seeds: Iterable[str],
    max_length: int = 3,
    tail_predicates: frozenset[str] = DEFAULT_TAIL_PREDICATES,
) -> ExpandedStore:
    """Generate all ``(s, p+, o)`` with ``s`` in ``seeds``, ``|p+| <= max_length``.

    Implements the algorithm of Sec 6.2 entirely over dictionary ids: round
    ``i`` joins an id-keyed scan of the store (:meth:`TripleStore.spo_items_ids`)
    against the frontier produced by round ``i-1``.  ``frontier`` maps an
    intermediate node id to the set of ``(seed_id, prefix-key)`` ways it was
    reached; joining a subject group extends each way by the group's
    predicates.  The grouped scan probes the frontier once per *subject*, not
    once per triple, and no string leaves the dictionary during expansion.

    Length-1 paths are recorded unconditionally (they are ordinary KB
    predicates); longer paths are recorded only when their final predicate is
    in ``tail_predicates``, but *traversal* continues through any predicate so
    that e.g. ``marriage -> person -> name`` is reachable even though
    ``marriage -> person`` itself is discarded.
    """
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")

    dictionary = store.dictionary
    expanded = ExpandedStore(max_length=max_length, dictionary=dictionary)

    seed_ids: set[int] = set()
    for seed in seeds:
        seed_id = dictionary.lookup(seed)
        if seed_id is not None and store.has_subject_id(seed_id):
            seed_ids.add(seed_id)
    if not seed_ids:
        return expanded

    tail_ids = {
        tail_id
        for tail in tail_predicates
        if (tail_id := dictionary.lookup(tail)) is not None
    }

    # frontier: node id -> set of (seed_id, prefix-key) provenance entries;
    # the empty tuple marks a seed node at round 0.
    frontier: dict[int, set[tuple[int, tuple[int, ...]]]] = {
        seed_id: {(seed_id, ())} for seed_id in seed_ids
    }
    record = expanded.record_encoded

    for round_index in range(1, max_length + 1):
        is_last_round = round_index == max_length
        next_frontier: dict[int, set[tuple[int, tuple[int, ...]]]] = defaultdict(set)
        for s_id, by_predicate in store.spo_items_ids():
            provenance = frontier.get(s_id)
            if not provenance:
                continue
            for p_id, object_ids in by_predicate.items():
                is_tail = p_id in tail_ids
                for seed_id, prefix in provenance:
                    path_key = prefix + (p_id,)
                    if len(path_key) == 1 or is_tail:
                        for o_id in object_ids:
                            record(seed_id, path_key, o_id)
                    if not is_last_round:
                        extended = (seed_id, path_key)
                        for o_id in object_ids:
                            next_frontier[o_id].add(extended)
        frontier = next_frontier

    return expanded


def expand_predicates_baseline(
    store: TripleStore,
    seeds: Iterable[str],
    max_length: int = 3,
    tail_predicates: frozenset[str] = DEFAULT_TAIL_PREDICATES,
) -> ExpandedStore:
    """The original string-level expansion, kept as the reference.

    Scans :meth:`TripleStore.triples` (materializing a :class:`Triple` and
    three term strings per row) and joins on decoded subjects.  Equivalence
    tests assert :func:`expand_predicates` produces the identical triple set;
    ``benchmarks/bench_offline_timecost.py`` and the perf harness report the
    before/after wall-clock.
    """
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")

    expanded = ExpandedStore(max_length=max_length)
    seed_set = {s for s in seeds if store.has_subject(s)}
    if not seed_set:
        return expanded

    frontier: dict[str, set[tuple[str, PredicatePath | None]]] = {
        seed: {(seed, None)} for seed in seed_set
    }

    for round_index in range(1, max_length + 1):
        next_frontier: dict[str, set[tuple[str, PredicatePath | None]]] = defaultdict(set)
        for triple in store.triples():
            provenance = frontier.get(triple.subject)
            if not provenance:
                continue
            for seed, prefix in provenance:
                path = (
                    PredicatePath.single(triple.predicate)
                    if prefix is None
                    else prefix.extend(triple.predicate)
                )
                if len(path) == 1 or path.last in tail_predicates:
                    expanded.record(seed, path, triple.object)
                if round_index < max_length:
                    next_frontier[triple.object].add((seed, path))
        frontier = next_frontier

    return expanded
