"""Predicate expansion — memory-efficient multi-source BFS (Sec 6.2).

The paper generates all ``(s, p+, o)`` triples with ``|p+| <= k`` whose
subject occurs in the QA corpus, by ``k`` rounds of *index + scan + join*
over the disk-resident knowledge base: build a hash index on the current
frontier, scan every triple once, and join triple subjects against the
frontier.  We follow exactly that structure (a full id-keyed scan per round,
never a per-node graph walk), which keeps the cost ``O(k * |K| + #spo)`` as
analysed in the paper.

The scan and join are *ID-native*: the frontier, the prefix paths and the
materialized ``(s, p+, o)`` triples are all dictionary-encoded integers, so
no term string or :class:`~repro.kb.triple.Triple` object is built per row.
Strings appear only at the :class:`ExpandedStore` public boundary, where
decoded results are cached as frozen views (one decode per key, shared across
calls).  ``expand_predicates_baseline`` preserves the original string-level
implementation as the reference for equivalence tests and the before/after
benchmark.

The scan consumes any :class:`~repro.kb.backend.KBBackend`.  On a sharded
backend (``n_shards > 1``) each round fans the scan out shard-parallel
through a pluggable execution backend (`repro.exec`: serial, thread pool, or
shared-nothing process pool over picklable shard tables) and merges the
per-shard results in shard order, so the output is identical to the
single-store scan whichever backend runs it.  :class:`ExpandedStore`
additionally:

* records *reach provenance* (which seeds' BFS scanned which nodes), the
  index that lets live KB ``add``/``delete`` invalidate exactly the affected
  seeds (`repro.kb.live`) instead of re-expanding everything;
* serializes its id-encoded buffers together with the dictionary
  (:meth:`ExpandedStore.save` / :meth:`ExpandedStore.load`) in a canonical,
  versioned format so offline training resumes without re-scanning.

Two paper-mandated restrictions are honoured:

* only subjects from the seed set (QA-corpus entities) start paths — the
  'reduction on s' of Sec 6.2;
* paths of length >= 2 must end with a *naming* predicate (``name`` /
  ``alias``) — Sec 6.3 discards other tails as 'very weak relations'.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
from collections import defaultdict
from concurrent.futures import BrokenExecutor
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.exec.backend import Executor, make_executor, resolve_exec_kind, resolve_workers
from repro.exec.pool import ExecutorPool
from repro.exec.shm import SegmentUnavailable
from repro.exec.tasks import ShardScanTask, scan_shard, split_frontier_by_shard
from repro.kb import expanded_v2
from repro.kb.backend import KBBackend
from repro.kb.dictionary import Dictionary
from repro.kb.paths import PredicatePath

DEFAULT_TAIL_PREDICATES = frozenset({"name", "alias"})

_EMPTY_FROZEN: frozenset = frozenset()

EXPANSION_MAGIC = "KBQA-EXPANDED"
EXPANSION_FORMAT_VERSION = 1

EXPANSION_FORMATS = ("v1", "v2", "v3")
EXPANDED_FORMAT_ENV = "KBQA_EXPANDED_FORMAT"


def resolve_expanded_format(fmt: str | None = None) -> str:
    """Effective artifact format: explicit arg > ``KBQA_EXPANDED_FORMAT`` >
    ``"v1"``.  Raises :class:`ValueError` on an unknown format so a typo in
    a flag or the environment fails loudly."""
    if fmt is None:
        fmt = os.environ.get(EXPANDED_FORMAT_ENV) or "v1"
    fmt = fmt.strip().lower()
    if fmt not in EXPANSION_FORMATS:
        raise ValueError(
            f"unknown expansion format {fmt!r} (choose from {', '.join(EXPANSION_FORMATS)})"
        )
    return fmt

# frontier: node id -> set of (seed_id, prefix-key) provenance entries;
# the empty prefix marks a seed node at round 0.
_Frontier = dict[int, set[tuple[int, tuple[int, ...]]]]


class ExpandedStore:
    """Materialized ``(s, p+, o)`` triples produced by :func:`expand_predicates`.

    Provides the two lookups the KBQA pipeline needs — ``V(e, p+)`` and
    ``paths_between(e, v)`` — over the *expanded* predicate space, with the
    same hash-probe complexity the base store offers for direct predicates.

    Storage is id-encoded: subjects/objects are dictionary ids and each
    distinct predicate path is interned to a dense path id.  Public lookups
    return decoded **frozen views**: the decode happens at most once per key
    and the resulting frozenset is shared by every subsequent call (callers
    must not mutate results — they never did; see ``core/kbview.py`` and
    ``core/extraction.py``, which build their own sets).

    Beyond the triples the store carries the expansion's *provenance*: the
    seed ids it was built from, the tail-predicate whitelist, and a
    node -> seeds reach index — everything `repro.kb.live` needs to refresh
    one seed at a time after a live KB edit, and everything
    :meth:`save`/:meth:`load` need to round-trip a resumable artifact.
    """

    def __init__(
        self,
        max_length: int,
        dictionary: Dictionary | None = None,
        tail_predicates: frozenset[str] = DEFAULT_TAIL_PREDICATES,
    ) -> None:
        self.max_length = max_length
        self.dictionary = dictionary if dictionary is not None else Dictionary()
        self.tail_predicates = frozenset(tail_predicates)
        # seeds this store was expanded from (dictionary ids)
        self.seed_ids: set[int] = set()
        # s_id -> path_id -> {o_id}
        self._by_subject: dict[int, dict[int, set[int]]] = defaultdict(dict)
        # (s_id, o_id) -> {path_id}
        self._by_pair: dict[tuple[int, int], set[int]] = defaultdict(set)
        # path interning: tuple of predicate ids <-> dense path id
        self._path_key_to_id: dict[tuple[int, ...], int] = {}
        self._path_keys: list[tuple[int, ...]] = []
        self._triple_count = 0
        # reach provenance: node -> seeds whose BFS scanned the node.  Most
        # nodes are scanned on behalf of a single seed, so the common case
        # stores a bare int and only promotes to a set on the second seed —
        # this keeps the number of GC-tracked containers (and therefore the
        # collector's mid-scan pauses) near the pre-reach-index level.
        self._reached_from: dict[int, int | set[int]] = {}
        # decoded frozen views, built lazily, one per key
        self._decoded_paths: dict[int, PredicatePath] = {}
        self._objects_cache: dict[tuple[int, int], frozenset[str]] = {}
        self._pairs_cache: dict[tuple[int, int], frozenset[PredicatePath]] = {}
        self._paths_of_cache: dict[int, frozenset[PredicatePath]] = {}

    # -- Id-level mutation / lookup ----------------------------------------

    def path_id(self, path_key: tuple[int, ...]) -> int:
        """Intern a tuple of predicate ids; returns its dense path id."""
        existing = self._path_key_to_id.get(path_key)
        if existing is not None:
            return existing
        new_id = len(self._path_keys)
        self._path_key_to_id[path_key] = new_id
        self._path_keys.append(path_key)
        return new_id

    def record_encoded(self, subject_id: int, path_key: tuple[int, ...], object_id: int) -> bool:
        """Insert one id-encoded (s, p+, o) triple (idempotent)."""
        p_id = self.path_id(path_key)
        objects = self._by_subject[subject_id].setdefault(p_id, set())
        if object_id in objects:
            return False
        objects.add(object_id)
        self._by_pair[(subject_id, object_id)].add(p_id)
        self._triple_count += 1
        # invalidate any frozen views covering this key
        self._objects_cache.pop((subject_id, p_id), None)
        self._pairs_cache.pop((subject_id, object_id), None)
        self._paths_of_cache.pop(subject_id, None)
        return True

    def objects_ids(self, subject_id: int, path_id: int) -> set[int] | frozenset[int]:
        """Id-level ``V(e, p+)`` (read-only view; empty is a frozenset)."""
        return self._by_subject.get(subject_id, {}).get(path_id, _EMPTY_FROZEN)

    # -- Reach provenance --------------------------------------------------

    def note_reach(self, node_id: int, seed_id: int) -> None:
        """Record that ``seed_id``'s BFS scanned ``node_id``'s out-edges."""
        existing = self._reached_from.get(node_id)
        if existing is None:
            self._reached_from[node_id] = seed_id
        elif isinstance(existing, int):
            if existing != seed_id:
                self._reached_from[node_id] = {existing, seed_id}
        else:
            existing.add(seed_id)

    def seeds_through(self, node_id: int) -> tuple[int, ...] | set[int]:
        """Seeds whose expansion scanned ``node_id`` (read-only view).

        This is the invalidation index: a base-KB edge change under subject
        ``node_id`` can only affect expanded triples of these seeds.
        """
        existing = self._reached_from.get(node_id)
        if existing is None:
            return ()
        if isinstance(existing, int):
            return (existing,)
        return existing

    def reach_items(self) -> Iterator[tuple[int, frozenset[int]]]:
        """Normalized scan of the reach index: ``(node_id, {seed_ids})``."""
        for node_id, seeds in self._reached_from.items():
            if isinstance(seeds, int):
                yield node_id, frozenset((seeds,))
            else:
                yield node_id, frozenset(seeds)

    def has_reach(self) -> bool:
        """True when the reach-provenance index is populated.

        `repro.kb.live` gates its upfront :func:`compute_reach` on this
        rather than peeking at ``_reached_from`` so a mapped v3 artifact
        (`repro.kb.expanded_v3`) can answer from its header without
        materializing anything.
        """
        return bool(self._reached_from)

    # -- String-boundary mutation ------------------------------------------

    def record(self, subject: str, path: PredicatePath, obj: str) -> bool:
        """Insert one (s, p+, o) triple given as strings (idempotent)."""
        encode = self.dictionary.encode
        path_key = tuple(encode(p) for p in path.predicates)
        return self.record_encoded(encode(subject), path_key, encode(obj))

    def invalidate_seed(self, seed: str) -> bool:
        """Drop every expanded triple and reach entry of one seed.

        Per-key invalidation for live KB updates: all of the seed's
        materialized ``(s, p+, o)`` rows, its pair index entries, its frozen
        views, and its reach provenance are removed so a targeted single-seed
        re-expansion (see :class:`repro.kb.live.LiveExpansionMaintainer`)
        can rebuild them.  Returns True when anything was dropped.
        """
        s = self.dictionary.lookup(seed)
        if s is None:
            return False
        removed = False
        by_path = self._by_subject.pop(s, None)
        if by_path:
            removed = True
            for p_id, object_ids in by_path.items():
                self._triple_count -= len(object_ids)
                self._objects_cache.pop((s, p_id), None)
                for o_id in object_ids:
                    pair = (s, o_id)
                    paths = self._by_pair.get(pair)
                    if paths is not None:
                        paths.discard(p_id)
                        if not paths:
                            del self._by_pair[pair]
                    self._pairs_cache.pop(pair, None)
        self._paths_of_cache.pop(s, None)
        # the reach index has no inverse (it would double the GC-tracked
        # containers on the expansion hot path); a linear sweep is fine for
        # this rare operation
        orphaned = []
        for node_id, seeds in self._reached_from.items():
            if isinstance(seeds, int):
                if seeds == s:
                    orphaned.append(node_id)
            else:
                seeds.discard(s)
                if not seeds:
                    orphaned.append(node_id)
                elif len(seeds) == 1:
                    self._reached_from[node_id] = next(iter(seeds))
        for node_id in orphaned:
            del self._reached_from[node_id]
        if s in self.seed_ids:
            self.seed_ids.discard(s)
            removed = True
        return removed

    def merge_from(self, other: "ExpandedStore") -> int:
        """Fold another store's triples, seeds and reach into this one.

        The merge is string-level, so it is correct whether or not the two
        stores share a dictionary (a freshly loaded artifact has its own).
        Returns the number of newly inserted triples.
        """
        added = 0
        for subject, path, obj in other.triples():
            if self.record(subject, path, obj):
                added += 1
        encode = self.dictionary.encode
        decode = other.dictionary.decode
        for seed_id in other.seed_ids:
            self.seed_ids.add(encode(decode(seed_id)))
        for node_id, seeds in other.reach_items():
            node = encode(decode(node_id))
            for seed_id in seeds:
                self.note_reach(node, encode(decode(seed_id)))
        return added

    # -- Persistence -------------------------------------------------------

    def save(self, path: str | Path, format: str | None = None) -> None:
        """Serialize the id-encoded buffers together with the dictionary.

        ``format`` selects the artifact layout: ``"v1"`` (this method's
        line-oriented JSON, the default), ``"v2"`` (the mmap-friendly
        struct-packed id arrays of `repro.kb.expanded_v2`), or None —
        which defers to the ``KBQA_EXPANDED_FORMAT`` environment variable
        and finally to v1.  Both formats carry identical content in the
        same canonical order and :meth:`load` routes on the file magic, so
        the choice is purely a wire/reload-speed trade
        (``tests/test_expansion_persistence.py`` proves the round-trip
        byte-equivalence both ways).

        The v1 format is canonical: paths are written in sorted key order,
        subjects in id order, object sets sorted — so two stores whose
        dictionaries assign the same term ids (e.g. a single-store and a
        sharded expansion over KBs built by the same add sequence)
        serialize to byte-identical files regardless of internal path/set
        interning order.  Stores with *differently ordered* dictionaries
        hold different ids and produce different bytes even for equal
        content.

        Layout (UTF-8, line-oriented, JSON-encoded payloads)::

            KBQA-EXPANDED 1                     # magic + format version
            {...header: counts, max_length...}  # one JSON object
            "<term>"        x terms             # dictionary, id order
            [seed ids]                          # one sorted JSON array
            [p_id, ...]     x paths             # path keys, canonical order
            [s, [[p, [o...]], ...]] x subjects  # triples, grouped + sorted
            [node, [seed...]] x reach           # reach index, sorted
        """
        fmt = resolve_expanded_format(format)
        if fmt == "v2":
            expanded_v2.save_v2(self, path)
            return
        if fmt == "v3":
            from repro.kb import expanded_v3  # local: v3 subclasses this module

            expanded_v3.save_v3(self, path)
            return
        # canonical path order: sort interned keys, remap to file-local ids
        sorted_keys = sorted(self._path_keys)
        file_path_id = {key: i for i, key in enumerate(sorted_keys)}
        remap = [file_path_id[key] for key in self._path_keys]

        lines: list[str] = [
            f"{EXPANSION_MAGIC} {EXPANSION_FORMAT_VERSION}",
            json.dumps(
                {
                    "max_length": self.max_length,
                    "tail_predicates": sorted(self.tail_predicates),
                    "terms": len(self.dictionary),
                    "paths": len(sorted_keys),
                    "subjects": len(self._by_subject),
                    "triples": self._triple_count,
                    "reach_nodes": len(self._reached_from),
                },
                sort_keys=True,
                separators=(",", ":"),
            ),
        ]
        dumps = json.dumps
        for term in self.dictionary.terms():
            lines.append(dumps(term, ensure_ascii=False))
        lines.append(dumps(sorted(self.seed_ids), separators=(",", ":")))
        for key in sorted_keys:
            lines.append(dumps(list(key), separators=(",", ":")))
        for s_id in sorted(self._by_subject):
            groups = sorted(
                (remap[p_id], sorted(object_ids))
                for p_id, object_ids in self._by_subject[s_id].items()
            )
            lines.append(dumps([s_id, groups], separators=(",", ":")))
        for node_id, seeds in sorted(self.reach_items()):
            lines.append(dumps([node_id, sorted(seeds)], separators=(",", ":")))
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "ExpandedStore":
        """Reload a store saved by :meth:`save` (with its own dictionary).

        The loaded store answers ``objects``/``paths_between``/``paths_of``
        without any re-expansion; offline training passes it straight to the
        learner (``KBQA.train(..., expanded=...)``) to skip the Sec 6.2 scan
        entirely.  Raises :class:`ValueError` on a bad magic, an unsupported
        version, or count mismatches.

        The format is sniffed from the file magic: binary v3 artifacts
        (`repro.kb.expanded_v3`) come back as a *mapped* store that answers
        lookups by binary search over the mmap with no dict materialization
        at all, v2 artifacts (`repro.kb.expanded_v2`) reload through the
        mmap reader into dicts, anything else takes the v1 line-JSON path
        below.
        """
        from repro.kb import expanded_v3  # local: v3 subclasses this module

        if expanded_v3.is_v3_file(path):
            return expanded_v3.load_v3(path)
        if expanded_v2.is_v2_file(path):
            return expanded_v2.load_v2(cls, path)
        text = Path(path).read_text(encoding="utf-8")
        lines = text.splitlines()
        if not lines:
            raise ValueError(f"{path}: empty expansion file")
        magic = lines[0].split()
        if len(magic) != 2 or magic[0] != EXPANSION_MAGIC:
            raise ValueError(f"{path}: not a {EXPANSION_MAGIC} file")
        if int(magic[1]) != EXPANSION_FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported format version {magic[1]} "
                f"(supported: {EXPANSION_FORMAT_VERSION})"
            )
        header = json.loads(lines[1])
        store = cls(
            max_length=header["max_length"],
            tail_predicates=frozenset(header["tail_predicates"]),
        )
        cursor = 2
        try:
            encode = store.dictionary.encode
            for line in lines[cursor : cursor + header["terms"]]:
                encode(json.loads(line))
            if len(store.dictionary) != header["terms"]:
                raise ValueError(f"{path}: dictionary count mismatch")
            cursor += header["terms"]
            n_terms = header["terms"]

            def check_term_id(term_id: int) -> int:
                # catch out-of-range ids at load time (the documented
                # ValueError) rather than as a KeyError at first decode
                if not (isinstance(term_id, int) and 0 <= term_id < n_terms):
                    raise ValueError(f"term id {term_id} out of range")
                return term_id

            store.seed_ids = {check_term_id(s) for s in json.loads(lines[cursor])}
            cursor += 1
            for line in lines[cursor : cursor + header["paths"]]:
                store.path_id(tuple(check_term_id(p) for p in json.loads(line)))
            cursor += header["paths"]
            n_paths = header["paths"]
            for line in lines[cursor : cursor + header["subjects"]]:
                s_id, groups = json.loads(line)
                check_term_id(s_id)
                for p_idx, object_ids in groups:
                    if not (isinstance(p_idx, int) and 0 <= p_idx < n_paths):
                        raise ValueError(f"path id {p_idx} out of range")
                    key = store._path_keys[p_idx]
                    for o_id in object_ids:
                        store.record_encoded(s_id, key, check_term_id(o_id))
            cursor += header["subjects"]
            for line in lines[cursor : cursor + header["reach_nodes"]]:
                node_id, seeds = json.loads(line)
                check_term_id(node_id)
                for seed_id in seeds:
                    store.note_reach(node_id, check_term_id(seed_id))
        except (TypeError, KeyError, IndexError, json.JSONDecodeError) as error:
            raise ValueError(f"{path}: malformed expansion file ({error})") from error
        if store._triple_count != header["triples"]:
            raise ValueError(
                f"{path}: triple count mismatch "
                f"(header {header['triples']}, loaded {store._triple_count})"
            )
        return store

    # -- Decoding helpers ----------------------------------------------------

    def _decode_path(self, path_id: int) -> PredicatePath:
        path = self._decoded_paths.get(path_id)
        if path is None:
            decode = self.dictionary.decode
            path = PredicatePath(tuple(decode(p) for p in self._path_keys[path_id]))
            self._decoded_paths[path_id] = path
        return path

    def _lookup_path_id(self, path: PredicatePath) -> int | None:
        lookup = self.dictionary.lookup
        key: list[int] = []
        for predicate in path.predicates:
            p = lookup(predicate)
            if p is None:
                return None
            key.append(p)
        return self._path_key_to_id.get(tuple(key))

    # -- Lookups ----------------------------------------------------------

    def objects(self, subject: str, path: PredicatePath) -> frozenset[str]:
        """``V(e, p+)`` over expanded predicates (shared frozen view)."""
        s = self.dictionary.lookup(subject)
        if s is None:
            return _EMPTY_FROZEN
        p = self._lookup_path_id(path)
        if p is None:
            return _EMPTY_FROZEN
        key = (s, p)
        cached = self._objects_cache.get(key)
        if cached is None:
            object_ids = self._by_subject.get(s, {}).get(p)
            if not object_ids:
                return _EMPTY_FROZEN
            cached = frozenset(self.dictionary.decode_many(object_ids))
            self._objects_cache[key] = cached
        return cached

    def paths_between(self, subject: str, obj: str) -> frozenset[PredicatePath]:
        """All expanded predicates connecting (subject, obj) (frozen view)."""
        lookup = self.dictionary.lookup
        s = lookup(subject)
        o = lookup(obj)
        if s is None or o is None:
            return _EMPTY_FROZEN
        key = (s, o)
        cached = self._pairs_cache.get(key)
        if cached is None:
            path_ids = self._by_pair.get(key)
            if not path_ids:
                return _EMPTY_FROZEN
            cached = frozenset(self._decode_path(p) for p in path_ids)
            self._pairs_cache[key] = cached
        return cached

    def paths_of(self, subject: str) -> frozenset[PredicatePath]:
        """All expanded predicates leaving ``subject`` (frozen view)."""
        s = self.dictionary.lookup(subject)
        if s is None:
            return _EMPTY_FROZEN
        cached = self._paths_of_cache.get(s)
        if cached is None:
            by_path = self._by_subject.get(s)
            if not by_path:
                return _EMPTY_FROZEN
            cached = frozenset(self._decode_path(p) for p in by_path)
            self._paths_of_cache[s] = cached
        return cached

    def value_count(self, subject: str, path: PredicatePath) -> int:
        """``|V(e, p+)|`` without decoding a single object."""
        s = self.dictionary.lookup(subject)
        if s is None:
            return 0
        p = self._lookup_path_id(path)
        if p is None:
            return 0
        return len(self._by_subject.get(s, {}).get(p, ()))

    # -- Inventory ----------------------------------------------------------

    def __len__(self) -> int:
        """Number of materialized (s, p+, o) triples."""
        return self._triple_count

    def subjects(self) -> Iterator[str]:
        """All subjects with at least one expanded triple."""
        decode = self.dictionary.decode
        return (decode(s) for s in self._by_subject)

    def distinct_paths(self) -> set[PredicatePath]:
        """All expanded predicates materialized for any subject."""
        return {self._decode_path(p) for p in range(len(self._path_keys))}

    def triples(self) -> Iterator[tuple[str, PredicatePath, str]]:
        """Scan every materialized (s, p+, o), decoded."""
        decode = self.dictionary.decode
        for s, by_path in self._by_subject.items():
            subject = decode(s)
            for p, object_ids in by_path.items():
                path = self._decode_path(p)
                for o in object_ids:
                    yield subject, path, decode(o)

    def triples_ids(self) -> Iterator[tuple[int, int, int]]:
        """Id-native scan: ``(s_id, path_id, o_id)`` per materialized triple."""
        for s, by_path in self._by_subject.items():
            for p, object_ids in by_path.items():
                for o in object_ids:
                    yield s, p, o

    def stats(self) -> dict[str, int]:
        """Triple/subject/path counts split by direct vs expanded."""
        n_direct = sum(1 for key in self._path_keys if len(key) == 1)
        return {
            "spo_triples": self._triple_count,
            "subjects": len(self._by_subject),
            "paths": len(self._path_keys),
            "direct_paths": n_direct,
            "expanded_paths": len(self._path_keys) - n_direct,
        }


# Monotonic per-store payload tokens: an ExecutorPool caches published shard
# tables per (store, generation), and tokens — unlike id() — are never reused
# after a store is garbage-collected, so a recycled address can't alias a
# fresh store onto a stale publish.
_payload_token_counter = 0


def _store_payload_token(store: KBBackend) -> int:
    global _payload_token_counter
    token = getattr(store, "_expansion_payload_token", None)
    if token is None:
        _payload_token_counter += 1
        token = _payload_token_counter
        store._expansion_payload_token = token
    return token


def _scan_executor(
    store: KBBackend,
    executor: str | Executor | ExecutorPool | None,
    workers: int | None,
) -> tuple[
    Executor | None,
    bool,
    bool,
    Callable[[], str] | None,
    Callable[[Executor], Executor] | None,
]:
    """Resolve the execution backend for one expansion call.

    Returns ``(executor, owned, self_contained, publish_tables, respawn)``.
    ``executor`` is None for the inline serial fast path (scan
    ``store.spo_items_ids()`` directly — zero task overhead, and
    shard-chained order equals the shard-ordered merge).  ``owned`` marks
    executors built here (closed on return); ``self_contained`` marks
    process executors the caller built without a resident shard payload,
    whose tasks must carry their own tables; ``publish_tables`` (set only
    when an :class:`~repro.exec.pool.ExecutorPool` serves the call) returns
    the shared-memory publish of the shard tables for the pool's *current*
    generation — warm workers attach it by name, so repeated expansions on
    one pool pay neither pool start nor per-call table shipping, and a
    mid-flight republication is recoverable by calling it again.
    ``respawn`` replaces an executor whose workers died mid-scan with a
    fresh one (None when the executor is caller-owned and not ours to
    restart — a crash then propagates to its owner).
    """
    if isinstance(executor, ExecutorPool):
        if executor.kind == "serial":
            return None, False, False, None, None
        pool = executor
        leased = pool.executor()

        def respawn_from_pool(broken: Executor) -> Executor:
            pool.respawn(broken)
            return pool.executor()

        if leased.kind != "process":
            return leased, False, False, None, respawn_from_pool
        n_shards = store.n_shards
        key = f"shard_tables:{_store_payload_token(store)}:{n_shards}"

        def publish_tables() -> str:
            return pool.publish(
                key,
                lambda: pickle.dumps(
                    tuple(store.shard_table(i) for i in range(n_shards)),
                    protocol=pickle.HIGHEST_PROTOCOL,
                ),
            )

        return leased, False, False, publish_tables, respawn_from_pool
    if executor is not None and not isinstance(executor, str):
        return executor, False, executor.kind == "process", None, None
    n_shards = store.n_shards
    kind = resolve_exec_kind(executor, default="thread" if n_shards > 1 else "serial")
    if kind == "serial":
        return None, False, False, None, None
    workers = resolve_workers(workers, fallback=n_shards)
    payload = None
    if kind == "process":
        # the shard tables ship once per worker at pool start; per-round
        # tasks then carry only their frontier slice
        payload = tuple(store.shard_table(i) for i in range(n_shards))

    def respawn_owned(broken: Executor) -> Executor:
        try:
            broken.close()
        except Exception:  # pragma: no cover - broken pools may refuse
            pass
        return make_executor(kind, workers, payload=payload)

    return make_executor(kind, workers, payload=payload), True, False, None, respawn_owned


def expand_predicates(
    store: KBBackend,
    seeds: Iterable[str],
    max_length: int = 3,
    tail_predicates: frozenset[str] = DEFAULT_TAIL_PREDICATES,
    *,
    into: ExpandedStore | None = None,
    record_reach: bool = False,
    executor: str | Executor | ExecutorPool | None = None,
    workers: int | None = None,
) -> ExpandedStore:
    """Generate all ``(s, p+, o)`` with ``s`` in ``seeds``, ``|p+| <= max_length``.

    Implements the algorithm of Sec 6.2 entirely over dictionary ids: round
    ``i`` joins an id-keyed scan of the store (``spo_items_ids``) against the
    frontier produced by round ``i-1``.  ``frontier`` maps an intermediate
    node id to the set of ``(seed_id, prefix-key)`` ways it was reached;
    joining a subject group extends each way by the group's predicates.  The
    grouped scan probes the frontier once per *subject*, not once per triple,
    and no string leaves the dictionary during expansion.

    ``executor`` selects the execution backend for the per-round shard
    fan-out: ``"serial"`` / ``"thread"`` / ``"process"``, a pre-built
    :class:`~repro.exec.backend.Executor`, a persistent
    :class:`~repro.exec.pool.ExecutorPool` (warm workers reused across
    calls, shard tables published once per KB generation into shared
    memory — the repeated-expansion hot path owned by ``KBQA``), or None —
    which defers to the
    ``KBQA_EXEC`` environment variable and finally to the historical default
    (thread pool on a sharded backend, inline serial otherwise).  ``workers``
    sizes a backend built here (default: one per shard, clamped >= 1; the
    ``KBQA_WORKERS`` environment variable overrides).  Every backend merges
    the per-shard buffers in shard order, so the produced triple set — and
    the canonical :meth:`ExpandedStore.save` bytes — are identical to the
    single-store serial scan (``tests/test_exec_backends.py``).  The process
    backend ships picklable frozen tasks (`repro.exec.tasks`): shard tables
    once per worker at pool start, then only the per-shard frontier slice
    per round.

    Passing ``into=`` appends to an existing :class:`ExpandedStore` sharing
    the backend's dictionary (used by the live maintainer for single-seed
    refreshes) instead of building a fresh one.  ``record_reach=True``
    additionally fills the reach-provenance index from the frontier as it
    goes; the default leaves the offline hot path free of that bookkeeping
    (its extra allocations provoke full GC passes mid-scan) — live systems
    build reach once at maintainer attach via :func:`compute_reach`.

    Length-1 paths are recorded unconditionally (they are ordinary KB
    predicates); longer paths are recorded only when their final predicate is
    in ``tail_predicates``, but *traversal* continues through any predicate so
    that e.g. ``marriage -> person -> name`` is reachable even though
    ``marriage -> person`` itself is discarded.
    """
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")

    dictionary = store.dictionary
    if into is None:
        expanded = ExpandedStore(
            max_length=max_length, dictionary=dictionary, tail_predicates=tail_predicates
        )
    else:
        if into.dictionary is not dictionary:
            raise ValueError("`into` must share the backend's dictionary")
        expanded = into

    seed_ids: set[int] = set()
    for seed in seeds:
        seed_id = dictionary.lookup(seed)
        if seed_id is not None and store.has_subject_id(seed_id):
            seed_ids.add(seed_id)
    if not seed_ids:
        return expanded
    expanded.seed_ids.update(seed_ids)

    tail_ids = frozenset(
        tail_id
        for tail in tail_predicates
        if (tail_id := dictionary.lookup(tail)) is not None
    )

    frontier: _Frontier = {seed_id: {(seed_id, ())} for seed_id in seed_ids}
    record = expanded.record_encoded
    note_reach = expanded.note_reach
    n_shards = store.n_shards
    exec_backend, owned, self_contained, publish_tables, respawn_backend = (
        _scan_executor(store, executor, workers)
    )
    tables_ref = publish_tables() if publish_tables is not None else None
    prune_frontier = exec_backend is not None and (
        exec_backend.kind == "process" or self_contained
    )
    crash_attempts = 0  # whole-call budget for worker-death respawn retries

    try:
        for round_index in range(1, max_length + 1):
            if record_reach:
                # this round scans the out-edges of every frontier node on
                # behalf of the seeds that reached it
                for node_id, provenance in frontier.items():
                    for seed_id, _prefix in provenance:
                        note_reach(node_id, seed_id)

            is_last_round = round_index == max_length
            next_frontier: _Frontier = defaultdict(set)
            if exec_backend is None:
                # inline serial scan; a sharded backend chains its shards in
                # shard order, matching the fan-out merge exactly
                for s_id, by_predicate in store.spo_items_ids():
                    provenance = frontier.get(s_id)
                    if not provenance:
                        continue
                    for p_id, object_ids in by_predicate.items():
                        is_tail = p_id in tail_ids
                        for seed_id, prefix in provenance:
                            path_key = prefix + (p_id,)
                            if len(path_key) == 1 or is_tail:
                                for o_id in object_ids:
                                    record(seed_id, path_key, o_id)
                            if not is_last_round:
                                extended = (seed_id, path_key)
                                for o_id in object_ids:
                                    next_frontier[o_id].add(extended)
            else:
                slices = (
                    split_frontier_by_shard(frontier, n_shards)
                    if prune_frontier
                    else None
                )
                tasks = [
                    ShardScanTask(
                        shard=i,
                        frontier=slices[i] if slices is not None else frontier,
                        tail_ids=tail_ids,
                        is_last_round=is_last_round,
                        # self-contained tasks carry their table; payload-
                        # backed process pools and shared-memory publishes
                        # read it worker-side / by reference
                        table=store.shard_table(i)
                        if tables_ref is None
                        and (self_contained or exec_backend.kind != "process")
                        else None,
                        tables_ref=tables_ref,
                    )
                    for i in range(n_shards)
                ]
                attempts = 0
                while True:
                    try:
                        results = exec_backend.map(scan_shard, tasks)
                        break
                    except BrokenExecutor:
                        # a worker died mid-round (SIGKILL/OOM): the whole
                        # pool is broken, but no partial merge happened
                        # (map materializes fully) — respawn fresh workers
                        # and re-dispatch the round, within a bounded budget
                        crash_attempts += 1
                        if respawn_backend is None or crash_attempts > 3:
                            raise
                        exec_backend = respawn_backend(exec_backend)
                    except SegmentUnavailable:
                        # the pool republished the shard tables (a KB
                        # generation bump) and retired this call's segment
                        # mid-flight; re-reference the current publish and
                        # redo the round (map materializes fully, so no
                        # partial merge happened)
                        attempts += 1
                        if publish_tables is None or attempts > 3:
                            raise
                        tables_ref = publish_tables()
                        tasks = [
                            dataclasses.replace(task, tables_ref=tables_ref)
                            for task in tasks
                        ]
                for result in results:
                    # merged in shard order (Executor.map preserves order)
                    for seed_id, path_key, o_id in result.records:
                        record(seed_id, path_key, o_id)
                    for o_id, extended in result.additions:
                        next_frontier[o_id].add(extended)
            frontier = next_frontier
    finally:
        if owned and exec_backend is not None:
            exec_backend.close()
    return expanded


def compute_reach(
    store: KBBackend,
    expanded: ExpandedStore,
    seeds: Iterable[str],
    max_length: int | None = None,
) -> int:
    """(Re)build ``expanded``'s reach-provenance index from the backend.

    A seeds-only multi-source BFS: the frontier maps a node to the set of
    seeds that reached it — no path prefixes, no triple recording — so one
    pass costs a fraction of the full expansion and allocates almost
    nothing.  Reach ids are recorded in ``expanded``'s dictionary (which may
    be a loaded artifact's own dictionary, distinct from the backend's).
    Returns the number of (node, seed) reach facts recorded.

    The live maintainer calls this once at attach time, *before* any
    mutation arrives — a delete's affected seeds must be resolved against
    pre-change reachability.
    """
    if max_length is None:
        max_length = expanded.max_length
    dictionary = store.dictionary
    seed_ids = {
        seed_id
        for seed in seeds
        if (seed_id := dictionary.lookup(seed)) is not None
        and store.has_subject_id(seed_id)
    }
    if not seed_ids:
        return 0

    shared = expanded.dictionary is dictionary
    note_reach = expanded.note_reach
    decode = dictionary.decode
    encode = expanded.dictionary.encode
    recorded = 0
    # node -> frozenset of seed ids that reached it (store-id space)
    frontier: dict[int, frozenset[int]] = {
        seed_id: frozenset((seed_id,)) for seed_id in seed_ids
    }
    for round_index in range(1, max_length + 1):
        for node_id, node_seeds in frontier.items():
            node = node_id if shared else encode(decode(node_id))
            for seed_id in node_seeds:
                note_reach(node, seed_id if shared else encode(decode(seed_id)))
                recorded += 1
        if round_index == max_length:
            break
        next_frontier: dict[int, frozenset[int]] = {}
        for s_id, by_predicate in store.spo_items_ids():
            node_seeds = frontier.get(s_id)
            if not node_seeds:
                continue
            for object_ids in by_predicate.values():
                for o_id in object_ids:
                    existing = next_frontier.get(o_id)
                    if existing is None:
                        next_frontier[o_id] = node_seeds
                    elif not (existing >= node_seeds):
                        next_frontier[o_id] = existing | node_seeds
        frontier = next_frontier
    return recorded


def expand_predicates_baseline(
    store: KBBackend,
    seeds: Iterable[str],
    max_length: int = 3,
    tail_predicates: frozenset[str] = DEFAULT_TAIL_PREDICATES,
) -> ExpandedStore:
    """The original string-level expansion, kept as the reference.

    Scans ``store.triples()`` (materializing a :class:`~repro.kb.triple.Triple`
    and three term strings per row) and joins on decoded subjects.  Equivalence
    tests assert :func:`expand_predicates` produces the identical triple set;
    ``benchmarks/bench_offline_timecost.py`` and the perf harness report the
    before/after wall-clock.
    """
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")

    expanded = ExpandedStore(max_length=max_length, tail_predicates=tail_predicates)
    seed_set = {s for s in seeds if store.has_subject(s)}
    if not seed_set:
        return expanded

    frontier: dict[str, set[tuple[str, PredicatePath | None]]] = {
        seed: {(seed, None)} for seed in seed_set
    }

    for round_index in range(1, max_length + 1):
        next_frontier: dict[str, set[tuple[str, PredicatePath | None]]] = defaultdict(set)
        for triple in store.triples():
            provenance = frontier.get(triple.subject)
            if not provenance:
                continue
            for seed, prefix in provenance:
                path = (
                    PredicatePath.single(triple.predicate)
                    if prefix is None
                    else prefix.extend(triple.predicate)
                )
                if len(path) == 1 or path.last in tail_predicates:
                    expanded.record(seed, path, triple.object)
                if round_index < max_length:
                    next_frontier[triple.object].add((seed, path))
        frontier = next_frontier

    return expanded
