"""SQLite-backed :class:`~repro.kb.backend.KBBackend`: the KB on disk.

The in-memory backends rebuild their dict indexes from the source world on
every process start and pay O(KB) private RAM per process.  This backend
keeps the dictionary and the triple set in one SQLite file instead — the
shape of the SNIPPETS.md knowledge-graph exemplar (terms/alias tables plus
covering indexes for sub-millisecond point lookups) — so a compiled KB

* **loads in milliseconds**: opening is one ``sqlite3.connect`` + a schema
  check, independent of triple count;
* **survives restarts**: ``kbqa compile --backend disk`` writes the DB once
  and every later ``kbqa answer/serve`` run reopens it without recompiling;
* **is shared, not copied, across replicas**: the store pickles as a path
  reference (read-only reopen on thaw) and forked ``--procs N`` replicas
  lazily reopen per-process connections to the same file, so N serving
  processes share SQLite's page cache instead of holding N heap copies.

Schema (``user_version`` guards the layout)::

    terms   (id INTEGER PRIMARY KEY, term TEXT UNIQUE)   -- the dictionary;
            ids are dense, insertion-ordered (0..n-1), exactly like the
            in-memory Dictionary, so a disk-compiled KB and a memory-compiled
            KB built by the same add sequence assign identical ids
    triples (s, p, o) PRIMARY KEY (s, p, o) WITHOUT ROWID -- covering index
            for (subject, predicate) prefix probes (V(e, p), Eq 6)
    idx_triples_pos ON triples (p, o, s)                  -- covering index
            for (predicate, object) reverse lookups
    idx_triples_osp ON triples (o, s, p)                  -- covering index
            for predicates_between(e, v) (the EM pruning probe, Eq 24)
    aliases VIEW (alias, entity)                          -- name/alias edges
            joined back through terms, the exemplar's alias table as a view

Concurrency: WAL journal mode — readers never block the (single) writer and
vice versa; every (process, thread) gets its own lazily opened connection
(SQLite connections are neither fork- nor thread-safe), writes serialize on
SQLite's write lock with a busy timeout.  Change notifications
(:class:`~repro.kb.backend.KBChange`) fire process-locally exactly as for
the in-memory stores; when several *processes* write the same file, row
idempotence makes a replayed mutation a no-op, so replicas replaying a
shared op-log call :meth:`DiskTripleStore.notify_external` to propagate a
sibling's already-applied change into their process-local derived state
(expansion maintainer, answer caches) — see `repro.serve.multiproc`.

The ``(s, p)`` object-set reads carry a small bounded memo so the serving
hot path does not re-run a query per probe; it is invalidated by local
mutations and by ``notify_external``, i.e. cache coherence across processes
rides on the same op-log replay that already orders replica writes.
"""

from __future__ import annotations

import itertools
import os
import sqlite3
import tempfile
import threading
import weakref
from typing import Iterable, Iterator

from repro.kb.backend import ADD, DELETE, BackendBase, KBChange
from repro.kb.triple import Triple

_SCHEMA_VERSION = 1
_BUSY_TIMEOUT_S = 30.0
_OBJECTS_MEMO_CAP = 65536
_DICT_MEMO_CAP = 1 << 17
_INGEST_BATCH = 4096

_SCHEMA = """
CREATE TABLE IF NOT EXISTS terms (
    id   INTEGER PRIMARY KEY,
    term TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS triples (
    s INTEGER NOT NULL,
    p INTEGER NOT NULL,
    o INTEGER NOT NULL,
    PRIMARY KEY (s, p, o)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_triples_pos ON triples (p, o, s);
CREATE INDEX IF NOT EXISTS idx_triples_osp ON triples (o, s, p);
CREATE VIEW IF NOT EXISTS aliases (alias, entity) AS
    SELECT alias_term.term, entity_term.term
    FROM triples
    JOIN terms AS entity_term ON entity_term.id = triples.s
    JOIN terms AS alias_term ON alias_term.id = triples.o
    WHERE triples.p IN (SELECT id FROM terms WHERE term IN ('name', 'alias'));
"""


def _close_connections(connections: list) -> None:
    for conn in connections:
        try:
            conn.close()
        except Exception:  # pragma: no cover - already closed / foreign thread
            pass
    connections.clear()


def _unlink_db(path: str) -> None:
    for suffix in ("", "-wal", "-shm"):
        try:
            os.unlink(path + suffix)
        except OSError:
            pass


class SQLiteDictionary:
    """``Dictionary`` facade over the store's ``terms`` table.

    Ids are dense and insertion-ordered (``MAX(id)+1`` minted inside the
    insert, under SQLite's write lock), matching the in-memory
    :class:`~repro.kb.dictionary.Dictionary` exactly, so id-level
    equivalence suites hold across backends.  Positive lookups and decodes
    are memoized write-through; *negative* lookups are never cached, because
    a sibling process may intern the term at any time.
    """

    def __init__(self, store: "DiskTripleStore") -> None:
        self._store = store
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: dict[int, str] = {}

    def __len__(self) -> int:
        row = self._store._connection().execute("SELECT COUNT(*) FROM terms").fetchone()
        return row[0]

    def __contains__(self, term: str) -> bool:
        return self.lookup(term) is not None

    def encode(self, term: str) -> int:
        """Intern ``term``; returns its dense id (existing or freshly minted)."""
        term_id = self.lookup(term)
        if term_id is not None:
            return term_id
        if self._store.read_only:
            raise TypeError(
                f"{self._store.path}: read-only KB cannot intern new term {term!r}"
            )
        conn = self._store._connection()
        # the id subquery runs inside the insert's write transaction, so
        # concurrent writers cannot mint the same id
        conn.execute(
            "INSERT OR IGNORE INTO terms (id, term) "
            "VALUES ((SELECT COALESCE(MAX(id) + 1, 0) FROM terms), ?)",
            (term,),
        )
        row = conn.execute("SELECT id FROM terms WHERE term = ?", (term,)).fetchone()
        term_id = row[0]
        self._remember(term, term_id)
        return term_id

    def _remember(self, term: str, term_id: int) -> None:
        # bounded write-through memo: a streaming mega-compile interns
        # millions of one-shot terms, so the cache resets instead of growing
        # with the dictionary
        if len(self._term_to_id) >= _DICT_MEMO_CAP:
            self._term_to_id.clear()
            self._id_to_term.clear()
        self._term_to_id[term] = term_id
        self._id_to_term[term_id] = term

    def lookup(self, term: str) -> int | None:
        """Id of ``term`` if interned, else ``None`` (memoized point query)."""
        term_id = self._term_to_id.get(term)
        if term_id is not None:
            return term_id
        row = (
            self._store._connection()
            .execute("SELECT id FROM terms WHERE term = ?", (term,))
            .fetchone()
        )
        if row is None:
            return None
        term_id = row[0]
        self._remember(term, term_id)
        return term_id

    def decode(self, term_id: int) -> str:
        """Term string for ``term_id``; ``KeyError`` on an unknown id."""
        term = self._id_to_term.get(term_id)
        if term is None:
            row = (
                self._store._connection()
                .execute("SELECT term FROM terms WHERE id = ?", (term_id,))
                .fetchone()
            )
            if row is None:
                raise KeyError(term_id)
            term = row[0]
            self._remember(term, term_id)
        return term

    def decode_many(self, term_ids) -> list[str]:
        decode = self.decode
        return [decode(t) for t in term_ids]

    def terms(self) -> Iterator[str]:
        """All interned terms in dense id order (one streaming scan)."""
        for (term,) in self._store._connection().execute(
            "SELECT term FROM terms ORDER BY id"
        ):
            yield term

    def terms_from(self, start: int) -> Iterator[str]:
        """Terms with id >= ``start`` in id order (incremental snapshots)."""
        for (term,) in self._store._connection().execute(
            "SELECT term FROM terms WHERE id >= ? ORDER BY id", (start,)
        ):
            yield term

    def __getstate__(self) -> dict:
        # the memo caches rebuild on demand; the store reference keeps
        # `expanded.dictionary is store.dictionary` identity through pickle
        return {"_store": self._store}

    def __setstate__(self, state: dict) -> None:
        self._store = state["_store"]
        self._term_to_id = {}
        self._id_to_term = {}


class DiskTripleStore(BackendBase):
    """The :class:`~repro.kb.backend.KBBackend` protocol over one SQLite file.

    ``path=None`` creates an ephemeral store in a temp file (removed when
    the owning store is closed or garbage-collected); a named path opens —
    or creates — a persistent KB that later processes reopen in
    milliseconds.  ``read_only=True`` opens with ``mode=ro`` (the serving
    snapshot path: thawed copies can never write the shared file).

    >>> kb = DiskTripleStore()
    >>> kb.add("m.obama", "dob", '"1961"')
    True
    >>> sorted(kb.objects("m.obama", "dob"))
    ['"1961"']
    """

    def __init__(self, path: str | None = None, *, read_only: bool = False) -> None:
        self._ephemeral = path is None
        if path is None:
            fd, path = tempfile.mkstemp(prefix="kbqa-disk-", suffix=".db")
            os.close(fd)
        self._path = str(path)
        self._read_only = bool(read_only)
        self._owner_pid = os.getpid()
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._conn_threads: list[tuple[threading.Thread, sqlite3.Connection]] = []
        self._connections_lock = threading.Lock()
        self._objects_memo: dict[tuple[int, int], frozenset[int]] = {}
        self.dictionary = SQLiteDictionary(self)
        self._init_backend_state()
        if not self._read_only:
            conn = self._connection()
            conn.executescript(_SCHEMA)
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                conn.execute(f"PRAGMA user_version = {_SCHEMA_VERSION}")
            elif version != _SCHEMA_VERSION:
                raise ValueError(
                    f"{self._path}: unsupported KB schema version {version} "
                    f"(supported: {_SCHEMA_VERSION})"
                )
        self._finalizer = weakref.finalize(
            self,
            DiskTripleStore._finalize,
            self._connections,
            self._path,
            self._ephemeral and not self._read_only,
        )

    # -- Connections (per process x thread; SQLite is fork/thread-hostile) --

    @property
    def path(self) -> str:
        """The backing database file."""
        return self._path

    @property
    def read_only(self) -> bool:
        return self._read_only

    @property
    def shared_storage(self) -> bool:
        """True: sibling processes opening the same path see this data.

        `repro.serve.multiproc` keys its op-log replay behavior on this —
        a replayed mutation that is a row-level no-op still has to reach
        this process's listeners via :meth:`notify_external`.
        """
        return True

    def _connection(self) -> sqlite3.Connection:
        state = self._local
        if getattr(state, "pid", None) != os.getpid():
            # forked child: the parent's connection must never be reused
            state.pid = os.getpid()
            state.conn = None
        conn = getattr(state, "conn", None)
        if conn is None:
            conn = self._open_connection()
            state.conn = conn
            with self._connections_lock:
                self._evict_dead_locked()
                self._connections.append(conn)
                self._conn_threads.append((threading.current_thread(), conn))
        return conn

    def _evict_dead_locked(self) -> None:
        """Close and drop connections owned by threads that have exited.

        Each (process, thread) gets a private connection; without eviction a
        serving workload that churns executor threads (pool respawns,
        scenario runs) accumulates one open SQLite handle per dead thread
        until ``close()``.  Swept under ``_connections_lock`` whenever a new
        connection registers, so the registry stays bounded by the number of
        *live* threads.  ``_connections`` keeps its list-object identity —
        the weakref finalizer closes over that exact object.
        """
        if not self._conn_threads:
            return
        live: list[tuple[threading.Thread, sqlite3.Connection]] = []
        for thread, conn in self._conn_threads:
            if thread.is_alive():
                live.append((thread, conn))
                continue
            try:
                conn.close()
            except Exception:  # pragma: no cover - already closed elsewhere
                pass
            try:
                self._connections.remove(conn)
            except ValueError:  # pragma: no cover - close() already cleared it
                pass
        self._conn_threads[:] = live

    def _open_connection(self) -> sqlite3.Connection:
        if self._read_only:
            conn = sqlite3.connect(
                f"file:{self._path}?mode=ro",
                uri=True,
                timeout=_BUSY_TIMEOUT_S,
                check_same_thread=False,
            )
        else:
            conn = sqlite3.connect(
                self._path, timeout=_BUSY_TIMEOUT_S, check_same_thread=False
            )
        conn.isolation_level = None  # autocommit; WAL orders concurrent writers
        if not self._read_only:
            conn.execute("PRAGMA journal_mode=WAL")
            # an ephemeral store is scratch space: crash durability is moot,
            # so skip the fsyncs; named files keep WAL-grade durability
            conn.execute(
                "PRAGMA synchronous=OFF" if self._ephemeral else "PRAGMA synchronous=NORMAL"
            )
        return conn

    @staticmethod
    def _finalize(connections: list, path: str, unlink: bool) -> None:
        _close_connections(connections)
        if unlink:
            _unlink_db(path)

    def close(self) -> None:
        """Close this process's connections; delete the file if ephemeral."""
        self._finalizer.detach()
        with self._connections_lock:
            _close_connections(self._connections)
            self._conn_threads.clear()
        self._local = threading.local()
        if self._ephemeral and not self._read_only and os.getpid() == self._owner_pid:
            _unlink_db(self._path)

    # -- Pickling: ship the path, reopen read-only --------------------------

    def __getstate__(self) -> dict:
        """A pickled disk store is a *reference*, not a copy.

        The thawed side reopens the same file read-only: this is how a
        frozen serving snapshot shares one on-disk KB (and one OS page
        cache) across every pool worker instead of shipping a heap image.
        The dictionary facade rides along so object identity between the
        store and any :class:`~repro.kb.expansion.ExpandedStore` sharing it
        survives the round trip.  The file must outlive the pickle's
        consumers; an ephemeral temp store stays owned (and eventually
        unlinked) by the originating process only.
        """
        return {"_path": self._path, "dictionary": self.dictionary}

    def __setstate__(self, state: dict) -> None:
        self._path = state["_path"]
        self._ephemeral = False
        self._read_only = True
        self._owner_pid = os.getpid()
        self._local = threading.local()
        self._connections = []
        self._conn_threads = []
        self._connections_lock = threading.Lock()
        self._objects_memo = {}
        self.dictionary = state["dictionary"]
        self._init_backend_state()
        self._finalizer = weakref.finalize(
            self, DiskTripleStore._finalize, self._connections, self._path, False
        )

    # -- Mutation ----------------------------------------------------------

    def add(self, subject: str, predicate: str, obj: str) -> bool:
        """Insert a triple; returns False if it was already present."""
        if self._read_only:
            raise ValueError(f"{self._path}: KB opened read-only")
        encode = self.dictionary.encode
        s = encode(subject)
        p = encode(predicate)
        o = encode(obj)
        cursor = self._connection().execute(
            "INSERT OR IGNORE INTO triples (s, p, o) VALUES (?, ?, ?)", (s, p, o)
        )
        if cursor.rowcount == 0:
            return False
        self._objects_memo.pop((s, p), None)
        if self._listeners:
            self._notify(KBChange(ADD, s, p, o))
        return True

    def add_triple(self, triple: Triple) -> bool:
        return self.add(triple.subject, triple.predicate, triple.object)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns how many were new."""
        return sum(1 for t in triples if self.add_triple(t))

    def ingest_triples(
        self, triples: Iterable[Triple], *, batch_size: int = _INGEST_BATCH
    ) -> int:
        """Bulk-load ``triples`` in batched write transactions (streaming seam).

        The mega-compile ingest path: terms are encoded in the same order a
        sequential :meth:`add` loop would encode them (so the dense
        dictionary ids stay identical to an in-memory store built from the
        same sequence — the backend-equivalence contract), but rows land via
        one ``executemany`` per ``batch_size`` chunk inside an explicit
        ``BEGIN``/``COMMIT``: one fsync per batch instead of per triple.
        Accepts any triple iterable and never materializes it.  Returns the
        number of rows that were new.  With subscribed listeners it falls
        back to per-triple adds inside one notification batch so the change
        stream stays exact.
        """
        if self._read_only:
            raise ValueError(f"{self._path}: KB opened read-only")
        if self._listeners:
            with self.batch():
                return self.add_all(triples)
        conn = self._connection()
        encode = self.dictionary.encode
        inserted = 0
        iterator = iter(triples)
        while True:
            chunk = list(itertools.islice(iterator, batch_size))
            if not chunk:
                break
            conn.execute("BEGIN")
            try:
                rows = [
                    (encode(t.subject), encode(t.predicate), encode(t.object))
                    for t in chunk
                ]
                before = conn.total_changes
                conn.executemany(
                    "INSERT OR IGNORE INTO triples (s, p, o) VALUES (?, ?, ?)", rows
                )
                inserted += conn.total_changes - before
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")
            self._objects_memo.clear()
        return inserted

    def delete(self, subject: str, predicate: str, obj: str) -> bool:
        """Remove a triple; returns False if it was not present.

        Dictionary rows are never reclaimed (ids are dense and append-only,
        exactly like the in-memory stores), so ``resources`` does not
        decrease on delete.
        """
        if self._read_only:
            raise ValueError(f"{self._path}: KB opened read-only")
        lookup = self.dictionary.lookup
        s = lookup(subject)
        p = lookup(predicate)
        o = lookup(obj)
        if s is None or p is None or o is None:
            return False
        cursor = self._connection().execute(
            "DELETE FROM triples WHERE s = ? AND p = ? AND o = ?", (s, p, o)
        )
        if cursor.rowcount == 0:
            return False
        self._objects_memo.pop((s, p), None)
        if self._listeners:
            self._notify(KBChange(DELETE, s, p, o))
        return True

    def notify_external(self, action: str, subject: str, predicate: str, obj: str) -> None:
        """Propagate a change a *sibling process* already applied to the file.

        Row idempotence makes a replayed ``add``/``delete`` a local no-op,
        which would leave this process's maintainer and caches stale; the
        op-log replay calls this instead so listeners observe the change
        exactly as if the mutation had been local.  ``action`` is
        :data:`~repro.kb.backend.ADD` or :data:`~repro.kb.backend.DELETE`.
        """
        if action not in (ADD, DELETE):
            raise ValueError(f"unknown change action {action!r}")
        # lookup, never encode: the sibling already interned these terms in
        # the shared file, and a read-only replica could not mint ids anyway
        lookup = self.dictionary.lookup
        s = lookup(subject)
        p = lookup(predicate)
        o = lookup(obj)
        if s is None or p is None or o is None:
            raise ValueError(
                f"replayed {action!r} references terms missing from {self._path}"
            )
        self._objects_memo.pop((s, p), None)
        if self._listeners:
            self._notify(KBChange(action, s, p, o))

    # -- Point lookups -----------------------------------------------------

    def __len__(self) -> int:
        return self._connection().execute("SELECT COUNT(*) FROM triples").fetchone()[0]

    def __contains__(self, triple: Triple) -> bool:
        return self.has(triple.subject, triple.predicate, triple.object)

    def has(self, subject: str, predicate: str, obj: str) -> bool:
        """Point membership test for one triple."""
        lookup = self.dictionary.lookup
        s = lookup(subject)
        p = lookup(predicate)
        o = lookup(obj)
        if s is None or p is None or o is None:
            return False
        return (
            self._connection()
            .execute(
                "SELECT 1 FROM triples WHERE s = ? AND p = ? AND o = ?", (s, p, o)
            )
            .fetchone()
            is not None
        )

    def objects(self, subject: str, predicate: str) -> set[str]:
        """``V(e, p)`` — all objects for a (subject, predicate) pair."""
        s = self.dictionary.lookup(subject)
        p = self.dictionary.lookup(predicate)
        if s is None or p is None:
            return set()
        decode = self.dictionary.decode
        return {decode(o) for o in self.objects_ids(s, p)}

    def subjects(self, predicate: str, obj: str) -> set[str]:
        """All subjects s with (s, predicate, obj) in the store."""
        p = self.dictionary.lookup(predicate)
        o = self.dictionary.lookup(obj)
        if p is None or o is None:
            return set()
        decode = self.dictionary.decode
        return {
            decode(s)
            for (s,) in self._connection().execute(
                "SELECT s FROM triples WHERE p = ? AND o = ?", (p, o)
            )
        }

    def predicates_between(self, subject: str, obj: str) -> set[str]:
        """All direct predicates p with (subject, p, obj) in the store."""
        s = self.dictionary.lookup(subject)
        o = self.dictionary.lookup(obj)
        if s is None or o is None:
            return set()
        decode = self.dictionary.decode
        return {
            decode(p)
            for (p,) in self._connection().execute(
                "SELECT p FROM triples WHERE o = ? AND s = ?", (o, s)
            )
        }

    def predicates_of(self, subject: str) -> set[str]:
        """All predicates leaving ``subject``."""
        s = self.dictionary.lookup(subject)
        if s is None:
            return set()
        decode = self.dictionary.decode
        return {
            decode(p)
            for (p,) in self._connection().execute(
                "SELECT DISTINCT p FROM triples WHERE s = ?", (s,)
            )
        }

    def out_degree(self, subject: str) -> int:
        """Number of triples with ``subject`` in subject position."""
        s = self.dictionary.lookup(subject)
        if s is None:
            return 0
        return (
            self._connection()
            .execute("SELECT COUNT(*) FROM triples WHERE s = ?", (s,))
            .fetchone()[0]
        )

    def has_subject(self, subject: str) -> bool:
        s = self.dictionary.lookup(subject)
        return s is not None and self.has_subject_id(s)

    def lookup_alias(self, alias: str) -> set[str]:
        """Entities carrying ``alias`` as a name/alias literal (alias view)."""
        return {
            entity
            for (entity,) in self._connection().execute(
                "SELECT entity FROM aliases WHERE alias = ?", (alias,)
            )
        }

    # -- Id-level API (hot paths) ------------------------------------------

    def lookup_id(self, term: str) -> int | None:
        """Dictionary id of ``term`` (None when never interned)."""
        return self.dictionary.lookup(term)

    def decode_id(self, term_id: int) -> str:
        """Term string for a dictionary id."""
        return self.dictionary.decode(term_id)

    def has_subject_id(self, subject_id: int) -> bool:
        """True when ``subject_id`` occurs in subject position."""
        return (
            self._connection()
            .execute("SELECT 1 FROM triples WHERE s = ? LIMIT 1", (subject_id,))
            .fetchone()
            is not None
        )

    def objects_ids(self, subject_id: int, predicate_id: int) -> frozenset[int]:
        """``V(e, p)`` as object ids (read-only view, memoized bounded)."""
        key = (subject_id, predicate_id)
        cached = self._objects_memo.get(key)
        if cached is None:
            cached = frozenset(
                o
                for (o,) in self._connection().execute(
                    "SELECT o FROM triples WHERE s = ? AND p = ?", key
                )
            )
            if len(self._objects_memo) >= _OBJECTS_MEMO_CAP:
                self._objects_memo.clear()
            self._objects_memo[key] = cached
        return cached

    def predicates_ids_of(self, subject_id: int) -> set[int]:
        """Ids of predicates leaving ``subject_id``."""
        return {
            p
            for (p,) in self._connection().execute(
                "SELECT DISTINCT p FROM triples WHERE s = ?", (subject_id,)
            )
        }

    def triples_ids(self) -> Iterator[tuple[int, int, int]]:
        """Scan all triples as ``(s_id, p_id, o_id)``, subject-grouped."""
        yield from self._connection().execute(
            "SELECT s, p, o FROM triples ORDER BY s, p, o"
        )

    def spo_items_ids(self) -> Iterator[tuple[int, dict[int, set[int]]]]:
        """Grouped id-keyed scan: ``(s_id, {p_id: {o_id}})`` per subject.

        Built per subject from the (s, p, o) covering index, so the scan is
        one ordered sweep; the per-subject dicts are fresh (not live views).
        """
        rows = self._connection().execute("SELECT s, p, o FROM triples ORDER BY s, p, o")
        for s_id, group in itertools.groupby(rows, key=lambda row: row[0]):
            by_predicate: dict[int, set[int]] = {}
            for _s, p_id, o_id in group:
                by_predicate.setdefault(p_id, set()).add(o_id)
            yield s_id, by_predicate

    # -- Sharding face (a disk store is one shard) --------------------------

    @property
    def n_shards(self) -> int:
        """A :class:`DiskTripleStore` is a single subject partition."""
        return 1

    def shard_spo_items_ids(self, shard: int) -> Iterator[tuple[int, dict[int, set[int]]]]:
        """Grouped id-keyed scan of one shard (shard 0 is the whole store)."""
        if shard != 0:
            raise IndexError(f"DiskTripleStore has 1 shard, got shard index {shard}")
        return self.spo_items_ids()

    def shard_table(self, shard: int) -> dict[int, dict[int, set[int]]]:
        """The whole SPO table materialized as dicts (shard 0 only).

        This is the picklable unit the process-parallel expansion ships to
        workers — a full heap copy by design; the zero-copy sharing story
        is the page cache behind the per-process connections, not this
        escape hatch.
        """
        if shard != 0:
            raise IndexError(f"DiskTripleStore has 1 shard, got shard index {shard}")
        return {s_id: by_predicate for s_id, by_predicate in self.spo_items_ids()}

    # -- Scans ---------------------------------------------------------------

    def triples(self) -> Iterator[Triple]:
        """Scan all triples in (s, p, o) id order, decoded."""
        decode = self.dictionary.decode
        for s, p, o in self.triples_ids():
            yield Triple(decode(s), decode(p), decode(o))

    def subjects_iter(self) -> Iterator[str]:
        """All distinct subjects."""
        decode = self.dictionary.decode
        return (
            decode(s)
            for (s,) in self._connection().execute("SELECT DISTINCT s FROM triples")
        )

    def predicates(self) -> set[str]:
        """All distinct predicates in the store."""
        decode = self.dictionary.decode
        return {
            decode(p)
            for (p,) in self._connection().execute("SELECT DISTINCT p FROM triples")
        }

    # -- Statistics ----------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Store-level counts (triples/terms/resources/predicates/subjects)."""
        self._reconcile_resources()
        conn = self._connection()
        return {
            "triples": len(self),
            "terms": len(self.dictionary),
            "resources": self._n_resources,
            "predicates": conn.execute(
                "SELECT COUNT(DISTINCT p) FROM triples"
            ).fetchone()[0],
            "subjects": conn.execute(
                "SELECT COUNT(DISTINCT s) FROM triples"
            ).fetchone()[0],
        }
