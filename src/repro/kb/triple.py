"""Triple record and literal conventions.

Terms in the store are plain strings.  Two kinds are distinguished by a
prefix convention, mirroring how RDF separates IRIs from literals:

* **resources** — entity / CVT node identifiers such as ``m.person_12`` and
  predicate names such as ``population``;
* **literals** — attribute values, stored with a ``"`` prefix so that the
  string ``"honolulu"`` (a literal) can never collide with an entity node
  that happens to be named ``honolulu``.

Helper functions below are the single source of truth for the convention.
"""

from __future__ import annotations

from dataclasses import dataclass

LITERAL_PREFIX = '"'


def make_literal(value: object) -> str:
    """Wrap a raw value as a literal term (idempotent on literals)."""
    text = str(value)
    if text.startswith(LITERAL_PREFIX):
        return text
    return LITERAL_PREFIX + text


def is_literal(term: str) -> bool:
    """True if ``term`` is a literal (by the prefix convention)."""
    return term.startswith(LITERAL_PREFIX)


def literal_value(term: str) -> str:
    """Strip the literal prefix; raises on non-literals to catch misuse."""
    if not is_literal(term):
        raise ValueError(f"not a literal term: {term!r}")
    return term[len(LITERAL_PREFIX) :]


@dataclass(frozen=True, slots=True)
class Triple:
    """An (s, p, o) fact; all three components are term strings."""

    subject: str
    predicate: str
    object: str

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))

    def __str__(self) -> str:
        return f"({self.subject}, {self.predicate}, {self.object})"
