"""Subject-sharded triple store — the partitioned KB backend.

Partitions the id-keyed SPO/POS/OSP indexes by ``subject_id % n_shards``,
the encode-partition-scan layout of the graph engines the paper builds on
(Trinity.RDF partitions by vertex id).  All shards share one
:class:`~repro.kb.dictionary.Dictionary`, so a :class:`ShardedTripleStore`
built by the same ``add`` sequence as a :class:`~repro.kb.store.TripleStore`
assigns *identical* term ids — which is what makes sharded-vs-single
equivalence byte-testable end to end.

Routing rules:

* subject-keyed operations (``objects``, ``predicates_between``,
  ``out_degree``, the id-level probes) go to exactly one shard — still a
  single hash probe;
* ``subjects(p, o)`` and ``predicates()`` fan out and union across shards;
* full scans chain the shards in shard order;
* the Sec 6.2 expansion scan uses ``shard_spo_items_ids`` to run one scan
  task per shard (see ``expand_predicates``), and online per-shard lookups
  fan out the same way.

Each shard is internally a plain :class:`TripleStore` sharing the global
dictionary, so the per-shard index discipline (three orderings, empty-map
pruning on delete) is written exactly once.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.kb.backend import ADD, DELETE, BackendBase, KBChange
from repro.kb.dictionary import Dictionary
from repro.kb.store import TripleStore
from repro.kb.triple import Triple


class ShardedTripleStore(BackendBase):
    """N subject-partitioned :class:`TripleStore` shards behind one facade.

    Change-listener and resource-count plumbing comes from
    :class:`~repro.kb.backend.BackendBase`; the ``resources`` stat lives at
    the facade because all shards share one dictionary (per-shard counts
    would multiply-count terms).

    >>> kb = ShardedTripleStore(shards=2)
    >>> kb.add("m.obama", "dob", '"1961"')
    True
    >>> sorted(kb.objects("m.obama", "dob"))
    ['"1961"']
    """

    def __init__(self, shards: int = 4, dictionary: Dictionary | None = None) -> None:
        if shards < 1:
            raise ValueError(f"need at least 1 shard, got {shards}")
        self.dictionary = dictionary if dictionary is not None else Dictionary()
        self._shards: list[TripleStore] = []
        for _ in range(shards):
            shard = TripleStore()
            shard.dictionary = self.dictionary
            self._shards.append(shard)
        self._init_backend_state()

    @property
    def n_shards(self) -> int:
        """Number of subject partitions."""
        return len(self._shards)

    @property
    def shards(self) -> Sequence[TripleStore]:
        """The shard stores, in shard order (read-only view)."""
        return self._shards

    def shard_of(self, subject_id: int) -> int:
        """Shard index owning ``subject_id`` (``subject_id % n_shards``)."""
        return subject_id % len(self._shards)

    def _shard_for_term(self, subject: str) -> TripleStore | None:
        s = self.dictionary.lookup(subject)
        if s is None:
            return None
        return self._shards[s % len(self._shards)]

    def _notify_terms(self, action: str, subject: str, predicate: str, obj: str) -> None:
        lookup = self.dictionary.lookup
        self._notify(KBChange(action, lookup(subject), lookup(predicate), lookup(obj)))

    # -- Mutation ----------------------------------------------------------

    def add(self, subject: str, predicate: str, obj: str) -> bool:
        """Insert a triple into its subject's shard; returns False if present."""
        s = self.dictionary.encode(subject)
        added = self._shards[s % len(self._shards)].add(subject, predicate, obj)
        if added and self._listeners:
            self._notify_terms(ADD, subject, predicate, obj)
        return added

    def add_triple(self, triple: Triple) -> bool:
        return self.add(triple.subject, triple.predicate, triple.object)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns how many were new."""
        return sum(1 for t in triples if self.add_triple(t))

    def delete(self, subject: str, predicate: str, obj: str) -> bool:
        """Remove a triple from its subject's shard; False if not present."""
        shard = self._shard_for_term(subject)
        if shard is None:
            return False
        deleted = shard.delete(subject, predicate, obj)
        if deleted and self._listeners:
            self._notify_terms(DELETE, subject, predicate, obj)
        return deleted

    # -- Point lookups -----------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, triple: Triple) -> bool:
        return self.has(triple.subject, triple.predicate, triple.object)

    def has(self, subject: str, predicate: str, obj: str) -> bool:
        """Point membership test for one triple (single-shard probe)."""
        shard = self._shard_for_term(subject)
        return shard is not None and shard.has(subject, predicate, obj)

    def objects(self, subject: str, predicate: str) -> set[str]:
        """``V(e, p)`` — routed to the subject's shard."""
        shard = self._shard_for_term(subject)
        if shard is None:
            return set()
        return shard.objects(subject, predicate)

    def subjects(self, predicate: str, obj: str) -> set[str]:
        """All subjects with (s, predicate, obj) — fans out across shards."""
        out: set[str] = set()
        for shard in self._shards:
            out |= shard.subjects(predicate, obj)
        return out

    def predicates_between(self, subject: str, obj: str) -> set[str]:
        """Direct predicates from subject to obj — single-shard probe."""
        shard = self._shard_for_term(subject)
        if shard is None:
            return set()
        return shard.predicates_between(subject, obj)

    def predicates_of(self, subject: str) -> set[str]:
        """All predicates leaving ``subject`` — single-shard probe."""
        shard = self._shard_for_term(subject)
        if shard is None:
            return set()
        return shard.predicates_of(subject)

    def out_degree(self, subject: str) -> int:
        """Triples with ``subject`` in subject position — single-shard probe."""
        shard = self._shard_for_term(subject)
        if shard is None:
            return 0
        return shard.out_degree(subject)

    def has_subject(self, subject: str) -> bool:
        shard = self._shard_for_term(subject)
        return shard is not None and shard.has_subject(subject)

    # -- Id-level API (hot paths) ------------------------------------------

    def lookup_id(self, term: str) -> int | None:
        """Dictionary id of ``term`` (None when never interned)."""
        return self.dictionary.lookup(term)

    def decode_id(self, term_id: int) -> str:
        """Term string for a dictionary id."""
        return self.dictionary.decode(term_id)

    def has_subject_id(self, subject_id: int) -> bool:
        """True when ``subject_id`` occurs in subject position."""
        return self._shards[subject_id % len(self._shards)].has_subject_id(subject_id)

    def objects_ids(self, subject_id: int, predicate_id: int) -> set[int] | frozenset[int]:
        """``V(e, p)`` as object ids (read-only view) — single-shard probe."""
        return self._shards[subject_id % len(self._shards)].objects_ids(
            subject_id, predicate_id
        )

    def predicates_ids_of(self, subject_id: int):
        """Ids of predicates leaving ``subject_id`` (read-only view)."""
        return self._shards[subject_id % len(self._shards)].predicates_ids_of(subject_id)

    def triples_ids(self) -> Iterator[tuple[int, int, int]]:
        """Scan all triples as ids, shard by shard in shard order."""
        for shard in self._shards:
            yield from shard.triples_ids()

    def spo_items_ids(self) -> Iterator[tuple[int, dict[int, set[int]]]]:
        """Grouped id-keyed scan over every shard in shard order."""
        for shard in self._shards:
            yield from shard.spo_items_ids()

    def shard_spo_items_ids(self, shard: int) -> Iterator[tuple[int, dict[int, set[int]]]]:
        """Grouped id-keyed scan restricted to one subject shard."""
        return self._shards[shard].spo_items_ids()

    def shard_table(self, shard: int) -> dict[int, dict[int, set[int]]]:
        """One shard's grouped SPO table (read-only view).

        The picklable shared-nothing unit the process-parallel expansion
        ships to workers: the table holds only dictionary ids, and each
        subject lives in exactly one shard, so the N tables partition the KB.
        """
        return self._shards[shard]._spo

    # -- Scans -------------------------------------------------------------

    def triples(self) -> Iterator[Triple]:
        """Scan all triples decoded, shard by shard in shard order."""
        for shard in self._shards:
            yield from shard.triples()

    def subjects_iter(self) -> Iterator[str]:
        """All distinct subjects (each subject lives in exactly one shard)."""
        for shard in self._shards:
            yield from shard.subjects_iter()

    def predicates(self) -> set[str]:
        """All distinct predicates — union across shards."""
        out: set[str] = set()
        for shard in self._shards:
            out |= shard.predicates()
        return out

    # -- Statistics --------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Aggregate store-level counts across all shards.

        Same keys as :meth:`TripleStore.stats`, plus ``shards``.  The
        ``resources`` count is maintained at the facade (the shards share
        one dictionary, so per-shard counts would multiply-count terms).
        """
        self._reconcile_resources()
        distinct_predicates: set[int] = set()
        n_subjects = 0
        for shard in self._shards:
            n_subjects += len(shard._spo)
            distinct_predicates |= shard._pos.keys()
        return {
            "triples": len(self),
            "terms": len(self.dictionary),
            "resources": self._n_resources,
            "predicates": len(distinct_predicates),
            "subjects": n_subjects,
            "shards": len(self._shards),
        }
