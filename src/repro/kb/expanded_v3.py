"""``ExpandedStore`` binary artifact format v3: mmap'd, served by binary search.

The v2 reader (`repro.kb.expanded_v2`) is zero-copy on *load* but still
re-materializes the dict-of-dict indexes before the first lookup, so cold
start is O(KB) in time and every serving process pays O(KB) in private RAM.
v3 stores the same canonical content **plus the index structure itself**:
every per-count section becomes a prefix-sum offset table and every id array
that v2 merely declared sorted becomes a binary-search index, so the reader
answers ``objects``/``paths_between``/``paths_of``/``seeds_through`` straight
off the mapped arrays:

* :func:`load_v3` maps the file, parses the fixed header, derives every
  section boundary arithmetically and validates the total against the file
  size — **O(1) in KB size**, no dictionary, no dicts, no per-row Python
  objects;
* lookups run ``bisect`` over ``memoryview.cast`` windows of the mapping —
  term -> id through a lexicographic permutation index, subject / pair /
  reach probes over the sorted id arrays — so resident memory is whatever
  the page cache keeps warm, and N ``SO_REUSEPORT`` replicas mapping the
  same artifact share **one** page cache between them;
* a mapped store pickles as *a reference to its artifact path*
  (:meth:`ExpandedStoreV3.__getstate__`), so freezing a serving snapshot
  ships bytes proportional to the path string, and each pool worker re-maps
  the same file instead of thawing a private heap copy;
* :meth:`ExpandedStoreV3.materialize` is the escape hatch: it inflates the
  mapping into the ordinary dict-backed form **in place** (same object
  identity, same term ids, same file-local path ids), and every mutating
  entry point (``record``/``record_encoded``/``note_reach``/
  ``invalidate_seed``/``merge_from``/``path_id``) routes through it, so a
  loaded artifact behaves exactly like a v1/v2 reload the moment live
  updates begin;
* conversions are byte-exact both ways: v3 carries the identical canonical
  content as v1/v2 (same term id order, same sorted path keys, same group
  and object order), so ``load(v3).save(format="v2")`` equals the direct v2
  bytes and ``load(v2).save(format="v3")`` equals the direct v3 bytes
  (``tests/test_expansion_persistence.py``).

Trust boundary: :func:`load_v3` checks structure (magic, version, exact file
size) in O(1) and every lookup bounds-checks ids and offsets before use, so
a corrupt file raises the documented :class:`ValueError` rather than decode
garbage — but *sortedness* of the index arrays is trusted by the hot path
(an unsorted index can only cause misses, never wrong decodes).
:meth:`ExpandedStoreV3.verify` is the full integrity sweep — offset
monotonicity, index sort order, id ranges, and pair-index/triple-section
consistency — and ``kbqa expand --load`` runs it on every v3 artifact.

Layout (all integers little-endian; u32 unless noted)::

    header    magic 8s = b"KBQAXPD3", then u32 fields: version=3,
              max_length, n_tails, n_terms, n_seeds, n_paths, n_path_ids,
              n_subjects, n_groups, n_triples, n_reach_nodes, n_reach_pairs,
              tails_blob_len, n_pairs; u64 terms_blob_len
    tails     offsets u32 x (n_tails+1), utf-8 blob (padded to 4)
    terms     offsets u64 x (n_terms+1), utf-8 blob (padded to 4)
    termsort  u32 x n_terms            term ids permuted into utf-8 byte
                                       order (term -> id binary search)
    seeds     u32 x n_seeds            (sorted)
    paths     offsets u32 x (n_paths+1), flat predicate ids u32 x n_path_ids
              (keys in sorted-tuple order == binary-searchable by key)
    subjects  subject ids u32 x n_subjects       (sorted)
              group offsets u64 x (n_subjects+1) (prefix sums -> groups)
              group path ids u32 x n_groups      (file-local, sorted per subj)
              object offsets u64 x (n_groups+1)  (prefix sums -> objects)
              object ids u32 x n_triples         (sorted per group)
    pairs     pair subject ids u32 x n_pairs     (sorted by (s, o))
              pair object ids u32 x n_pairs
              pair offsets u64 x (n_pairs+1)     (prefix sums -> pair paths)
              pair path ids u32 x n_triples      (file-local, sorted per pair)
    reach     node ids u32 x n_reach_nodes       (sorted)
              reach offsets u64 x (n_reach_nodes+1)
              seed ids u32 x n_reach_pairs       (sorted per node)

The pair section is the ``paths_between`` index (one entry per distinct
(s, o); the flat pair-path array has exactly ``n_triples`` entries because
each expanded triple contributes exactly one (s, o) -> path row).  The
format is self-contained like v1/v2;
:meth:`repro.kb.expansion.ExpandedStore.load` sniffs the magic and routes
here automatically.
"""

from __future__ import annotations

import mmap
import struct
from bisect import bisect_left
from pathlib import Path
from typing import Iterator

from repro.kb.dictionary import Dictionary
from repro.kb.expanded_v2 import (
    _Cursor,
    _decode_strings,
    _pad4,
    _u32_array,
    _u64_array,
)
from repro.kb.expansion import _EMPTY_FROZEN, ExpandedStore
from repro.kb.paths import PredicatePath

EXPANSION_V3_MAGIC = b"KBQAXPD3"
EXPANSION_V3_VERSION = 3

_HEADER = struct.Struct("<8s14IQ")


class V3StreamWriter:
    """Buffered section writer: packs values incrementally, flushes in chunks.

    The incremental-writer seam of the v3 format: sections stream through a
    bounded buffer (~1 MiB) instead of materializing whole ``list`` +
    ``struct.pack`` images, so writing an artifact needs memory proportional
    to the *index* structures (terms, subjects, pairs), never to the triple
    count.  Output bytes are identical to the eager writer's.
    """

    _FLUSH_AT = 1 << 20

    def __init__(self, handle) -> None:
        self._handle = handle
        self._buffer = bytearray()

    def _maybe_flush(self) -> None:
        if len(self._buffer) >= self._FLUSH_AT:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self._handle.write(self._buffer)
            self._buffer.clear()

    def raw(self, data: bytes) -> None:
        self._buffer += data
        self._maybe_flush()

    def u32s(self, values) -> int:
        """Stream an iterable of u32 values; returns how many were written."""
        count = 0
        pack = struct.Struct("<I").pack
        buffer = self._buffer
        for value in values:
            buffer += pack(value)
            count += 1
            if len(buffer) >= self._FLUSH_AT:
                self.flush()
                buffer = self._buffer
        self._maybe_flush()
        return count

    def u64s(self, values) -> int:
        """Stream an iterable of u64 values; returns how many were written."""
        count = 0
        pack = struct.Struct("<Q").pack
        buffer = self._buffer
        for value in values:
            buffer += pack(value)
            count += 1
            if len(buffer) >= self._FLUSH_AT:
                self.flush()
                buffer = self._buffer
        self._maybe_flush()
        return count

    def blob(self, chunks) -> int:
        """Stream byte chunks; returns the total blob length (pre-padding)."""
        total = 0
        for chunk in chunks:
            total += len(chunk)
            self.raw(chunk)
        return total

    def pad4(self, length: int) -> None:
        self.raw(b"\x00" * _pad4(length))


def _prefix_sums(lengths) -> "Iterator[int]":
    """0, l0, l0+l1, ... — the offset-table shape of every v3 section."""
    total = 0
    yield total
    for length in lengths:
        total += length
        yield total


def save_v3(store: "ExpandedStore", path: str | Path) -> None:
    """Serialize ``store`` in the v3 binary layout (canonical, deterministic).

    The content sections use the exact canonical order of the v1/v2 writers
    (sorted path keys remapped to file-local ids, subjects in id order,
    objects and reach seeds sorted), so format conversion through a load is
    byte-exact; the extra index sections (term permutation, prefix-sum
    offsets, pair index) are derived from that canonical order and equally
    deterministic.

    The writer is *streaming*: every section whose size is O(triples) —
    group/object/pair arrays and their offset tables — is generated lazily
    and flows through :class:`V3StreamWriter`'s bounded buffer in multiple
    cheap passes over the store's indexes.  All header counts derive from
    O(index) sweeps up front, so nothing triple-shaped is ever held as a
    Python list (the old writer materialized ~10 such lists plus doubled
    utf-8 blobs).
    """
    sorted_keys = sorted(store._path_keys)
    file_path_id = {key: i for i, key in enumerate(sorted_keys)}
    remap = [file_path_id[key] for key in store._path_keys]

    tails = sorted(store.tail_predicates)
    tails_utf8 = [t.encode("utf-8") for t in tails]
    tails_blob_len = sum(len(c) for c in tails_utf8)

    # terms: keep lengths (O(n_terms) ints), not encoded blob copies
    terms = list(store.dictionary.terms())
    term_lengths = [len(term.encode("utf-8")) for term in terms]
    terms_blob_len = sum(term_lengths)

    seeds = sorted(store.seed_ids)
    n_path_ids = sum(len(key) for key in sorted_keys)

    by_subject = store._by_subject
    subject_order = sorted(by_subject)
    n_groups = sum(len(by_subject[s]) for s in subject_order)
    n_triples = sum(
        len(objs) for s in subject_order for objs in by_subject[s].values()
    )

    by_pair = store._by_pair
    n_pair_paths = sum(len(paths) for paths in by_pair.values())
    if n_pair_paths != n_triples:  # pragma: no cover - invariant
        raise ValueError(
            "pair index inconsistent with triples "
            f"({n_pair_paths} pair paths, {n_triples} triples)"
        )

    reach_sorted = sorted(store.reach_items())
    n_reach_pairs = sum(len(node_seeds) for _node, node_seeds in reach_sorted)

    header = _HEADER.pack(
        EXPANSION_V3_MAGIC,
        EXPANSION_V3_VERSION,
        store.max_length,
        len(tails),
        len(terms),
        len(seeds),
        len(sorted_keys),
        n_path_ids,
        len(subject_order),
        n_groups,
        n_triples,
        len(reach_sorted),
        n_reach_pairs,
        tails_blob_len,
        len(by_pair),
        terms_blob_len,
    )

    # per-subject groups in canonical order: remapped pids are distinct
    # within a subject (file_path_id is injective), so sorting by pid alone
    # reproduces the canonical (pid, objects) order
    def subject_groups(s_id):
        return sorted((remap[p], objs) for p, objs in by_subject[s_id].items())

    pair_keys = sorted(by_pair)

    with open(path, "wb") as handle:
        out = V3StreamWriter(handle)
        out.raw(header)
        out.u32s(_prefix_sums(len(c) for c in tails_utf8))
        out.blob(tails_utf8)
        out.pad4(tails_blob_len)
        out.u64s(_prefix_sums(term_lengths))
        out.blob(term.encode("utf-8") for term in terms)
        out.pad4(terms_blob_len)
        # termsort: the lexicographic permutation is inherently a full sort
        # over the term table — O(n_terms), the largest transient this
        # writer keeps
        out.u32s(sorted(range(len(terms)), key=lambda i: terms[i].encode("utf-8")))
        out.u32s(seeds)
        out.u32s(_prefix_sums(len(key) for key in sorted_keys))
        out.u32s(pid for key in sorted_keys for pid in key)
        out.u32s(subject_order)
        out.u64s(_prefix_sums(len(by_subject[s]) for s in subject_order))
        out.u32s(pid for s in subject_order for pid, _objs in subject_groups(s))
        out.u64s(
            _prefix_sums(
                len(objs) for s in subject_order for _pid, objs in subject_groups(s)
            )
        )
        out.u32s(
            o_id
            for s in subject_order
            for _pid, objs in subject_groups(s)
            for o_id in sorted(objs)
        )
        out.u32s(s_id for s_id, _o_id in pair_keys)
        out.u32s(o_id for _s_id, o_id in pair_keys)
        out.u64s(_prefix_sums(len(by_pair[key]) for key in pair_keys))
        out.u32s(
            pid for key in pair_keys for pid in sorted(remap[p] for p in by_pair[key])
        )
        out.u32s(node_id for node_id, _seeds in reach_sorted)
        out.u64s(_prefix_sums(len(node_seeds) for _node, node_seeds in reach_sorted))
        out.u32s(
            seed
            for _node, node_seeds in reach_sorted
            for seed in sorted(node_seeds)
        )
        out.flush()


class _V3Sections:
    """The mapped artifact: header counts + memoryview windows per section.

    Owns the ``mmap`` and hands out ``memoryview.cast`` windows; every
    consumer goes through this object so :meth:`close` can account for all
    outstanding views.  Purely passive — the search logic lives in
    :class:`MappedDictionary` and :class:`ExpandedStoreV3`.
    """

    def __init__(self, path: str | Path) -> None:
        self.source_path = str(path)
        with open(path, "rb") as handle:
            try:
                self._mmap = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as error:  # an empty file cannot be mapped
                raise ValueError(f"{path}: truncated expansion file (empty)") from error
        view = memoryview(self._mmap)
        self._view = view
        try:
            self._parse(view, path)
        except Exception:
            self.close()
            raise

    def _parse(self, view: memoryview, path: str | Path) -> None:
        if len(view) < _HEADER.size:
            raise ValueError(f"{path}: truncated expansion file (no v3 header)")
        (
            magic,
            version,
            self.max_length,
            n_tails,
            self.n_terms,
            n_seeds,
            self.n_paths,
            n_path_ids,
            self.n_subjects,
            self.n_groups,
            self.n_triples,
            self.n_reach_nodes,
            n_reach_pairs,
            tails_blob_len,
            self.n_pairs,
            terms_blob_len,
        ) = _HEADER.unpack_from(view, 0)
        if magic != EXPANSION_V3_MAGIC:
            raise ValueError(f"{path}: not a {EXPANSION_V3_MAGIC!r} file")
        if version != EXPANSION_V3_VERSION:
            raise ValueError(
                f"{path}: unsupported format version {version} "
                f"(supported: {EXPANSION_V3_VERSION})"
            )
        self.n_path_ids = n_path_ids
        self.n_reach_pairs = n_reach_pairs

        cursor = _Cursor(view, path)
        tail_offsets = cursor.u32s(n_tails + 1)
        tails_blob = cursor.blob(tails_blob_len)
        self.term_offsets = cursor.u64s(self.n_terms + 1)
        self.terms_blob = cursor.blob(terms_blob_len)
        self.term_sort = cursor.u32s(self.n_terms)
        self.seed_ids = cursor.u32s(n_seeds)
        self.path_offsets = cursor.u32s(self.n_paths + 1)
        self.path_ids = cursor.u32s(n_path_ids)
        self.subject_ids = cursor.u32s(self.n_subjects)
        self.group_offsets = cursor.u64s(self.n_subjects + 1)
        self.group_path_ids = cursor.u32s(self.n_groups)
        self.object_offsets = cursor.u64s(self.n_groups + 1)
        self.object_ids = cursor.u32s(self.n_triples)
        self.pair_subjects = cursor.u32s(self.n_pairs)
        self.pair_objects = cursor.u32s(self.n_pairs)
        self.pair_offsets = cursor.u64s(self.n_pairs + 1)
        self.pair_path_ids = cursor.u32s(self.n_triples)
        self.reach_nodes = cursor.u32s(self.n_reach_nodes)
        self.reach_offsets = cursor.u64s(self.n_reach_nodes + 1)
        self.reach_seeds = cursor.u32s(n_reach_pairs)
        if cursor.offset != len(view):
            raise ValueError(
                f"{path}: trailing bytes after the declared sections "
                f"({len(view) - cursor.offset})"
            )
        # the only strings decoded at load time: the tail-predicate
        # whitelist (a handful of entries, O(1) in KB size)
        self.tails = _decode_strings(tail_offsets, tails_blob, path, "tail-predicate")

    def term_bytes(self, term_id: int) -> memoryview:
        start = self.term_offsets[term_id]
        end = self.term_offsets[term_id + 1]
        if not 0 <= start <= end <= len(self.terms_blob):
            raise ValueError(f"{self.source_path}: corrupt dictionary offsets")
        return self.terms_blob[start:end]

    def close(self) -> None:
        for name in (
            "term_offsets", "terms_blob", "term_sort", "seed_ids",
            "path_offsets", "path_ids", "subject_ids", "group_offsets",
            "group_path_ids", "object_offsets", "object_ids",
            "pair_subjects", "pair_objects", "pair_offsets", "pair_path_ids",
            "reach_nodes", "reach_offsets", "reach_seeds",
        ):
            section = self.__dict__.pop(name, None)
            if section is not None:
                section.release()
        view = self.__dict__.pop("_view", None)
        if view is not None:
            view.release()
        mapped = self.__dict__.pop("_mmap", None)
        if mapped is not None:
            try:
                mapped.close()
            except BufferError:  # pragma: no cover - stray traceback views
                pass


class MappedDictionary:
    """Read-only ``Dictionary`` facade over the mapped term sections.

    ``decode`` slices the term blob on demand (memoized — resident strings
    are bounded by what was actually asked for, not by KB size) and
    ``lookup`` binary-searches the lexicographic permutation index.  The
    write half (``encode`` of an *unseen* term) raises ``TypeError``:
    mutation goes through :meth:`ExpandedStoreV3.materialize`, which swaps
    in a real :class:`~repro.kb.dictionary.Dictionary` with identical ids.
    """

    def __init__(self, sections: _V3Sections) -> None:
        self._sections = sections
        self._decoded: dict[int, str] = {}
        self._looked_up: dict[str, int | None] = {}

    def __len__(self) -> int:
        return self._sections.n_terms

    def __contains__(self, term: str) -> bool:
        return self.lookup(term) is not None

    def decode(self, term_id: int) -> str:
        """Term string for ``term_id``, decoded lazily off the blob."""
        cached = self._decoded.get(term_id)
        if cached is None:
            sections = self._sections
            if not 0 <= term_id < sections.n_terms:
                raise KeyError(term_id)
            cached = str(sections.term_bytes(term_id), "utf-8")
            self._decoded[term_id] = cached
        return cached

    def decode_many(self, term_ids) -> list[str]:
        decode = self.decode
        return [decode(t) for t in term_ids]

    def lookup(self, term: str) -> int | None:
        """Id of ``term`` via binary search over the byte-order permutation."""
        found = self._looked_up.get(term, _EMPTY_FROZEN)
        if found is not _EMPTY_FROZEN:
            return found
        sections = self._sections
        probe = term.encode("utf-8")
        order = sections.term_sort
        lo, hi = 0, len(order)
        while lo < hi:
            mid = (lo + hi) // 2
            if sections.term_bytes(order[mid]).tobytes() < probe:
                lo = mid + 1
            else:
                hi = mid
        found = None
        if lo < len(order):
            candidate = order[lo]
            if sections.term_bytes(candidate).tobytes() == probe:
                found = candidate
        self._looked_up[term] = found
        return found

    def encode(self, term: str) -> int:
        """Like :meth:`lookup` but raising — a mapped dictionary is frozen."""
        existing = self.lookup(term)
        if existing is None:
            raise TypeError(
                "mapped dictionary is read-only; call materialize() on the "
                "ExpandedStore before mutating it"
            )
        return existing

    def terms(self):
        decode = self.decode
        return (decode(i) for i in range(self._sections.n_terms))

    def terms_from(self, start: int):
        decode = self.decode
        return (decode(i) for i in range(start, self._sections.n_terms))


class ExpandedStoreV3(ExpandedStore):
    """An :class:`ExpandedStore` served directly from a mapped v3 artifact.

    Two modes, one object identity.  **Mapped** (after :func:`load_v3`):
    every read — ``objects``, ``paths_between``, ``paths_of``,
    ``value_count``, ``seeds_through``, scans, stats — binary-searches the
    memory-mapped sections; nothing KB-sized lives on the Python heap.
    **Materialized** (after :meth:`materialize`, triggered automatically by
    the first mutation): the ordinary dict-backed superclass takes over,
    with the same term ids and the same (file-local) path ids, so cached
    frozen views and any external id references stay valid across the flip.
    """

    def __init__(self, sections: _V3Sections) -> None:
        super().__init__(
            max_length=sections.max_length,
            dictionary=MappedDictionary(sections),
            tail_predicates=frozenset(sections.tails),
        )
        self._mapped: _V3Sections | None = sections
        n_terms = sections.n_terms
        for seed in sections.seed_ids:
            if not 0 <= seed < n_terms:
                raise ValueError(f"{sections.source_path}: term id {seed} out of range")
            self.seed_ids.add(seed)
        self._direct_paths: int | None = None

    # -- Mode management ---------------------------------------------------

    @property
    def is_mapped(self) -> bool:
        """True while lookups are answered from the mmap (no dict indexes)."""
        return self._mapped is not None

    @property
    def artifact_path(self) -> str | None:
        """The backing file while mapped (``None`` after materialization)."""
        return self._mapped.source_path if self._mapped is not None else None

    def materialize(self) -> "ExpandedStoreV3":
        """Inflate the mapping into the dict-backed form, in place.

        Term ids and path ids are preserved exactly (terms re-encoded in id
        order; path keys interned in file order, which *is* sorted order),
        so views and caches built while mapped remain valid.  Idempotent;
        returns ``self``.
        """
        sections = self._mapped
        if sections is None:
            return self
        dictionary = Dictionary()
        encode = dictionary.encode
        for term in self.dictionary.terms():
            encode(term)
        self.dictionary = dictionary
        # flip modes first: the replay below runs on superclass machinery
        self._mapped = None
        self._direct_paths = None
        path_offsets = sections.path_offsets
        path_ids = sections.path_ids
        for index in range(sections.n_paths):
            key = tuple(path_ids[path_offsets[index] : path_offsets[index + 1]])
            self.path_id(key)
        record = self.record_encoded
        keys = self._path_keys
        subject_ids = sections.subject_ids
        group_offsets = sections.group_offsets
        group_path_ids = sections.group_path_ids
        object_offsets = sections.object_offsets
        object_ids = sections.object_ids
        for index in range(sections.n_subjects):
            s_id = subject_ids[index]
            for group in range(group_offsets[index], group_offsets[index + 1]):
                key = keys[group_path_ids[group]]
                for slot in range(object_offsets[group], object_offsets[group + 1]):
                    record(s_id, key, object_ids[slot])
        note_reach = self.note_reach
        reach_nodes = sections.reach_nodes
        reach_offsets = sections.reach_offsets
        reach_seeds = sections.reach_seeds
        for index in range(sections.n_reach_nodes):
            node_id = reach_nodes[index]
            for slot in range(reach_offsets[index], reach_offsets[index + 1]):
                note_reach(node_id, reach_seeds[slot])
        sections.close()
        return self

    def close(self) -> None:
        """Release the mapping (no-op once materialized)."""
        sections = self._mapped
        if sections is not None:
            self._mapped = None
            sections.close()

    # -- Pickling: a mapped store ships as a path reference ----------------

    def __getstate__(self):
        """Mapped stores pickle as ``{artifact path}`` — the whole point.

        A frozen serving snapshot that embeds a mapped store costs bytes
        proportional to the *path string*, and every unpickling worker
        re-maps the same file — N processes, one page cache.  The artifact
        must outlive every consumer of the pickle.  A materialized store
        pickles its dicts like any other ExpandedStore.
        """
        if self._mapped is not None:
            return {"__v3_artifact__": self._mapped.source_path}
        state = self.__dict__.copy()
        state["_mapped"] = None
        return state

    def __setstate__(self, state) -> None:
        artifact = state.get("__v3_artifact__")
        if artifact is not None:
            sections = _V3Sections(artifact)
            ExpandedStoreV3.__init__(self, sections)
        else:
            self.__dict__.update(state)

    # -- Mapped search primitives ------------------------------------------

    def _subject_slot(self, s_id: int) -> int | None:
        sections = self._mapped
        ids = sections.subject_ids
        slot = bisect_left(ids, s_id, 0, sections.n_subjects)
        if slot < sections.n_subjects and ids[slot] == s_id:
            return slot
        return None

    def _group_slot(self, subject_slot: int, file_pid: int) -> int | None:
        sections = self._mapped
        lo = sections.group_offsets[subject_slot]
        hi = sections.group_offsets[subject_slot + 1]
        if not 0 <= lo <= hi <= sections.n_groups:
            raise ValueError(f"{sections.source_path}: corrupt group offsets")
        pids = sections.group_path_ids
        slot = bisect_left(pids, file_pid, lo, hi)
        if slot < hi and pids[slot] == file_pid:
            return slot
        return None

    def _object_slice(self, group_slot: int) -> memoryview:
        sections = self._mapped
        lo = sections.object_offsets[group_slot]
        hi = sections.object_offsets[group_slot + 1]
        if not 0 <= lo <= hi <= sections.n_triples:
            raise ValueError(f"{sections.source_path}: corrupt object offsets")
        return sections.object_ids[lo:hi]

    def _pair_slot(self, s_id: int, o_id: int) -> int | None:
        sections = self._mapped
        subjects = sections.pair_subjects
        objects = sections.pair_objects
        lo, hi = 0, sections.n_pairs
        while lo < hi:
            mid = (lo + hi) // 2
            if (subjects[mid], objects[mid]) < (s_id, o_id):
                lo = mid + 1
            else:
                hi = mid
        if lo < sections.n_pairs and subjects[lo] == s_id and objects[lo] == o_id:
            return lo
        return None

    def _path_key_slice(self, index: int) -> memoryview:
        sections = self._mapped
        if not 0 <= index < sections.n_paths:
            raise ValueError(f"{sections.source_path}: path id {index} out of range")
        lo = sections.path_offsets[index]
        hi = sections.path_offsets[index + 1]
        if not 0 <= lo <= hi <= sections.n_path_ids:
            raise ValueError(f"{sections.source_path}: corrupt path offsets")
        return sections.path_ids[lo:hi]

    def _check_term_id(self, term_id: int) -> int:
        if not 0 <= term_id < self._mapped.n_terms:
            raise ValueError(
                f"{self._mapped.source_path}: term id {term_id} out of range"
            )
        return term_id

    # -- Overridden id-level API -------------------------------------------

    def path_id(self, path_key: tuple[int, ...]) -> int:
        """File-local id of ``path_key`` by binary search over sorted keys."""
        if self._mapped is None:
            return super().path_id(path_key)
        existing = self._find_path_key(path_key)
        if existing is not None:
            return existing
        return self.materialize().path_id(path_key)

    def _find_path_key(self, path_key: tuple[int, ...]) -> int | None:
        """Binary search the sorted path-key section for an exact tuple."""
        sections = self._mapped
        lo, hi = 0, sections.n_paths
        while lo < hi:
            mid = (lo + hi) // 2
            if tuple(self._path_key_slice(mid)) < path_key:
                lo = mid + 1
            else:
                hi = mid
        if lo < sections.n_paths and tuple(self._path_key_slice(lo)) == path_key:
            return lo
        return None

    def _lookup_path_id(self, path: PredicatePath) -> int | None:
        if self._mapped is None:
            return super()._lookup_path_id(path)
        lookup = self.dictionary.lookup
        key: list[int] = []
        for predicate in path.predicates:
            p = lookup(predicate)
            if p is None:
                return None
            key.append(p)
        return self._find_path_key(tuple(key))

    def _decode_path(self, path_id: int) -> PredicatePath:
        if self._mapped is None:
            return super()._decode_path(path_id)
        path = self._decoded_paths.get(path_id)
        if path is None:
            decode = self.dictionary.decode
            path = PredicatePath(
                tuple(
                    decode(self._check_term_id(p))
                    for p in self._path_key_slice(path_id)
                )
            )
            self._decoded_paths[path_id] = path
        return path

    def objects_ids(self, subject_id: int, path_id: int) -> set[int] | frozenset[int]:
        """Object ids of ``(subject_id, path_id)`` as a prefix-sum slice."""
        if self._mapped is None:
            return super().objects_ids(subject_id, path_id)
        slot = self._subject_slot(subject_id)
        if slot is None:
            return _EMPTY_FROZEN
        group = self._group_slot(slot, path_id)
        if group is None:
            return _EMPTY_FROZEN
        return frozenset(self._object_slice(group))

    def record_encoded(self, subject_id, path_key, object_id) -> bool:
        if self._mapped is not None:
            self.materialize()
        return super().record_encoded(subject_id, path_key, object_id)

    def record(self, subject: str, path: PredicatePath, obj: str) -> bool:
        """Record a triple, materializing first (mapped stores are frozen)."""
        if self._mapped is not None:
            # the string boundary encodes before record_encoded runs, and
            # the mapped dictionary cannot mint ids
            self.materialize()
        return super().record(subject, path, obj)

    def note_reach(self, node_id: int, seed_id: int) -> None:
        if self._mapped is not None:
            self.materialize()
        super().note_reach(node_id, seed_id)

    def invalidate_seed(self, seed: str) -> bool:
        if self._mapped is not None:
            self.materialize()
        return super().invalidate_seed(seed)

    def merge_from(self, other: "ExpandedStore") -> int:
        if self._mapped is not None:
            self.materialize()
        return super().merge_from(other)

    def save(self, path: str | Path, format: str | None = None) -> None:
        """Serialize in any format; conversion round-trips byte-exactly."""
        # the writers walk the dict indexes; conversion goes through the
        # escape hatch (copy the file instead to duplicate a v3 artifact)
        self.materialize()
        super().save(path, format)

    # -- Overridden reach API ----------------------------------------------

    def has_reach(self) -> bool:
        if self._mapped is None:
            return super().has_reach()
        return self._mapped.n_reach_nodes > 0

    def seeds_through(self, node_id: int) -> tuple[int, ...] | set[int]:
        """Seeds whose BFS scanned ``node_id`` (reach section slice)."""
        if self._mapped is None:
            return super().seeds_through(node_id)
        sections = self._mapped
        nodes = sections.reach_nodes
        slot = bisect_left(nodes, node_id, 0, sections.n_reach_nodes)
        if slot >= sections.n_reach_nodes or nodes[slot] != node_id:
            return ()
        lo = sections.reach_offsets[slot]
        hi = sections.reach_offsets[slot + 1]
        if not 0 <= lo <= hi <= sections.n_reach_pairs:
            raise ValueError(f"{sections.source_path}: corrupt reach offsets")
        return tuple(sections.reach_seeds[lo:hi])

    def reach_items(self):
        """Iterate ``(node_id, seed_ids)`` reach pairs off the mmap."""
        if self._mapped is None:
            yield from super().reach_items()
            return
        sections = self._mapped
        for slot in range(sections.n_reach_nodes):
            node_id = sections.reach_nodes[slot]
            lo = sections.reach_offsets[slot]
            hi = sections.reach_offsets[slot + 1]
            if not 0 <= lo <= hi <= sections.n_reach_pairs:
                raise ValueError(f"{sections.source_path}: corrupt reach offsets")
            yield node_id, frozenset(sections.reach_seeds[lo:hi])

    # -- Overridden lookups ------------------------------------------------

    def objects(self, subject: str, path: PredicatePath) -> frozenset[str]:
        """``V(e, p+)`` — two binary searches + one offset slice, decoded."""
        if self._mapped is None:
            return super().objects(subject, path)
        s = self.dictionary.lookup(subject)
        if s is None:
            return _EMPTY_FROZEN
        p = self._lookup_path_id(path)
        if p is None:
            return _EMPTY_FROZEN
        key = (s, p)
        cached = self._objects_cache.get(key)
        if cached is None:
            object_ids = self.objects_ids(s, p)
            if not object_ids:
                return _EMPTY_FROZEN
            check = self._check_term_id
            cached = frozenset(
                self.dictionary.decode_many(check(o) for o in object_ids)
            )
            self._objects_cache[key] = cached
        return cached

    def paths_between(self, subject: str, obj: str) -> frozenset[PredicatePath]:
        """Paths joining ``subject`` to ``obj`` via the (s, o) pair index."""
        if self._mapped is None:
            return super().paths_between(subject, obj)
        lookup = self.dictionary.lookup
        s = lookup(subject)
        o = lookup(obj)
        if s is None or o is None:
            return _EMPTY_FROZEN
        key = (s, o)
        cached = self._pairs_cache.get(key)
        if cached is None:
            slot = self._pair_slot(s, o)
            if slot is None:
                return _EMPTY_FROZEN
            sections = self._mapped
            lo = sections.pair_offsets[slot]
            hi = sections.pair_offsets[slot + 1]
            if not 0 <= lo <= hi <= sections.n_triples:
                raise ValueError(f"{sections.source_path}: corrupt pair offsets")
            cached = frozenset(
                self._decode_path(p) for p in sections.pair_path_ids[lo:hi]
            )
            self._pairs_cache[key] = cached
        return cached

    def paths_of(self, subject: str) -> frozenset[PredicatePath]:
        """All expanded paths rooted at ``subject`` (group index slice)."""
        if self._mapped is None:
            return super().paths_of(subject)
        s = self.dictionary.lookup(subject)
        if s is None:
            return _EMPTY_FROZEN
        cached = self._paths_of_cache.get(s)
        if cached is None:
            slot = self._subject_slot(s)
            if slot is None:
                return _EMPTY_FROZEN
            sections = self._mapped
            lo = sections.group_offsets[slot]
            hi = sections.group_offsets[slot + 1]
            if not 0 <= lo <= hi <= sections.n_groups:
                raise ValueError(f"{sections.source_path}: corrupt group offsets")
            cached = frozenset(
                self._decode_path(p) for p in sections.group_path_ids[lo:hi]
            )
            self._paths_of_cache[s] = cached
        return cached

    def value_count(self, subject: str, path: PredicatePath) -> int:
        """``|V(e, p+)|`` from offset arithmetic alone — no decoding."""
        if self._mapped is None:
            return super().value_count(subject, path)
        s = self.dictionary.lookup(subject)
        if s is None:
            return 0
        p = self._lookup_path_id(path)
        if p is None:
            return 0
        slot = self._subject_slot(s)
        if slot is None:
            return 0
        group = self._group_slot(slot, p)
        if group is None:
            return 0
        return len(self._object_slice(group))

    # -- Overridden inventory ----------------------------------------------

    def __len__(self) -> int:
        if self._mapped is None:
            return super().__len__()
        return self._mapped.n_triples

    def subjects(self):
        """Decoded subjects in id order, straight off the subject index."""
        if self._mapped is None:
            yield from super().subjects()
            return
        sections = self._mapped
        decode = self.dictionary.decode
        check = self._check_term_id
        for slot in range(sections.n_subjects):
            yield decode(check(sections.subject_ids[slot]))

    def distinct_paths(self) -> set[PredicatePath]:
        if self._mapped is None:
            return super().distinct_paths()
        return {self._decode_path(p) for p in range(self._mapped.n_paths)}

    def triples_ids(self):
        """Iterate id-level ``(s, path_key, o)`` rows without decoding."""
        if self._mapped is None:
            yield from super().triples_ids()
            return
        sections = self._mapped
        for slot in range(sections.n_subjects):
            s_id = sections.subject_ids[slot]
            lo = sections.group_offsets[slot]
            hi = sections.group_offsets[slot + 1]
            if not 0 <= lo <= hi <= sections.n_groups:
                raise ValueError(f"{sections.source_path}: corrupt group offsets")
            for group in range(lo, hi):
                file_pid = sections.group_path_ids[group]
                for o_id in self._object_slice(group):
                    yield s_id, file_pid, o_id

    def triples(self):
        """Iterate decoded ``(subject, path, object)`` triples."""
        if self._mapped is None:
            yield from super().triples()
            return
        decode = self.dictionary.decode
        check = self._check_term_id
        for s_id, file_pid, o_id in self.triples_ids():
            yield decode(check(s_id)), self._decode_path(file_pid), decode(check(o_id))

    def stats(self) -> dict[str, int]:
        """Inventory counts read from the header — no section walk."""
        if self._mapped is None:
            return super().stats()
        sections = self._mapped
        n_direct = self._direct_paths
        if n_direct is None:
            offsets = sections.path_offsets
            n_direct = sum(
                1
                for index in range(sections.n_paths)
                if offsets[index + 1] - offsets[index] == 1
            )
            self._direct_paths = n_direct
        return {
            "spo_triples": sections.n_triples,
            "subjects": sections.n_subjects,
            "paths": sections.n_paths,
            "direct_paths": n_direct,
            "expanded_paths": sections.n_paths - n_direct,
        }

    # -- Integrity sweep ---------------------------------------------------

    def verify(self) -> None:
        """Full artifact integrity sweep; raises :class:`ValueError`.

        Checks everything the O(1) load deliberately trusts: offset-table
        monotonicity and bounds, strict sort order of every binary-search
        index (term permutation, path keys, subject / pair / reach arrays,
        per-group object sets), id ranges, and that the pair index is
        consistent with the triple sections.  Cost is one pass over the
        mapped arrays (no Python-object materialization); ``kbqa expand
        --load`` runs this on every v3 artifact, the serve path does not.
        No-op once materialized (the loaders validated on the way in).
        """
        sections = self._mapped
        if sections is None:
            return
        src = sections.source_path
        n_terms = sections.n_terms

        def check_sorted_ids(ids: memoryview, lo: int, hi: int, what: str) -> None:
            previous = -1
            for slot in range(lo, hi):
                value = ids[slot]
                if value >= n_terms:
                    raise ValueError(f"{src}: term id {value} out of range ({what})")
                if value <= previous:
                    raise ValueError(f"{src}: unsorted {what} index")
                previous = value

        def check_offsets(offsets: memoryview, total: int, what: str) -> None:
            if offsets[0] != 0 or offsets[len(offsets) - 1] != total:
                raise ValueError(f"{src}: corrupt {what} offsets")
            for index in range(len(offsets) - 1):
                if offsets[index] > offsets[index + 1]:
                    raise ValueError(f"{src}: corrupt {what} offsets")

        # dictionary: offsets monotonic, permutation strictly byte-ordered
        check_offsets(sections.term_offsets, len(sections.terms_blob), "dictionary")
        previous_bytes = None
        for slot in range(n_terms):
            term_id = sections.term_sort[slot]
            if term_id >= n_terms:
                raise ValueError(f"{src}: term id {term_id} out of range (termsort)")
            current = sections.term_bytes(term_id).tobytes()
            if previous_bytes is not None and current <= previous_bytes:
                raise ValueError(f"{src}: unsorted term permutation index")
            previous_bytes = current
        check_sorted_ids(sections.seed_ids, 0, len(sections.seed_ids), "seed")
        # paths: offsets monotonic, ids in range, keys strictly tuple-sorted
        check_offsets(sections.path_offsets, sections.n_path_ids, "path")
        for value in sections.path_ids:
            if value >= n_terms:
                raise ValueError(f"{src}: term id {value} out of range (path)")
        previous_key: tuple[int, ...] | None = None
        for index in range(sections.n_paths):
            key = tuple(self._path_key_slice(index))
            if previous_key is not None and key <= previous_key:
                raise ValueError(f"{src}: unsorted path-key index")
            previous_key = key
        # triples: subjects sorted, offsets chain, groups/objects sorted
        check_sorted_ids(sections.subject_ids, 0, sections.n_subjects, "subject")
        check_offsets(sections.group_offsets, sections.n_groups, "group")
        check_offsets(sections.object_offsets, sections.n_triples, "object")
        for slot in range(sections.n_subjects):
            previous = -1
            for group in range(
                sections.group_offsets[slot], sections.group_offsets[slot + 1]
            ):
                pid = sections.group_path_ids[group]
                if pid >= sections.n_paths:
                    raise ValueError(f"{src}: path id {pid} out of range (group)")
                if pid <= previous:
                    raise ValueError(f"{src}: unsorted group path-id index")
                previous = pid
                check_sorted_ids(
                    sections.object_ids,
                    sections.object_offsets[group],
                    sections.object_offsets[group + 1],
                    "object",
                )
        # pair index: strictly (s, o)-sorted, per-pair paths sorted, and
        # globally consistent with the triple sections (same triple set)
        check_offsets(sections.pair_offsets, sections.n_triples, "pair")
        previous_pair: tuple[int, int] | None = None
        pair_triples = 0
        for slot in range(sections.n_pairs):
            s_id = sections.pair_subjects[slot]
            o_id = sections.pair_objects[slot]
            if s_id >= n_terms or o_id >= n_terms:
                raise ValueError(f"{src}: term id out of range (pair)")
            pair = (s_id, o_id)
            if previous_pair is not None and pair <= previous_pair:
                raise ValueError(f"{src}: unsorted pair index")
            previous_pair = pair
            previous = -1
            for entry in range(
                sections.pair_offsets[slot], sections.pair_offsets[slot + 1]
            ):
                pid = sections.pair_path_ids[entry]
                if pid >= sections.n_paths:
                    raise ValueError(f"{src}: path id {pid} out of range (pair)")
                if pid <= previous:
                    raise ValueError(f"{src}: unsorted pair path-id index")
                previous = pid
                slot_subject = self._subject_slot(s_id)
                group = (
                    None if slot_subject is None else self._group_slot(slot_subject, pid)
                )
                if group is None or o_id not in set(self._object_slice(group)):
                    raise ValueError(
                        f"{src}: pair index references a missing triple "
                        f"({s_id}, path {pid}, {o_id})"
                    )
                pair_triples += 1
        if pair_triples != sections.n_triples:
            raise ValueError(
                f"{src}: pair index covers {pair_triples} triples, "
                f"header declares {sections.n_triples}"
            )
        # reach: nodes sorted, offsets chain, per-node seeds sorted
        check_sorted_ids(sections.reach_nodes, 0, sections.n_reach_nodes, "reach-node")
        check_offsets(sections.reach_offsets, sections.n_reach_pairs, "reach")
        for slot in range(sections.n_reach_nodes):
            check_sorted_ids(
                sections.reach_seeds,
                sections.reach_offsets[slot],
                sections.reach_offsets[slot + 1],
                "reach-seed",
            )


def load_v3(path: str | Path) -> ExpandedStoreV3:
    """Map a v3 artifact — O(1) in KB size, no dict materialization.

    Raises :class:`ValueError` on a bad magic, an unsupported version, or a
    file whose size disagrees with the header (truncation / trailing bytes).
    Deeper integrity (sort order of the index sections, offset chains, id
    ranges) is enforced by bounds checks on every lookup and by the explicit
    :meth:`ExpandedStoreV3.verify` sweep.
    """
    return ExpandedStoreV3(_V3Sections(path))


def is_v3_file(path: str | Path) -> bool:
    """True when ``path`` starts with the v3 magic (format sniffing)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(EXPANSION_V3_MAGIC)) == EXPANSION_V3_MAGIC
    except OSError:
        return False
