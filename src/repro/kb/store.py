"""In-memory dictionary-encoded triple store.

Maintains three index orderings so every single-variable lookup the KBQA
pipeline performs is a hash probe:

* ``SPO`` — ``subject -> predicate -> {objects}`` for ``V(e, p)`` (Eq 6);
* ``POS`` — ``predicate -> object -> {subjects}`` for reverse lookups and the
  bootstrapping baseline;
* ``OSP`` — ``object -> subject -> {predicates}`` for
  ``predicates_between(e, v)``, the pruning step of the EM M-step (Eq 24).

The public API speaks term strings.  The hot paths (the Sec 6.2 expansion
scan, the benchmark harness) additionally get an *id-level* API —
``objects_ids``, ``triples_ids``, ``spo_items_ids`` — that exposes the
dictionary-encoded indexes directly so per-row string materialization can be
skipped entirely; callers treat the returned containers as read-only views.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.kb.dictionary import Dictionary
from repro.kb.triple import Triple, is_literal


class TripleStore:
    """A set of RDF triples with SPO/POS/OSP hash indexes.

    >>> kb = TripleStore()
    >>> kb.add("m.obama", "dob", '"1961"')
    True
    >>> sorted(kb.objects("m.obama", "dob"))
    ['"1961"']
    """

    def __init__(self) -> None:
        self.dictionary = Dictionary()
        self._spo: dict[int, dict[int, set[int]]] = defaultdict(dict)
        self._pos: dict[int, dict[int, set[int]]] = defaultdict(dict)
        self._osp: dict[int, dict[int, set[int]]] = defaultdict(dict)
        self._size = 0
        # Resource count, kept current by scanning only the dictionary tail
        # added since the last reconcile — dictionary ids are dense and
        # append-only, so this is O(1) amortized per add and correct even
        # when terms are interned through a shared dictionary (e.g. by an
        # ExpandedStore) rather than through ``add``.
        self._n_resources = 0
        self._n_terms_counted = 0

    # -- Mutation ----------------------------------------------------------

    def _reconcile_resources(self) -> None:
        """Fold dictionary terms added since the last call into the count."""
        n_terms = len(self.dictionary)
        if n_terms == self._n_terms_counted:
            return
        for term in self.dictionary.terms_from(self._n_terms_counted):
            if not is_literal(term):
                self._n_resources += 1
        self._n_terms_counted = n_terms

    def add(self, subject: str, predicate: str, obj: str) -> bool:
        """Insert a triple; returns False if it was already present."""
        encode = self.dictionary.encode
        s = encode(subject)
        p = encode(predicate)
        o = encode(obj)
        objects = self._spo[s].setdefault(p, set())
        if o in objects:
            return False
        objects.add(o)
        self._pos[p].setdefault(o, set()).add(s)
        self._osp[o].setdefault(s, set()).add(p)
        self._size += 1
        return True

    def add_triple(self, triple: Triple) -> bool:
        return self.add(triple.subject, triple.predicate, triple.object)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns how many were new."""
        return sum(1 for t in triples if self.add_triple(t))

    # -- Point lookups -------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        return self.has(triple.subject, triple.predicate, triple.object)

    def has(self, subject: str, predicate: str, obj: str) -> bool:
        """Point membership test for one triple."""
        s = self.dictionary.lookup(subject)
        p = self.dictionary.lookup(predicate)
        o = self.dictionary.lookup(obj)
        if s is None or p is None or o is None:
            return False
        return o in self._spo.get(s, {}).get(p, ())

    def objects(self, subject: str, predicate: str) -> set[str]:
        """``V(e, p)`` — all objects for a (subject, predicate) pair."""
        s = self.dictionary.lookup(subject)
        p = self.dictionary.lookup(predicate)
        if s is None or p is None:
            return set()
        decode = self.dictionary.decode
        return {decode(o) for o in self._spo.get(s, {}).get(p, ())}

    def subjects(self, predicate: str, obj: str) -> set[str]:
        """All subjects s with (s, predicate, obj) in the store."""
        p = self.dictionary.lookup(predicate)
        o = self.dictionary.lookup(obj)
        if p is None or o is None:
            return set()
        decode = self.dictionary.decode
        return {decode(s) for s in self._pos.get(p, {}).get(o, ())}

    def predicates_between(self, subject: str, obj: str) -> set[str]:
        """All direct predicates p with (subject, p, obj) in the store."""
        s = self.dictionary.lookup(subject)
        o = self.dictionary.lookup(obj)
        if s is None or o is None:
            return set()
        decode = self.dictionary.decode
        return {decode(p) for p in self._osp.get(o, {}).get(s, ())}

    def predicates_of(self, subject: str) -> set[str]:
        """All predicates leaving ``subject``."""
        s = self.dictionary.lookup(subject)
        if s is None:
            return set()
        decode = self.dictionary.decode
        return {decode(p) for p in self._spo.get(s, ())}

    def out_degree(self, subject: str) -> int:
        """Number of triples with ``subject`` as the subject (entity frequency
        in the sense of Sec 6.3)."""
        s = self.dictionary.lookup(subject)
        if s is None:
            return 0
        return sum(len(objs) for objs in self._spo.get(s, {}).values())

    def has_subject(self, subject: str) -> bool:
        s = self.dictionary.lookup(subject)
        return s is not None and s in self._spo

    # -- Id-level API (hot paths) ------------------------------------------
    #
    # These methods hand out the dictionary-encoded indexes without decoding
    # a single term.  Returned dicts/sets are the live internal structures:
    # callers must treat them as read-only views.

    def lookup_id(self, term: str) -> int | None:
        """Dictionary id of ``term`` (None when never interned)."""
        return self.dictionary.lookup(term)

    def decode_id(self, term_id: int) -> str:
        """Term string for a dictionary id."""
        return self.dictionary.decode(term_id)

    def has_subject_id(self, subject_id: int) -> bool:
        """True when ``subject_id`` occurs in subject position."""
        return subject_id in self._spo

    def objects_ids(self, subject_id: int, predicate_id: int) -> set[int] | frozenset[int]:
        """``V(e, p)`` as object ids (read-only view; empty on absence is a
        frozenset so accidental mutation raises instead of corrupting)."""
        return self._spo.get(subject_id, {}).get(predicate_id, _EMPTY_ID_SET)

    def predicates_ids_of(self, subject_id: int):
        """Ids of predicates leaving ``subject_id`` (read-only view)."""
        return self._spo.get(subject_id, {}).keys()

    def triples_ids(self) -> Iterator[tuple[int, int, int]]:
        """Scan all triples as ``(s_id, p_id, o_id)`` — the id-native
        analogue of :meth:`triples`, with zero string materialization."""
        for s, by_predicate in self._spo.items():
            for p, objects in by_predicate.items():
                for o in objects:
                    yield s, p, o

    def spo_items_ids(self) -> Iterator[tuple[int, dict[int, set[int]]]]:
        """Grouped id-keyed scan: ``(s_id, {p_id: {o_id}})`` per subject.

        This is the shape the Sec 6.2 index+scan+join wants: one frontier
        probe per *subject group* instead of one per triple.
        """
        return iter(self._spo.items())

    # -- Scans ---------------------------------------------------------------

    def triples(self) -> Iterator[Triple]:
        """Scan all triples in subject id order (the disk-scan analogue the
        expansion algorithm of Sec 6.2 relies on)."""
        decode = self.dictionary.decode
        for s, by_predicate in self._spo.items():
            subject = decode(s)
            for p, objects in by_predicate.items():
                predicate = decode(p)
                for o in objects:
                    yield Triple(subject, predicate, decode(o))

    def subjects_iter(self) -> Iterator[str]:
        """All distinct subjects."""
        decode = self.dictionary.decode
        return (decode(s) for s in self._spo)

    def predicates(self) -> set[str]:
        """All distinct predicates in the store."""
        decode = self.dictionary.decode
        return {decode(p) for p in self._pos}

    # -- Statistics ------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Store-level counts used by benchmark headers and DESIGN checks.

        ``resources`` is maintained incrementally (only dictionary terms
        added since the previous call are visited), so this is O(1)
        amortized rather than a full dictionary scan per call.
        """
        self._reconcile_resources()
        return {
            "triples": self._size,
            "terms": len(self.dictionary),
            "resources": self._n_resources,
            "predicates": len(self._pos),
            "subjects": len(self._spo),
        }


_EMPTY_ID_SET: frozenset[int] = frozenset()
