"""In-memory dictionary-encoded triple store.

Maintains three index orderings so every single-variable lookup the KBQA
pipeline performs is a hash probe:

* ``SPO`` — ``subject -> predicate -> {objects}`` for ``V(e, p)`` (Eq 6);
* ``POS`` — ``predicate -> object -> {subjects}`` for reverse lookups and the
  bootstrapping baseline;
* ``OSP`` — ``object -> subject -> {predicates}`` for
  ``predicates_between(e, v)``, the pruning step of the EM M-step (Eq 24).

The public API speaks term strings.  The hot paths (the Sec 6.2 expansion
scan, the benchmark harness) additionally get an *id-level* API —
``objects_ids``, ``triples_ids``, ``spo_items_ids`` — that exposes the
dictionary-encoded indexes directly so per-row string materialization can be
skipped entirely; callers treat the returned containers as read-only views.

:class:`TripleStore` is the single-store implementation of the
:class:`~repro.kb.backend.KBBackend` protocol: it supports live ``add`` /
``delete`` with :class:`~repro.kb.backend.KBChange` notification and serves
the sharding face as one shard (``n_shards == 1``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.kb.backend import ADD, DELETE, BackendBase, KBChange
from repro.kb.dictionary import Dictionary
from repro.kb.triple import Triple


class TripleStore(BackendBase):
    """A set of RDF triples with SPO/POS/OSP hash indexes.

    Change-listener and resource-count plumbing comes from
    :class:`~repro.kb.backend.BackendBase` (shared with the sharded store).

    >>> kb = TripleStore()
    >>> kb.add("m.obama", "dob", '"1961"')
    True
    >>> sorted(kb.objects("m.obama", "dob"))
    ['"1961"']
    """

    def __init__(self) -> None:
        self.dictionary = Dictionary()
        self._spo: dict[int, dict[int, set[int]]] = defaultdict(dict)
        self._pos: dict[int, dict[int, set[int]]] = defaultdict(dict)
        self._osp: dict[int, dict[int, set[int]]] = defaultdict(dict)
        self._size = 0
        self._init_backend_state()

    # -- Mutation ----------------------------------------------------------

    def add(self, subject: str, predicate: str, obj: str) -> bool:
        """Insert a triple; returns False if it was already present."""
        encode = self.dictionary.encode
        s = encode(subject)
        p = encode(predicate)
        o = encode(obj)
        objects = self._spo[s].setdefault(p, set())
        if o in objects:
            return False
        objects.add(o)
        self._pos[p].setdefault(o, set()).add(s)
        self._osp[o].setdefault(s, set()).add(p)
        self._size += 1
        if self._listeners:
            self._notify(KBChange(ADD, s, p, o))
        return True

    def add_triple(self, triple: Triple) -> bool:
        return self.add(triple.subject, triple.predicate, triple.object)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns how many were new."""
        return sum(1 for t in triples if self.add_triple(t))

    def delete(self, subject: str, predicate: str, obj: str) -> bool:
        """Remove a triple; returns False if it was not present.

        Empty index sub-maps are pruned so ``has_subject`` and the scan
        methods never see ghost subjects.  Dictionary ids are never reclaimed
        (ids are dense and append-only), so the ``resources`` stat does not
        decrease on delete.
        """
        s = self.dictionary.lookup(subject)
        p = self.dictionary.lookup(predicate)
        o = self.dictionary.lookup(obj)
        if s is None or p is None or o is None:
            return False
        by_predicate = self._spo.get(s)
        objects = by_predicate.get(p) if by_predicate else None
        if not objects or o not in objects:
            return False
        objects.remove(o)
        if not objects:
            del by_predicate[p]
            if not by_predicate:
                del self._spo[s]
        subjects = self._pos[p][o]
        subjects.remove(s)
        if not subjects:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        predicates = self._osp[o][s]
        predicates.remove(p)
        if not predicates:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
        self._size -= 1
        if self._listeners:
            self._notify(KBChange(DELETE, s, p, o))
        return True

    # -- Point lookups -------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        return self.has(triple.subject, triple.predicate, triple.object)

    def has(self, subject: str, predicate: str, obj: str) -> bool:
        """Point membership test for one triple."""
        s = self.dictionary.lookup(subject)
        p = self.dictionary.lookup(predicate)
        o = self.dictionary.lookup(obj)
        if s is None or p is None or o is None:
            return False
        return o in self._spo.get(s, {}).get(p, ())

    def objects(self, subject: str, predicate: str) -> set[str]:
        """``V(e, p)`` — all objects for a (subject, predicate) pair."""
        s = self.dictionary.lookup(subject)
        p = self.dictionary.lookup(predicate)
        if s is None or p is None:
            return set()
        decode = self.dictionary.decode
        return {decode(o) for o in self._spo.get(s, {}).get(p, ())}

    def subjects(self, predicate: str, obj: str) -> set[str]:
        """All subjects s with (s, predicate, obj) in the store."""
        p = self.dictionary.lookup(predicate)
        o = self.dictionary.lookup(obj)
        if p is None or o is None:
            return set()
        decode = self.dictionary.decode
        return {decode(s) for s in self._pos.get(p, {}).get(o, ())}

    def predicates_between(self, subject: str, obj: str) -> set[str]:
        """All direct predicates p with (subject, p, obj) in the store."""
        s = self.dictionary.lookup(subject)
        o = self.dictionary.lookup(obj)
        if s is None or o is None:
            return set()
        decode = self.dictionary.decode
        return {decode(p) for p in self._osp.get(o, {}).get(s, ())}

    def predicates_of(self, subject: str) -> set[str]:
        """All predicates leaving ``subject``."""
        s = self.dictionary.lookup(subject)
        if s is None:
            return set()
        decode = self.dictionary.decode
        return {decode(p) for p in self._spo.get(s, ())}

    def out_degree(self, subject: str) -> int:
        """Number of triples with ``subject`` as the subject (entity frequency
        in the sense of Sec 6.3)."""
        s = self.dictionary.lookup(subject)
        if s is None:
            return 0
        return sum(len(objs) for objs in self._spo.get(s, {}).values())

    def has_subject(self, subject: str) -> bool:
        s = self.dictionary.lookup(subject)
        return s is not None and s in self._spo

    # -- Id-level API (hot paths) ------------------------------------------
    #
    # These methods hand out the dictionary-encoded indexes without decoding
    # a single term.  Returned dicts/sets are the live internal structures:
    # callers must treat them as read-only views.

    def lookup_id(self, term: str) -> int | None:
        """Dictionary id of ``term`` (None when never interned)."""
        return self.dictionary.lookup(term)

    def decode_id(self, term_id: int) -> str:
        """Term string for a dictionary id."""
        return self.dictionary.decode(term_id)

    def has_subject_id(self, subject_id: int) -> bool:
        """True when ``subject_id`` occurs in subject position."""
        return subject_id in self._spo

    def objects_ids(self, subject_id: int, predicate_id: int) -> set[int] | frozenset[int]:
        """``V(e, p)`` as object ids (read-only view; empty on absence is a
        frozenset so accidental mutation raises instead of corrupting)."""
        return self._spo.get(subject_id, {}).get(predicate_id, _EMPTY_ID_SET)

    def predicates_ids_of(self, subject_id: int):
        """Ids of predicates leaving ``subject_id`` (read-only view)."""
        return self._spo.get(subject_id, {}).keys()

    def triples_ids(self) -> Iterator[tuple[int, int, int]]:
        """Scan all triples as ``(s_id, p_id, o_id)`` — the id-native
        analogue of :meth:`triples`, with zero string materialization."""
        for s, by_predicate in self._spo.items():
            for p, objects in by_predicate.items():
                for o in objects:
                    yield s, p, o

    def spo_items_ids(self) -> Iterator[tuple[int, dict[int, set[int]]]]:
        """Grouped id-keyed scan: ``(s_id, {p_id: {o_id}})`` per subject.

        This is the shape the Sec 6.2 index+scan+join wants: one frontier
        probe per *subject group* instead of one per triple.
        """
        return iter(self._spo.items())

    # -- Sharding face (a single store is one shard) -----------------------

    @property
    def n_shards(self) -> int:
        """A plain :class:`TripleStore` is a single subject partition."""
        return 1

    def shard_spo_items_ids(self, shard: int) -> Iterator[tuple[int, dict[int, set[int]]]]:
        """Grouped id-keyed scan of one shard (shard 0 is the whole store)."""
        if shard != 0:
            raise IndexError(f"TripleStore has 1 shard, got shard index {shard}")
        return iter(self._spo.items())

    def shard_table(self, shard: int) -> dict[int, dict[int, set[int]]]:
        """The whole SPO table (shard 0 is the whole store; read-only view)."""
        if shard != 0:
            raise IndexError(f"TripleStore has 1 shard, got shard index {shard}")
        return self._spo

    # -- Scans ---------------------------------------------------------------

    def triples(self) -> Iterator[Triple]:
        """Scan all triples in subject id order (the disk-scan analogue the
        expansion algorithm of Sec 6.2 relies on)."""
        decode = self.dictionary.decode
        for s, by_predicate in self._spo.items():
            subject = decode(s)
            for p, objects in by_predicate.items():
                predicate = decode(p)
                for o in objects:
                    yield Triple(subject, predicate, decode(o))

    def subjects_iter(self) -> Iterator[str]:
        """All distinct subjects."""
        decode = self.dictionary.decode
        return (decode(s) for s in self._spo)

    def predicates(self) -> set[str]:
        """All distinct predicates in the store."""
        decode = self.dictionary.decode
        return {decode(p) for p in self._pos}

    # -- Statistics ------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Store-level counts used by benchmark headers and DESIGN checks.

        ``resources`` is maintained incrementally (only dictionary terms
        added since the previous call are visited), so this is O(1)
        amortized rather than a full dictionary scan per call.
        """
        self._reconcile_resources()
        return {
            "triples": self._size,
            "terms": len(self.dictionary),
            "resources": self._n_resources,
            "predicates": len(self._pos),
            "subjects": len(self._spo),
        }


_EMPTY_ID_SET: frozenset[int] = frozenset()
