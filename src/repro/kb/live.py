"""Live KB updates — incremental expansion maintenance.

The ROADMAP's incremental-update item: a live ``add``/``delete`` on the KB
backend must flow into the expansion layer as *per-seed invalidation plus a
targeted single-seed re-expansion*, never a full re-run of the Sec 6.2 scan.

The mechanism is the reach-provenance index :class:`ExpandedStore` records
during expansion (node -> seeds whose BFS scanned that node): an edge change
under subject ``s`` can only alter expanded triples of (a) seeds whose BFS
scanned ``s`` and (b) ``s`` itself when it is a seed.  The maintainer
subscribes to the backend's :class:`~repro.kb.backend.KBChange` stream,
resolves that affected-seed set per change, invalidates exactly those seeds'
materialized rows (:meth:`ExpandedStore.invalidate_seed`) and re-expands each
one alone — cost ``O(k * |K|)`` per affected seed versus ``O(k * |K|)``
times *all* seeds for a full rebuild, and zero when the edit touches no
seed's reach (the common case for feed-style inserts).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.kb.backend import KBBackend, KBChange
from repro.kb.expansion import ExpandedStore, compute_reach, expand_predicates


class LiveExpansionMaintainer:
    """Keeps an :class:`ExpandedStore` consistent under live KB edits.

    Subscribe-and-forget: construction registers a change listener on the
    backend; every subsequent ``add``/``delete`` triggers the minimal set of
    single-seed refreshes.  ``on_invalidate`` (when given) fires once per
    change that actually invalidated something — the serving layer hooks its
    answer-cache clear there.
    """

    def __init__(
        self,
        backend: KBBackend,
        expanded: ExpandedStore,
        seeds: Iterable[str],
        on_invalidate: Callable[[], None] | None = None,
    ) -> None:
        self.backend = backend
        self.expanded = expanded
        self.seeds = frozenset(seeds)
        self.on_invalidate = on_invalidate
        self.events_seen = 0
        self.seeds_refreshed = 0
        # The reach index must reflect *pre-change* reachability (a delete's
        # affected seeds are found through edges that may no longer exist),
        # so build it now — before the first mutation can arrive.  Expansions
        # built with record_reach=True (or loaded artifacts carrying reach)
        # skip this.
        if not expanded.has_reach():
            decode = expanded.dictionary.decode
            reach_seeds = self.seeds | {decode(s) for s in expanded.seed_ids}
            compute_reach(backend, expanded, reach_seeds)
        self._unsubscribe = backend.subscribe(self._on_change, self._on_changes)

    def close(self) -> None:
        """Detach from the backend's change stream."""
        self._unsubscribe()

    # -- Change handling ---------------------------------------------------

    def affected_seeds(self, change: KBChange) -> list[str]:
        """Seed terms whose expansion the change can influence, sorted.

        An edge mutation only matters through its *subject*: expansion
        traverses out-edges, so the affected seeds are those whose BFS
        scanned the subject node (reach provenance), plus the subject itself
        when it is a registered seed (it may gain its first triples from an
        ``add``, or lose its last from a ``delete``).
        """
        subject = self.backend.decode_id(change.subject_id)
        affected: set[str] = set()
        node_id = self.expanded.dictionary.lookup(subject)
        if node_id is not None:
            decode = self.expanded.dictionary.decode
            for seed_id in self.expanded.seeds_through(node_id):
                affected.add(decode(seed_id))
        if subject in self.seeds:
            affected.add(subject)
        return sorted(affected)

    def _on_change(self, change: KBChange) -> None:
        """Backend listener: refresh every affected seed, then notify."""
        self.events_seen += 1
        affected = self.affected_seeds(change)
        if not affected:
            return
        for seed in affected:
            self.refresh_seed(seed)
        if self.on_invalidate is not None:
            self.on_invalidate()

    def _on_changes(self, changes: tuple[KBChange, ...]) -> None:
        """Coalesced handler for a ``backend.batch()`` burst.

        The affected-seed sets of every change in the burst are unioned
        *before* any refresh, so a bulk load triggers exactly one rebuild
        per affected seed rather than one per change.  Computing the union
        against the pre-burst reach index is sound because each refresh runs
        after *all* mutations are applied: a seed pulled in by any one
        change re-expands against the final state of the KB, picking up
        edges the other changes created along the way.
        """
        self.events_seen += len(changes)
        affected: set[str] = set()
        for change in changes:
            affected.update(self.affected_seeds(change))
        if not affected:
            return
        for seed in sorted(affected):
            self.refresh_seed(seed)
        if self.on_invalidate is not None:
            self.on_invalidate()

    def refresh_seed(self, seed: str) -> None:
        """Invalidate and rebuild one seed's expanded triples in place.

        The rebuild is a single-seed Sec 6.2 expansion over the backend.
        When the expanded store shares the backend's dictionary (the
        trained-in-process case) it expands directly ``into=`` the store —
        pure id-level writes, zero string materialization.  A loaded
        artifact carries its own dictionary, so that case expands into a
        fresh store and merges back string-level.
        """
        self.expanded.invalidate_seed(seed)
        # Single-seed refreshes pin the serial backend regardless of the
        # KBQA_EXEC environment: one seed's BFS is far too small to amortize
        # a pool, and refreshes run inside change-listener callbacks — often
        # on serving executor threads, where forking a process pool per
        # refresh would be both slow and fork-unsafe.
        if self.expanded.dictionary is self.backend.dictionary:
            expand_predicates(
                self.backend,
                [seed],
                max_length=self.expanded.max_length,
                tail_predicates=self.expanded.tail_predicates,
                into=self.expanded,
                record_reach=True,
                executor="serial",
            )
        else:
            fresh = expand_predicates(
                self.backend,
                [seed],
                max_length=self.expanded.max_length,
                tail_predicates=self.expanded.tail_predicates,
                record_reach=True,
                executor="serial",
            )
            self.expanded.merge_from(fresh)
        self.seeds_refreshed += 1
