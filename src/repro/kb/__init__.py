"""RDF knowledge-base substrate.

The paper runs on Trinity.RDF over billion-triple graphs; this package
provides the equivalent functionality at library scale: a dictionary-encoded
in-memory triple store with subject/predicate/object orderings, predicate
paths (the paper's *expanded predicates*), a scan-based multi-source BFS that
mirrors the memory-efficient generation of Sec 6.2, and a plain-text
serialization format.
"""

from repro.kb.backend import BACKEND_KINDS, KBBackend, KBChange, resolve_backend
from repro.kb.dictionary import Dictionary
from repro.kb.triple import Triple, is_literal, make_literal, literal_value
from repro.kb.store import TripleStore
from repro.kb.sharded import ShardedTripleStore
from repro.kb.disk import DiskTripleStore
from repro.kb.paths import PredicatePath
from repro.kb.expansion import ExpandedStore, expand_predicates
from repro.kb.live import LiveExpansionMaintainer
from repro.kb.query import select, solve
from repro.kb.rdf_io import load_ntriples, save_ntriples

__all__ = [
    "BACKEND_KINDS",
    "Dictionary",
    "DiskTripleStore",
    "KBBackend",
    "KBChange",
    "LiveExpansionMaintainer",
    "ShardedTripleStore",
    "Triple",
    "TripleStore",
    "PredicatePath",
    "ExpandedStore",
    "expand_predicates",
    "is_literal",
    "make_literal",
    "literal_value",
    "load_ntriples",
    "resolve_backend",
    "save_ntriples",
    "solve",
    "select",
]
