"""Persistent, reusable executor pools — warm workers across calls.

PR 4 built an executor *per expansion call*: every ``expand_predicates``
on a process backend paid pool start (N ``fork``/``spawn``\\ s) plus a
per-worker pickle of the shard tables, which is exactly why the
``proc_sweep`` bench recorded overhead instead of scaling.  An
:class:`ExecutorPool` amortizes both:

* the underlying :class:`~repro.exec.backend.Executor` is built lazily on
  first use and **reused** by every subsequent call until :meth:`close` —
  repeated expansions and serving batches land on already-warm workers;
* bulk payloads (encoded shard tables, frozen serving snapshots) are
  *published* into shared memory (`repro.exec.shm`) instead of shipped per
  worker or per task: :meth:`publish` caches one
  :class:`~repro.exec.shm.PublishedBlob` per key per *generation*, so a
  payload crosses the process boundary once per change, not once per call.

The generation counter is the pool's invalidation protocol: owners bump it
(:meth:`invalidate`) when the state behind a published payload mutates —
``KBQA`` wires its KB change stream here — and the next :meth:`publish`
for that key republishes into a fresh segment while unlinking the stale
one.  Workers attach segments by name, so they observe republication
naturally (new tasks carry the new name).

Lifecycle: the pool is owned by a long-lived object (``KBQA`` /
``KBQAServer``), closed with it, and safe to reuse after :meth:`close`
(the next call simply starts a fresh executor) — so a closed system's pool
never strands workers, and a restarted server does not need a new pool.

Supervision: a SIGKILL'd (or OOM-killed) worker breaks the whole underlying
``ProcessPoolExecutor`` — every in-flight and subsequent call raises
``BrokenProcessPool``.  The pool absorbs that: :meth:`respawn` retires the
broken executor (published shared-memory payloads survive — this process,
the publisher, did not die) and the next lease starts fresh workers;
:meth:`run` is the supervised ``map`` that does the
detect/respawn/retry dance itself with a bounded retry budget, so callers
like the expansion scan never see a crash a respawn can absorb.  Each pool
start also sweeps ``kbqa-*`` shared-memory segments orphaned by *previous*
crashed runs (:func:`repro.exec.shm.sweep_orphans`), so leaked segments
never rely solely on atexit hooks that a SIGKILL skips.
"""

from __future__ import annotations

import threading
from concurrent.futures import BrokenExecutor
from typing import Callable, Sequence

from repro.exec.backend import (
    Executor,
    make_executor,
    resolve_exec_kind,
    resolve_workers,
)
from repro.exec.shm import PublishedBlob, sweep_orphans


class ExecutorPool:
    """A lazily-started, persistent executor plus its published payloads.

    ``kind``/``workers`` resolve once at construction (explicit argument >
    ``KBQA_EXEC``/``KBQA_WORKERS`` environment > ``default``), so every
    lease sees the same backend.  Thread-safe: leases, publishes and
    invalidations may come from the event loop, worker threads and change
    listeners concurrently.
    """

    def __init__(
        self,
        kind: str | None = None,
        workers: int | None = None,
        *,
        default: str = "serial",
    ) -> None:
        self.kind = resolve_exec_kind(kind, default=default)
        self.workers = 1 if self.kind == "serial" else resolve_workers(workers)
        self._executor: Executor | None = None
        self._generation = 0
        # key -> (generation, blob) for the current generation's publishes
        self._published: dict[str, tuple[int, PublishedBlob]] = {}
        # key -> the previous publish, kept attachable for one republication
        # (a grace window for tasks already in flight against it)
        self._retired: dict[str, PublishedBlob] = {}
        self._lock = threading.Lock()
        self.starts = 0  # executors actually built (pool-start events)
        self.leases = 0  # executor() calls served
        self.publishes = 0  # shared-memory publications (republish events)
        self.respawns = 0  # broken executors retired by supervision
        self.swept = 0  # orphaned kbqa-* segments reclaimed at pool starts

    # -- Executor lease ----------------------------------------------------

    def executor(self) -> Executor:
        """The live executor, building it on first use (warm thereafter)."""
        with self._lock:
            self.leases += 1
            if self._executor is None:
                # reclaim segments leaked by prior crashed runs before
                # spending fresh ones (atexit never runs under SIGKILL)
                self.swept += len(sweep_orphans())
                self._executor = make_executor(self.kind, self.workers)
                self.starts += 1
            return self._executor

    def respawn(self, broken: Executor | None = None) -> bool:
        """Retire a broken executor so the next lease starts fresh workers.

        Pass the executor that raised ``BrokenExecutor``: concurrent
        batches crashing on the *same* broken pool all call in, but only
        the first retires it (identity-checked) — the rest re-lease the
        replacement.  ``broken=None`` retires unconditionally.  Published
        shared-memory payloads are untouched: this process (the publisher)
        is alive, so every segment is still attachable by the fresh
        workers.  Returns True when an executor was actually retired.
        """
        with self._lock:
            if self._executor is None:
                return False
            if broken is not None and self._executor is not broken:
                return False  # a sibling already respawned past this one
            executor, self._executor = self._executor, None
            self.respawns += 1
        try:
            executor.close()  # reaps whatever the crash left behind
        except Exception:  # pragma: no cover - broken pools may refuse
            pass
        return True

    def run(self, fn: Callable, tasks: Sequence, *, crash_retries: int = 2) -> list:
        """Supervised ``map``: on worker death, respawn and retry the call.

        The retry is transparent — ``fn`` over ``tasks`` is re-dispatched
        in full against fresh workers (``Executor.map`` materializes all
        results before returning, so no partial output ever escaped) — and
        bounded: past ``crash_retries`` respawns the ``BrokenExecutor``
        propagates, because a workload that kills every pool it touches is
        a bug to surface, not absorb.
        """
        attempts = 0
        while True:
            executor = self.executor()
            try:
                return executor.map(fn, tasks)
            except BrokenExecutor:
                attempts += 1
                self.respawn(executor)
                if attempts > crash_retries:
                    raise

    # -- Payload publication -----------------------------------------------

    @property
    def generation(self) -> int:
        """Current payload generation (bumped by :meth:`invalidate`)."""
        return self._generation

    def invalidate(self) -> None:
        """Mark every published payload stale (state behind them mutated).

        Cheap and synchronous — stale segments are unlinked lazily, on the
        next :meth:`publish` of their key, so a burst of KB changes costs
        one republication, not one per change.
        """
        with self._lock:
            self._generation += 1

    def publish(self, key: str, make_bytes: Callable[[], bytes]) -> str:
        """Segment name of ``key``'s payload for the current generation.

        Calls ``make_bytes`` only when the cached publish is missing or
        stale, and only ever caches a blob under the generation that was
        current *before* serialization began — if :meth:`invalidate` lands
        while ``make_bytes`` runs, the (now possibly stale) bytes are
        thrown away and serialization restarts, so a post-mutation caller
        can never be handed pre-mutation state under the new generation.
        The superseded segment is *retired* (still attachable, for tasks
        already in flight against it) and the one retired before that is
        unlinked, mirroring the snapshot manager's grace window.
        """
        while True:
            with self._lock:
                generation = self._generation
                cached = self._published.get(key)
                if cached is not None and cached[0] == generation:
                    return cached[1].name
            data = make_bytes()  # outside the lock: serialization can be slow
            with self._lock:
                if self._generation != generation:
                    continue  # state mutated mid-serialization: redo
                current = self._published.get(key)
                if current is not None and current[0] == generation:
                    return current[1].name  # a racing publisher won
                blob = PublishedBlob(data, tag=generation)
                stale = self._retired.pop(key, None)
                if current is not None:
                    self._retired[key] = current[1]
                self._published[key] = (generation, blob)
                self.publishes += 1
            if stale is not None:
                stale.unlink()
            return blob.name

    # -- Lifecycle ---------------------------------------------------------

    def release(self) -> None:
        """Join the warm workers and unlink published payloads at a natural
        quiesce point (e.g. the end of a training run), without retiring
        the pool: the next lease starts fresh and stays warm through its
        own burst.  Owners call this so an *idle* system holds no worker
        processes; :meth:`close` is the terminal spelling of the same
        operation."""
        self.close()

    def close(self) -> None:
        """Shut the executor down and unlink every published segment.

        Idempotent, and the pool remains usable: a later :meth:`executor`
        or :meth:`publish` simply starts fresh.
        """
        with self._lock:
            executor, self._executor = self._executor, None
            blobs = [blob for _generation, blob in self._published.values()]
            blobs.extend(self._retired.values())
            self._published.clear()
            self._retired.clear()
        if executor is not None:
            executor.close()
        for blob in blobs:
            blob.unlink()

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
