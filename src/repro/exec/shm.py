"""Shared-memory blob transport: publish once per epoch, attach zero-copy.

PR 4's process-parallel layers ship their bulk state *through the task
pipe*: the serving snapshot blob rides inside every micro-batch and the
expansion shard tables are re-pickled into every fresh pool.  Both costs are
O(state) per dispatch/pool-start when they should be O(state) per *change*.
This module is the fix: a publisher writes a payload into one
``multiprocessing.shared_memory`` segment, and every worker — in any process
— attaches the segment by name and reads the payload **in place** (a
``memoryview`` over the mapped pages; ``pickle.loads`` accepts the buffer
directly, so no copy of the blob is ever made on the worker side).

Wire format of a segment (little-endian, struct-packed)::

    8s   magic     b"KBQASHM1"
    q    tag       publisher-chosen epoch / generation id
    Q    length    payload byte count
    ...  payload   `length` bytes

The tag lets a consumer verify it attached the segment the task meant
(a task carries ``(segment_name, tag)``; a mismatch means the publisher
republished under the same name, which this module never does — every
publish creates a fresh segment — so it is treated as corruption).

Lifecycle rules:

* the **publisher** owns unlinking: :meth:`PublishedBlob.unlink` removes the
  name; attached consumers keep their mapping until they close (POSIX
  file-unlink semantics).  Leaked segments after ``close()`` are a bug —
  ``tests/test_exec_concurrency.py`` asserts none survive.
* a **consumer** that attaches after the publisher unlinked gets
  :class:`SegmentUnavailable` — the epoch protocol treats that exactly like
  a stale epoch (the batch re-dispatches against a fresh publish), never as
  a hard failure.
* resource-tracker accounting stays with the **publisher**: worker
  processes share the parent's tracker (its cache is a set, so the
  attach-side re-registration Python 3.11 performs is idempotent), and the
  publisher's unlink unregisters the name exactly once — no per-attach
  bookkeeping is needed, and none is done.
* segments are **named** ``kbqa-<pid>-<token>`` so a segment orphaned by a
  SIGKILL'd publisher (atexit never ran) is identifiable after the fact:
  :func:`sweep_orphans` unlinks every ``kbqa-*`` segment whose publisher
  pid is dead.  ``ExecutorPool`` sweeps on every pool start and the
  ``kbqa shm-gc`` CLI exposes it directly, so a crashed run cannot bleed
  ``/dev/shm`` forever.
"""

from __future__ import annotations

import atexit
import os
import secrets
import struct
from collections import OrderedDict
from multiprocessing import shared_memory
from pathlib import Path

SHM_MAGIC = b"KBQASHM1"
_HEADER = struct.Struct("<8sqQ")

SEGMENT_PREFIX = "kbqa-"
_SHM_DIR = Path("/dev/shm")


def _new_segment_name() -> str:
    """A fresh publisher-owned segment name: ``kbqa-<pid>-<token>``.

    The embedded pid is what makes orphans *decidable*: a sweeper unlinks a
    ``kbqa-*`` segment exactly when its publisher is no longer alive.
    """
    return f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"


def publisher_pid(segment_name: str) -> int | None:
    """The publisher pid embedded in a ``kbqa-*`` segment name (None when
    the name does not follow the convention)."""
    if not segment_name.startswith(SEGMENT_PREFIX):
        return None
    pid_text = segment_name[len(SEGMENT_PREFIX) :].partition("-")[0]
    return int(pid_text) if pid_text.isdigit() else None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - someone else's live process
        return True
    return True


def sweep_orphans() -> list[str]:
    """Unlink every ``kbqa-*`` segment whose publisher process is dead.

    Returns the names removed.  Segments belonging to live processes (this
    one included) are never touched, and non-``kbqa`` names are invisible to
    the sweep.  A no-op on platforms without a ``/dev/shm`` (the shared-
    memory data plane needs POSIX anyway).
    """
    if not _SHM_DIR.is_dir():
        return []
    removed: list[str] = []
    for path in _SHM_DIR.glob(SEGMENT_PREFIX + "*"):
        pid = publisher_pid(path.name)
        if pid is None or _pid_alive(pid):
            continue
        try:
            path.unlink()
        except OSError:  # racing sweeper or vanished segment: already gone
            continue
        removed.append(path.name)
    return removed


class SegmentUnavailable(RuntimeError):
    """The named segment is gone (publisher republished/unlinked) or does
    not carry the expected tag.  Recoverable: re-dispatch against the
    current publish.  Picklable, so it crosses the worker result pipe."""


class PublishedBlob:
    """One published payload; the publisher handle (owns the segment name)."""

    def __init__(self, data: bytes, tag: int) -> None:
        self.tag = tag
        self.size = len(data)
        size = _HEADER.size + max(len(data), 1)
        while True:
            try:
                self._shm = shared_memory.SharedMemory(
                    create=True, size=size, name=_new_segment_name()
                )
                break
            except FileExistsError:  # pragma: no cover - 32-bit token collision
                continue
        self.name = self._shm.name
        _HEADER.pack_into(self._shm.buf, 0, SHM_MAGIC, tag, len(data))
        self._shm.buf[_HEADER.size : _HEADER.size + len(data)] = data

    def unlink(self) -> None:
        """Remove the segment name (idempotent).  Attached consumers keep
        their mapping; new attaches fail with :class:`SegmentUnavailable`."""
        if self._shm is None:
            return
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass
        self._shm = None


class AttachedBlob:
    """A consumer-side attachment: ``data`` is a zero-copy view of the
    payload inside the mapped segment.  Hold the object as long as the view
    (or anything unpickled *from* it with buffer sharing) is alive."""

    def __init__(self, name: str, expected_tag: int | None = None) -> None:
        try:
            self._shm = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, ValueError) as error:
            raise SegmentUnavailable(f"segment {name!r} is gone") from error
        magic, tag, length = _HEADER.unpack_from(self._shm.buf, 0)
        if magic != SHM_MAGIC:
            self._shm.close()
            raise SegmentUnavailable(f"segment {name!r} is not a {SHM_MAGIC!r} blob")
        if expected_tag is not None and tag != expected_tag:
            self._shm.close()
            raise SegmentUnavailable(
                f"segment {name!r} carries tag {tag}, expected {expected_tag}"
            )
        self.name = name
        self.tag = tag
        self.data = self._shm.buf[_HEADER.size : _HEADER.size + length]

    def close(self) -> None:
        """Release the view and the mapping (idempotent)."""
        if self._shm is None:
            return
        self.data.release()
        self._shm.close()
        self._shm = None


# Worker-resident attachment cache.  Segment names are never reused (every
# publish creates a fresh segment), so a name is a perfect cache key; a tiny
# LRU bounds mappings when epochs churn.
_ATTACH_CACHE: OrderedDict[str, AttachedBlob] = OrderedDict()
_ATTACH_CACHE_MAX = 4


def attach_blob(name: str, expected_tag: int | None = None) -> AttachedBlob:
    """Attach (or reuse this process's attachment of) a published segment."""
    from repro.exec.faults import fault_point

    fault_point("shm.attach")
    cached = _ATTACH_CACHE.get(name)
    if cached is not None:
        if expected_tag is not None and cached.tag != expected_tag:
            raise SegmentUnavailable(
                f"segment {name!r} carries tag {cached.tag}, expected {expected_tag}"
            )
        _ATTACH_CACHE.move_to_end(name)
        return cached
    blob = AttachedBlob(name, expected_tag)
    _ATTACH_CACHE[name] = blob
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_MAX:
        _, stale = _ATTACH_CACHE.popitem(last=False)
        stale.close()
    return blob


@atexit.register
def _close_cached_attachments() -> None:
    """Release cached views before interpreter teardown.

    Without this, ``SharedMemory.__del__`` can run while a cached
    ``AttachedBlob`` still exports its payload view (destruction order at
    shutdown is arbitrary) and spam ``BufferError`` tracebacks.  Runs in
    every process that attached — pool workers included.
    """
    while _ATTACH_CACHE:
        _name, blob = _ATTACH_CACHE.popitem()
        try:
            blob.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
