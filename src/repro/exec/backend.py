"""Pluggable execution backends: serial / thread / process behind one protocol.

The ROADMAP's scaling items ("Process-parallel shards", "Multi-process
serving") share one bottleneck: the Sec 6.2 expansion scan and the online
Eq 7 evaluation are pure-python CPU loops, so the PR 2/PR 3 thread pools are
GIL-bound — `shard_sweep` in ``BENCH_perf.json`` is ~flat across shard
counts.  This module is the seam that fixes both at once: an
:class:`Executor` maps a *picklable, frozen* task list to a result list with
**order preserved**, and the two hot paths submit their work through it:

* the shard-parallel expansion scan (``repro.kb.expansion``) runs one scan
  task per shard and merges the buffers in shard order — output byte-
  identical to the serial scan regardless of backend;
* the serving micro-batches (``repro.serve.async_answerer``) dispatch to
  process workers holding epoch-tagged frozen answerer snapshots
  (``repro.exec.snapshot``).

Three implementations:

* :class:`SerialExecutor` — in-caller evaluation, the determinism baseline;
* :class:`ThreadExecutor` — shared-memory thread pool (cheap task handoff,
  GIL-bound for pure-python work; still wins when tasks release the GIL);
* :class:`ProcessExecutor` — shared-nothing process pool.  Tasks, results
  and the optional resident *payload* (e.g. encoded shard tables, shipped
  once per worker at pool start instead of once per task) must be picklable;
  ``tests/test_exec_pickle.py`` locks that down in tier-1 so a future
  unpicklable field fails in CI instead of as a worker traceback.

Selection is uniform everywhere: an explicit argument wins, else the
``KBQA_EXEC`` / ``KBQA_WORKERS`` environment variables (the CI process leg
runs the whole suite under ``KBQA_EXEC=process KBQA_WORKERS=2``), else a
per-call-site default.  All worker counts clamp to >= 1 no matter what the
environment or ``os.cpu_count()`` report.
"""

from __future__ import annotations

import os
import signal
import sys
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Protocol, Sequence, TypeVar, runtime_checkable

EXEC_ENV = "KBQA_EXEC"
WORKERS_ENV = "KBQA_WORKERS"

EXEC_KINDS = ("serial", "thread", "process")

T = TypeVar("T")
R = TypeVar("R")

# Resident payload of the current *worker process*, installed by the pool
# initializer before the first task runs (see ProcessExecutor).  In the
# serial/thread backends tasks run in the caller's process, where the
# executor sets the same global, so task functions are backend-agnostic.
_WORKER_PAYLOAD: object | None = None


def _install_payload(payload: object) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


_PR_SET_PDEATHSIG = 1  # linux/prctl.h


def bind_to_parent_death() -> None:
    """Best-effort ``PR_SET_PDEATHSIG``: die when the owning process dies.

    A pool worker (or a forked server replica) whose parent is SIGKILL'd is
    otherwise orphaned on a call-queue read that can never see EOF — every
    sibling holds the pipe's write end — and outlives ``stop()`` forever.
    Linux-only; elsewhere (and on any prctl failure) this is a silent no-op,
    and the caller's join/terminate path remains the cleanup of record.
    """
    if not sys.platform.startswith("linux"):
        return
    try:
        import ctypes

        ctypes.CDLL(None, use_errno=True).prctl(_PR_SET_PDEATHSIG, signal.SIGTERM)
    except Exception:  # pragma: no cover - no libc/prctl: nothing to bind
        return
    if os.getppid() == 1:  # parent died between fork and prctl
        os._exit(1)


def _init_worker(payload: object | None = None) -> None:
    """Process-pool worker initializer: parent-death binding + payload."""
    bind_to_parent_death()
    if payload is not None:
        _install_payload(payload)


def worker_payload() -> object | None:
    """The payload resident in this worker (None when the pool has none)."""
    return _WORKER_PAYLOAD


@runtime_checkable
class Executor(Protocol):
    """What every execution backend provides.

    ``map`` evaluates ``fn`` over ``tasks`` and returns the results **in
    task order** — the property the shard-ordered merge and every
    equivalence test lean on.  ``submit`` is the one-task async form the
    serving dispatcher uses (``asyncio.wrap_future`` bridges it onto the
    event loop); a :class:`SerialExecutor` runs the task *at submit time*
    and returns an already-resolved future, which is exactly serial
    semantics.  ``kind`` names the backend; ``workers`` is its parallelism.
    ``close`` releases pool resources (idempotent).
    """

    kind: str
    workers: int

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        ...

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        ...

    def close(self) -> None:
        ...


class SerialExecutor:
    """Run every task inline, in order — the determinism baseline."""

    kind = "serial"

    def __init__(self, workers: int = 1, payload: object | None = None) -> None:
        self.workers = 1
        self._payload = payload

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Evaluate every task inline, in order."""
        if self._payload is not None:
            _install_payload(self._payload)
        return [fn(task) for task in tasks]

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        """Run ``fn`` now; return an already-resolved future."""
        if self._payload is not None:
            _install_payload(self._payload)
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as error:
            future.set_exception(error)
        return future

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ThreadExecutor:
    """A thread pool; tasks share the caller's memory (no pickling)."""

    kind = "thread"

    def __init__(self, workers: int | None = None, payload: object | None = None) -> None:
        self.workers = resolve_workers(workers)
        self._payload = payload
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="kbqa-exec"
        )

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Evaluate the tasks on the pool; results in task order."""
        if self._payload is not None:
            _install_payload(self._payload)
        return list(self._pool.map(fn, tasks))

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        """Submit one call to the pool."""
        if self._payload is not None:
            _install_payload(self._payload)
        return self._pool.submit(fn, *args)

    def close(self) -> None:
        """Shut the pool down, joining every worker thread."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ProcessExecutor:
    """A shared-nothing process pool over picklable frozen tasks.

    ``payload`` is pickled **once per worker** at pool start (through the
    initializer) rather than once per task; task functions read it back via
    :func:`worker_payload`.  The expansion scan ships its encoded shard
    tables this way, so per-round tasks carry only the (pruned) frontier.

    ``map`` preserves task order (``ProcessPoolExecutor.map`` semantics), so
    a shard-ordered merge over the results is deterministic.  ``close``
    joins every worker; leaked children after close are a bug
    (``tests/test_exec_concurrency.py`` asserts none).
    """

    kind = "process"

    def __init__(self, workers: int | None = None, payload: object | None = None) -> None:
        self.workers = resolve_workers(workers)
        # the initializer always runs: every worker binds to this process's
        # death (PR_SET_PDEATHSIG) so a SIGKILL'd owner cannot leak workers
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(payload,),
        )

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Evaluate the (picklable) tasks on the pool; results in task order."""
        return list(self._pool.map(fn, tasks))

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        """Submit one picklable call to the pool."""
        return self._pool.submit(fn, *args)

    def close(self) -> None:
        """Shut the pool down, joining every worker process."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_EXECUTORS: dict[str, type] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def resolve_workers(workers: int | None = None, fallback: int | None = None) -> int:
    """Effective worker count: explicit arg > ``KBQA_WORKERS`` > fallback >
    ``os.cpu_count()`` — always clamped to >= 1 (CI runners may report 0/None
    cores or export nonsense; a pool of zero workers deadlocks)."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env is not None:
            try:
                workers = int(env)
            except ValueError:
                workers = None
    if workers is None:
        workers = fallback if fallback is not None else os.cpu_count()
    try:
        return max(1, int(workers)) if workers is not None else 1
    except (TypeError, ValueError):
        return 1


def resolve_exec_kind(kind: str | None = None, default: str = "serial") -> str:
    """Effective backend kind: explicit arg > ``KBQA_EXEC`` > ``default``.

    Raises :class:`ValueError` on an unknown kind so a typo in a flag or the
    environment fails loudly instead of silently running serial.
    """
    if kind is None:
        kind = os.environ.get(EXEC_ENV) or default
    kind = kind.strip().lower()
    if kind not in _EXECUTORS:
        raise ValueError(
            f"unknown execution backend {kind!r} (choose from {', '.join(EXEC_KINDS)})"
        )
    return kind


def make_executor(
    kind: str | None = None,
    workers: int | None = None,
    *,
    payload: object | None = None,
    default: str = "serial",
) -> Executor:
    """Build an executor from a spec (explicit > environment > ``default``)."""
    return _EXECUTORS[resolve_exec_kind(kind, default)](workers, payload=payload)
