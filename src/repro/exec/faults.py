"""Deterministic fault injection: kill/slow/raise at named points, from env.

A multi-process serving stack earns trust only if its failure paths are
*testable*: "a SIGKILL'd pool worker" or "a dead replica" must be something
tier-1 can provoke on demand, in one line, without monkeypatching across
process boundaries.  This module is that lever.  Production code sprinkles
cheap :func:`fault_point` calls at the places where real systems die (the
worker batch entry, the shard-scan entry, the replica poll loop, the
shared-memory attach), and the ``KBQA_FAULTS`` environment variable — which
forked pool workers and server replicas inherit — arms them.

Spec grammar (semicolon-separated entries)::

    KBQA_FAULTS = "<site>=<action>[,<modifier>...][;<site>=<action>...]"

Actions:

* ``kill`` — ``SIGKILL`` the calling process (the real thing, not an
  exception: no ``finally`` blocks run, exactly like the OOM killer);
* ``exit`` / ``exit:<code>`` — ``os._exit`` with the code (default 1);
* ``sleep:<ms>`` — block for ``ms`` milliseconds (slow-task injection);
* ``raise`` / ``raise:<name>`` — raise an exception from a small registry
  (``RuntimeError`` default; ``SegmentUnavailable`` and ``OSError`` for the
  recoverable-error paths).

Modifiers:

* ``times=N`` — fire at most ``N`` times per process (default 1; ``N <= 0``
  means every hit);
* ``after=K`` — skip the first ``K`` hits of the site in this process
  (lets a replica serve a few poll loops before dying "mid-load");
* ``once=<path>`` — fire only in the single process that atomically claims
  the token file (``O_CREAT|O_EXCL``), across *all* processes that inherit
  the spec — "kill exactly one worker" instead of "every worker kills
  itself on its first batch".

Sites are free-form labels; an entry naming a site nothing calls simply
never fires.  The canonical instrumented sites:

=====================  ====================================================
``exec.worker.batch``  serving micro-batch entry in a pool worker
                       (:func:`repro.exec.snapshot.evaluate_frozen_batch`)
``exec.worker.scan``   expansion shard-scan entry in a pool worker
                       (:func:`repro.exec.tasks.scan_shard`)
``serve.replica``      a ``--procs`` replica's poll loop (between requests,
                       never while holding the shared op lock)
``shm.attach``         consumer-side shared-memory attach
                       (:func:`repro.exec.shm.attach_blob`)
=====================  ====================================================

With ``KBQA_FAULTS`` unset (production), :func:`fault_point` is one dict
probe against a parsed-empty plan — no syscalls, no allocation.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

FAULTS_ENV = "KBQA_FAULTS"

_ACTIONS = ("kill", "exit", "sleep", "raise")


def _raisable(name: str) -> type[BaseException]:
    """Resolve a ``raise:<name>`` target (small, closed registry)."""
    if name == "SegmentUnavailable":
        from repro.exec.shm import SegmentUnavailable

        return SegmentUnavailable
    registry: dict[str, type[BaseException]] = {
        "RuntimeError": RuntimeError,
        "OSError": OSError,
        "ValueError": ValueError,
    }
    try:
        return registry[name]
    except KeyError:
        raise ValueError(
            f"unknown raise target {name!r} (choose from "
            f"SegmentUnavailable, {', '.join(registry)})"
        ) from None


@dataclass
class Fault:
    """One armed fault: what to do at a site, and when to actually fire."""

    site: str
    action: str
    arg: str | None = None
    times: int = 1  # max fires per process; <= 0 means unlimited
    after: int = 0  # hits to skip before the first fire
    once: str | None = None  # cross-process one-shot token file
    hits: int = field(default=0, compare=False)
    fires: int = field(default=0, compare=False)

    def fire(self) -> None:
        """Count a hit of this site and trigger the action when armed."""
        self.hits += 1
        if self.hits <= self.after:
            return
        if self.times > 0 and self.fires >= self.times:
            return
        if self.once is not None and not _claim_token(self.once):
            return
        self.fires += 1
        if self.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.action == "exit":
            os._exit(int(self.arg) if self.arg else 1)
        elif self.action == "sleep":
            time.sleep(float(self.arg) / 1000.0 if self.arg else 0.01)
        elif self.action == "raise":
            exc = _raisable(self.arg or "RuntimeError")
            raise exc(f"injected fault at {self.site!r} ({FAULTS_ENV})")


def _claim_token(path: str) -> bool:
    """Atomically claim a cross-process one-shot token (first caller wins)."""
    try:
        os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        return True
    except FileExistsError:
        return False
    except OSError:
        return False  # unwritable token path: fail safe (never fire)


def parse_faults(spec: str) -> dict[str, Fault]:
    """Parse a ``KBQA_FAULTS`` spec into per-site faults (one per site).

    Raises :class:`ValueError` on malformed entries so a typo in the
    environment fails the run loudly instead of silently injecting nothing.
    """
    faults: dict[str, Fault] = {}
    for raw_entry in spec.split(";"):
        entry = raw_entry.strip()
        if not entry:
            continue
        head, sep, modifier_text = entry.partition(",")
        site, sep, action_text = head.partition("=")
        site = site.strip()
        if not sep or not site:
            raise ValueError(f"malformed fault entry {entry!r} (want site=action)")
        action, _, arg = action_text.strip().partition(":")
        if action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {action!r} (choose from {', '.join(_ACTIONS)})"
            )
        fault = Fault(site=site, action=action, arg=arg or None)
        if modifier_text:
            for modifier in modifier_text.split(","):
                name, sep, value = modifier.partition("=")
                name = name.strip()
                if name == "times" and sep:
                    fault.times = int(value)
                elif name == "after" and sep:
                    fault.after = int(value)
                elif name == "once" and sep:
                    fault.once = value
                else:
                    raise ValueError(
                        f"unknown fault modifier {modifier.strip()!r} "
                        f"(choose from times=, after=, once=)"
                    )
        # validate raise targets and numeric args eagerly, not at fire time
        if fault.action == "raise":
            _raisable(fault.arg or "RuntimeError")
        if fault.action == "sleep" and fault.arg is not None:
            float(fault.arg)
        if fault.action == "exit" and fault.arg is not None:
            int(fault.arg)
        faults[site] = fault
    return faults


# The active plan, parsed lazily from the environment and cached against the
# exact spec string — a forked worker inherits the env and parses its own
# copy (counters are per-process by design), and a test that swaps the env
# gets a fresh plan on its next fault_point.
_PLAN: tuple[str, dict[str, Fault]] = ("", {})


def _active_faults() -> dict[str, Fault]:
    global _PLAN
    spec = os.environ.get(FAULTS_ENV, "")
    if spec != _PLAN[0]:
        _PLAN = (spec, parse_faults(spec) if spec else {})
    return _PLAN[1]


def fault_point(site: str) -> None:
    """Trigger the fault armed for ``site``, if any (cheap no-op otherwise)."""
    fault = _active_faults().get(site)
    if fault is not None:
        fault.fire()


def faults_active() -> bool:
    """True when any fault is armed (surfaced in /stats and bench output)."""
    return bool(_active_faults())


class inject_faults:
    """Context manager arming a spec for this process *and* its children::

        with inject_faults(f"exec.worker.batch=kill,once={token}"):
            ...  # forked pool workers inherit KBQA_FAULTS and die on cue

    Setting the environment (rather than module state) is the point: forked
    replicas and pool workers re-parse it on their side of the boundary.
    Restores the previous value on exit.
    """

    def __init__(self, spec: str) -> None:
        parse_faults(spec)  # validate before arming anything
        self.spec = spec
        self._previous: str | None = None

    def __enter__(self) -> "inject_faults":
        self._previous = os.environ.get(FAULTS_ENV)
        os.environ[FAULTS_ENV] = self.spec
        return self

    def __exit__(self, *exc_info) -> None:
        if self._previous is None:
            os.environ.pop(FAULTS_ENV, None)
        else:
            os.environ[FAULTS_ENV] = self._previous
