"""Frozen, picklable task payloads for the parallel Sec 6.2 expansion scan.

One :class:`ShardScanTask` describes one round's scan of one subject shard:
the shard's grouped id-keyed table (``{s_id: {p_id: {o_id}}}``) joined
against the BFS frontier.  Everything in the payload is dictionary-encoded
integers — no strings, no store objects — so the same task runs unchanged on
a serial, thread or process backend, and the result buffers merge in shard
order to a byte-identical expansion (``tests/test_exec_backends.py``).

Three shipping modes for the shard table:

* ``tables_ref=<segment>`` — the tables live in a shared-memory publish
  (`repro.exec.shm`): the persistent-pool hot path.  The worker attaches
  the segment by name, unpickles the tuple of shard tables **once per
  publication** (cached across tasks, rounds and expansion calls), and the
  task carries only the name plus its frontier slice.  This is what lets a
  warm :class:`~repro.exec.pool.ExecutorPool` run repeated expansions with
  zero per-call table shipping.
* ``table=None`` without a ref — the table is *resident* in the worker: the
  pool was built with ``payload=<tuple of shard tables>`` (pickled once per
  worker at pool start), and :func:`scan_shard` fetches
  ``payload[task.shard]``.  The per-call process-pool path.
* ``table=<mapping>`` — the task is self-contained (used by the serial and
  thread backends, where "shipping" is a pointer copy, and by caller-owned
  process executors that were built without a payload).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from repro.exec.backend import worker_payload
from repro.exec.faults import fault_point
from repro.exec.shm import attach_blob

# frontier entry: node id -> {(seed_id, prefix predicate-id tuple)}
Provenance = set[tuple[int, tuple[int, ...]]]
ShardTable = dict[int, dict[int, set[int]]]


@dataclass(frozen=True, slots=True)
class ShardScanTask:
    """One (round, shard) scan-and-join unit of the Sec 6.2 expansion."""

    shard: int
    frontier: dict[int, Provenance]
    tail_ids: frozenset[int]
    is_last_round: bool
    table: ShardTable | None = None
    tables_ref: str | None = None  # shared-memory publish of all shard tables


@dataclass(frozen=True, slots=True)
class ShardScanResult:
    """Shard-local output buffers, merged by the caller in shard order.

    ``records`` are materialized ``(seed_id, path_key, object_id)`` rows;
    ``additions`` are ``(node_id, (seed_id, path_key))`` frontier extensions
    for the next round.
    """

    shard: int
    records: list[tuple[int, tuple[int, ...], int]]
    additions: list[tuple[int, tuple[int, tuple[int, ...]]]]


def scan_shard(task: ShardScanTask) -> ShardScanResult:
    """Scan one shard table against the frontier (pure function of the task).

    The loop structure mirrors the single-store scan in
    ``repro.kb.expansion.expand_predicates`` exactly: one frontier probe per
    subject *group*, length-1 paths recorded unconditionally, longer paths
    only on a tail predicate, traversal through everything.
    """
    fault_point("exec.worker.scan")
    table = task.table
    if table is None:
        if task.tables_ref is not None:
            table = _fetch_tables(task.tables_ref)[task.shard]
        else:
            tables = worker_payload()
            if tables is None:
                raise RuntimeError(
                    "ShardScanTask has no table and the worker holds no resident "
                    "shard payload (build the executor with payload=shard tables)"
                )
            table = tables[task.shard]
    frontier = task.frontier
    tail_ids = task.tail_ids
    is_last_round = task.is_last_round
    records: list[tuple[int, tuple[int, ...], int]] = []
    additions: list[tuple[int, tuple[int, tuple[int, ...]]]] = []
    for s_id, by_predicate in table.items():
        provenance = frontier.get(s_id)
        if not provenance:
            continue
        for p_id, object_ids in by_predicate.items():
            is_tail = p_id in tail_ids
            for seed_id, prefix in provenance:
                path_key = prefix + (p_id,)
                if len(path_key) == 1 or is_tail:
                    for o_id in object_ids:
                        records.append((seed_id, path_key, o_id))
                if not is_last_round:
                    extended = (seed_id, path_key)
                    for o_id in object_ids:
                        additions.append((o_id, extended))
    return ShardScanResult(shard=task.shard, records=records, additions=additions)


# Worker-resident thawed shard tables, keyed on the segment name that
# published them.  Names are unique per publication, so one entry per live
# generation suffices; keeping the previous one covers the republication
# window where in-flight rounds still reference it.
_TABLES_CACHE: dict[str, tuple[ShardTable, ...]] = {}
_TABLES_CACHE_MAX = 2


def _fetch_tables(segment: str) -> tuple[ShardTable, ...]:
    """Attach + unpickle a published tuple of shard tables (cached)."""
    tables = _TABLES_CACHE.get(segment)
    if tables is None:
        tables = pickle.loads(attach_blob(segment).data)
        if len(_TABLES_CACHE) >= _TABLES_CACHE_MAX:
            _TABLES_CACHE.pop(next(iter(_TABLES_CACHE)))
        _TABLES_CACHE[segment] = tables
    return tables


def split_frontier_by_shard(
    frontier: dict[int, Provenance], n_shards: int
) -> list[dict[int, Provenance]]:
    """Partition the frontier by owning shard (``node_id % n_shards``).

    Only subjects resident in shard ``i`` can join against frontier keys
    congruent to ``i``, so a process task needs (and ships) only its own
    slice — the rest of the frontier would be dead weight on the pipe.
    """
    slices: list[dict[int, Provenance]] = [{} for _ in range(n_shards)]
    for node_id, provenance in frontier.items():
        slices[node_id % n_shards][node_id] = provenance
    return slices
