"""Epoch-tagged frozen answerer snapshots for process-pool serving.

A process worker cannot share the live ``KBQA``/``OnlineAnswerer`` — it
evaluates against a *snapshot*: the picklable answering state (model, KB
view, NER, conceptualizer; see ``OnlineAnswerer.__getstate__``) pickled once
per serving epoch.  The protocol that keeps live ``add``/``delete`` correct:

* every KB invalidation bumps the :class:`AsyncAnswerer` epoch (unchanged
  from the thread backend);
* a dispatched batch carries the epoch it was frozen against
  (:class:`AnswerBatchTask`); the worker caches the deserialized answerer
  keyed on that epoch, so consecutive batches of one epoch deserialize once;
* when the dispatch-time epoch has moved past the cached snapshot,
  :meth:`SnapshotManager.task_for` re-freezes from the *live* target — whose
  mutations and cache-clears have already been applied by the synchronous
  change listeners — so the re-evaluation path of the serving layer's
  stale-batch retry observes post-mutation state, never a stale snapshot.

The blob rides inside every task (bytes are cheap to re-pickle; the
expensive ``pickle.dumps`` of the answerer happens once per epoch in the
parent, and ``pickle.loads`` once per epoch per worker).  Pool processes are
private to one :class:`AsyncAnswerer`, so epochs never mix across managers.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.core.online import AnswerResult


@dataclass(frozen=True, slots=True)
class AnswerBatchTask:
    """One serving micro-batch bound for a process worker."""

    epoch: int
    blob: bytes  # pickled answer target, frozen at `epoch`
    questions: tuple[str, ...]


# Worker-resident deserialized snapshot: (epoch, answer target).  One entry —
# an epoch bump obsoletes every older snapshot, so there is nothing to keep.
_SNAPSHOT: tuple[int, object] | None = None


def evaluate_frozen_batch(task: AnswerBatchTask) -> list["AnswerResult"]:
    """Worker entry point: thaw (or reuse) the snapshot, answer the batch."""
    global _SNAPSHOT
    snapshot = _SNAPSHOT
    if snapshot is None or snapshot[0] != task.epoch:
        snapshot = (task.epoch, pickle.loads(task.blob))
        _SNAPSHOT = snapshot
    return snapshot[1].answer_many(list(task.questions))


def freeze_target(target: object) -> bytes:
    """Pickle the answerable core of ``target``.

    A ``KBQA`` system freezes through its ``answerer`` (the facade itself
    carries process-local wiring — backend subscriptions, the live
    maintainer — that a shared-nothing worker must not and cannot hold); any
    other target with ``answer_many`` pickles as-is.
    """
    answerer = getattr(target, "answerer", None)
    if answerer is not None and hasattr(answerer, "answer_many"):
        target = answerer
    return pickle.dumps(target, protocol=pickle.HIGHEST_PROTOCOL)


class SnapshotManager:
    """Caches the frozen blob of one target, re-freezing per epoch.

    The serving dispatcher asks for the blob of the epoch it will compare
    against after evaluation; the blob handed out is always frozen at (or
    after) that epoch's mutations (a mutation racing in *after* the freeze
    just bumps the epoch again and triggers the stale-batch retry).

    A large system's ``pickle.dumps`` is not cheap, so :meth:`freeze` is
    thread-safe and meant to be called *off* the event loop (the serving
    layer runs it on a side thread); :meth:`cached_blob` is the loop-side
    fast path that never serializes.
    """

    def __init__(self, target: object) -> None:
        self.target = target
        self._epoch: int | None = None
        self._blob: bytes | None = None
        self._lock = threading.Lock()
        self.refreezes = 0

    def cached_blob(self, epoch: int) -> bytes | None:
        """The blob already frozen for ``epoch``, or None (never freezes)."""
        with self._lock:
            if self._blob is not None and self._epoch == epoch:
                return self._blob
            return None

    def freeze(self, epoch: int) -> bytes:
        """Freeze now (or reuse the blob already frozen for ``epoch``).

        Concurrent callers for the same epoch serialize on the lock; the
        loser reuses the winner's blob instead of pickling twice.
        """
        with self._lock:
            if self._blob is None or self._epoch != epoch:
                self._blob = freeze_target(self.target)
                self._epoch = epoch
                self.refreezes += 1
            return self._blob

    def task_for(self, epoch: int, questions: Sequence[str]) -> AnswerBatchTask:
        """Build the micro-batch task for one dispatch at ``epoch``."""
        return AnswerBatchTask(
            epoch=epoch, blob=self.freeze(epoch), questions=tuple(questions)
        )
