"""Epoch-tagged frozen answerer snapshots for process-pool serving.

A process worker cannot share the live ``KBQA``/``OnlineAnswerer`` — it
evaluates against a *snapshot*: the picklable answering state (model, KB
view, NER, conceptualizer; see ``OnlineAnswerer.__getstate__``) frozen once
per serving epoch.  The protocol that keeps live ``add``/``delete`` correct:

* every KB invalidation bumps the :class:`AsyncAnswerer` epoch (unchanged
  from the thread backend);
* a dispatched batch carries the epoch it was frozen against
  (:class:`AnswerBatchTask`); the worker caches the deserialized answerer
  keyed on that epoch, so consecutive batches of one epoch deserialize once;
* when the dispatch-time epoch has moved past the cached snapshot,
  :meth:`SnapshotManager.task_for` re-freezes from the *live* target — whose
  mutations and cache-clears have already been applied by the synchronous
  change listeners — so the re-evaluation path of the serving layer's
  stale-batch retry observes post-mutation state, never a stale snapshot.

Two transports for the frozen bytes:

* **shared memory** (``use_shm=True``, the serving default) — the blob is
  *published* once per epoch into a `repro.exec.shm` segment; micro-batches
  carry only ``(epoch, segment_name)``, and each worker attaches the
  segment by name and unpickles **in place** (zero copy of the blob per
  batch, one ``pickle.loads`` per epoch per worker).  Refreeze on
  invalidation republishes into a fresh segment; the previous epoch's
  segment is retired one publish later (a grace window for batches already
  dispatched against it), and a worker that loses the race gets
  :class:`~repro.exec.shm.SegmentUnavailable` — which the serving retry
  loop treats exactly like a stale epoch.
* **inline bytes** (``use_shm=False``) — the blob rides inside the task,
  the PR 4 behaviour, kept for caller-owned executors and as the pickle
  contract exercised by ``tests/test_exec_pickle.py``.

Pool processes are private to one :class:`AsyncAnswerer`, so epochs never
mix across managers.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.exec.faults import fault_point
from repro.exec.shm import PublishedBlob, attach_blob

if TYPE_CHECKING:
    from repro.core.online import AnswerResult


@dataclass(frozen=True, slots=True)
class AnswerBatchTask:
    """One serving micro-batch bound for a process worker.

    Exactly one of ``blob`` (inline pickled target) and ``segment`` (name
    of a shared-memory publish tagged with ``epoch``) is set.
    """

    epoch: int
    questions: tuple[str, ...]
    blob: bytes | None = None
    segment: str | None = None


# Worker-resident deserialized snapshot: (epoch, answer target).  One entry —
# an epoch bump obsoletes every older snapshot, so there is nothing to keep.
_SNAPSHOT: tuple[int, object] | None = None


def evaluate_frozen_batch(task: AnswerBatchTask) -> list["AnswerResult"]:
    """Worker entry point: thaw (or reuse) the snapshot, answer the batch.

    In segment mode the unpickle reads straight out of the shared mapping
    (no blob copy); a vanished segment raises
    :class:`~repro.exec.shm.SegmentUnavailable` back through the result
    pipe, which the dispatcher converts into a fresh-epoch retry.
    """
    fault_point("exec.worker.batch")
    global _SNAPSHOT
    snapshot = _SNAPSHOT
    if snapshot is None or snapshot[0] != task.epoch:
        if task.segment is not None:
            buffer: object = attach_blob(task.segment, expected_tag=task.epoch).data
        else:
            buffer = task.blob
        snapshot = (task.epoch, pickle.loads(buffer))
        _SNAPSHOT = snapshot
    return snapshot[1].answer_many(list(task.questions))


def freeze_target(target: object) -> bytes:
    """Pickle the answerable core of ``target``.

    A ``KBQA`` system freezes through its ``answerer`` (the facade itself
    carries process-local wiring — backend subscriptions, the live
    maintainer — that a shared-nothing worker must not and cannot hold); any
    other target with ``answer_many`` pickles as-is.
    """
    answerer = getattr(target, "answerer", None)
    if answerer is not None and hasattr(answerer, "answer_many"):
        target = answerer
    return pickle.dumps(target, protocol=pickle.HIGHEST_PROTOCOL)


class SnapshotManager:
    """Caches the frozen state of one target, re-freezing per epoch.

    The serving dispatcher asks for the task of the epoch it will compare
    against after evaluation; the state handed out is always frozen at (or
    after) that epoch's mutations (a mutation racing in *after* the freeze
    just bumps the epoch again and triggers the stale-batch retry).

    A large system's ``pickle.dumps`` is not cheap, so :meth:`freeze` is
    thread-safe and meant to be called *off* the event loop (the serving
    layer runs it on a side thread); :meth:`cached_task` is the loop-side
    fast path that never serializes.

    With ``use_shm=True`` each freeze also *publishes* the blob into a
    shared-memory segment, and tasks reference it by name instead of
    carrying the bytes.  :meth:`close` unlinks every live segment — leaked
    ``/dev/shm`` entries after close are a bug
    (``tests/test_exec_concurrency.py`` asserts none).
    """

    def __init__(self, target: object, *, use_shm: bool = False) -> None:
        self.target = target
        self.use_shm = use_shm
        self._epoch: int | None = None
        self._blob: bytes | None = None
        self._segment: PublishedBlob | None = None
        self._retired: PublishedBlob | None = None
        self._lock = threading.Lock()
        self.refreezes = 0
        self.publishes = 0

    def _task(self, epoch: int, questions: Sequence[str]) -> AnswerBatchTask:
        if self.use_shm:
            assert self._segment is not None
            return AnswerBatchTask(
                epoch=epoch, questions=tuple(questions), segment=self._segment.name
            )
        return AnswerBatchTask(epoch=epoch, questions=tuple(questions), blob=self._blob)

    def cached_task(
        self, epoch: int, questions: Sequence[str]
    ) -> AnswerBatchTask | None:
        """A task for state already frozen at ``epoch``, or None (never
        serializes — safe on the event loop)."""
        with self._lock:
            if self._epoch != epoch:
                return None
            if (self._segment is None) if self.use_shm else (self._blob is None):
                return None
            return self._task(epoch, questions)

    def freeze(self, epoch: int) -> bytes:
        """Freeze now (or reuse the state already frozen for ``epoch``).

        Concurrent callers for the same epoch serialize on the lock; the
        loser reuses the winner's freeze instead of pickling twice.  In
        shared-memory mode the previous epoch's segment is *retired* (still
        attachable) and the one retired before that is unlinked — in-flight
        batches of epoch N-1 keep working while N dispatches.
        """
        stale: PublishedBlob | None = None
        with self._lock:
            if self._epoch != epoch or (self._blob is None and self._segment is None):
                blob = freeze_target(self.target)
                self._epoch = epoch
                self.refreezes += 1
                if self.use_shm:
                    stale, self._retired = self._retired, self._segment
                    self._segment = PublishedBlob(blob, tag=epoch)
                    self.publishes += 1
                    self._blob = None
                else:
                    self._blob = blob
            result = self._blob if not self.use_shm else b""
        if stale is not None:
            stale.unlink()
        assert result is not None
        return result

    def task_for(self, epoch: int, questions: Sequence[str]) -> AnswerBatchTask:
        """Build the micro-batch task for one dispatch at ``epoch``
        (freezing/publishing first if needed)."""
        self.freeze(epoch)
        with self._lock:
            return self._task(epoch, questions)

    def close(self) -> None:
        """Unlink every published segment and drop the cache (idempotent)."""
        with self._lock:
            segments = [s for s in (self._segment, self._retired) if s is not None]
            self._segment = None
            self._retired = None
            self._blob = None
            self._epoch = None
        for segment in segments:
            segment.unlink()

    # -- Introspection -----------------------------------------------------

    def segment_name(self) -> str | None:
        """Name of the currently published segment (None when not in
        shared-memory mode or before the first freeze)."""
        with self._lock:
            return self._segment.name if self._segment is not None else None
