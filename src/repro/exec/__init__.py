"""Process-parallel execution layer: one executor protocol, three backends.

* :mod:`repro.exec.backend` — :class:`Executor` protocol with
  :class:`SerialExecutor` / :class:`ThreadExecutor` /
  :class:`ProcessExecutor`, plus the uniform selection rules
  (explicit arg > ``KBQA_EXEC``/``KBQA_WORKERS`` environment > default,
  worker counts always clamped to >= 1);
* :mod:`repro.exec.pool` — :class:`ExecutorPool`, the persistent lease:
  warm workers reused across calls plus generation-tagged shared-memory
  payload publication (owned by ``KBQA`` / ``KBQAServer``);
* :mod:`repro.exec.shm` — the zero-copy blob transport over
  ``multiprocessing.shared_memory`` (publish once per change, attach by
  name, unpickle in place);
* :mod:`repro.exec.tasks` — picklable frozen shard-scan payloads for the
  Sec 6.2 expansion (``repro.kb.expansion`` routes its per-round fan-out
  through them);
* :mod:`repro.exec.snapshot` — epoch-tagged frozen answerer snapshots for
  process-pool serving (``repro.serve.async_answerer`` dispatches
  micro-batches through them; shared-memory publication per epoch);
* :mod:`repro.exec.faults` — the deterministic fault-injection harness
  (``KBQA_FAULTS``): named fault points in workers, replicas and the shm
  transport that can kill/exit/sleep/raise on demand, inherited across
  ``fork`` so chaos tests steer crashes from the parent.
"""

from repro.exec.backend import (
    EXEC_ENV,
    EXEC_KINDS,
    WORKERS_ENV,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    bind_to_parent_death,
    make_executor,
    resolve_exec_kind,
    resolve_workers,
    worker_payload,
)
from repro.exec.faults import (
    FAULTS_ENV,
    Fault,
    fault_point,
    faults_active,
    inject_faults,
    parse_faults,
)
from repro.exec.pool import ExecutorPool
from repro.exec.shm import (
    AttachedBlob,
    PublishedBlob,
    SegmentUnavailable,
    attach_blob,
    sweep_orphans,
)
from repro.exec.snapshot import (
    AnswerBatchTask,
    SnapshotManager,
    evaluate_frozen_batch,
    freeze_target,
)
from repro.exec.tasks import (
    ShardScanResult,
    ShardScanTask,
    scan_shard,
    split_frontier_by_shard,
)

__all__ = [
    "AnswerBatchTask",
    "AttachedBlob",
    "EXEC_ENV",
    "EXEC_KINDS",
    "Executor",
    "ExecutorPool",
    "FAULTS_ENV",
    "Fault",
    "ProcessExecutor",
    "PublishedBlob",
    "SegmentUnavailable",
    "SerialExecutor",
    "ShardScanResult",
    "ShardScanTask",
    "SnapshotManager",
    "ThreadExecutor",
    "WORKERS_ENV",
    "attach_blob",
    "bind_to_parent_death",
    "evaluate_frozen_batch",
    "fault_point",
    "faults_active",
    "freeze_target",
    "inject_faults",
    "make_executor",
    "parse_faults",
    "resolve_exec_kind",
    "resolve_workers",
    "scan_shard",
    "split_frontier_by_shard",
    "sweep_orphans",
    "worker_payload",
]
