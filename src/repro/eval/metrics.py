"""Evaluation metrics (Sec 7.3.1).

QALD-style accounting distinguishes *processed* (``#pro`` — the system
committed to a predicate and returned a non-null reading), *right*
(``#ri``) and *partially right* (``#par``) answers:

    ``P = #ri/#pro``, ``P* = (#ri+#par)/#pro``,
    ``R = #ri/#total``, ``R* = (#ri+#par)/#total``,
    ``R_BFQ = #ri/#BFQ`` (recall against the answerable subset).

*Partially right* follows the paper's predicate-level reading: a prediction
whose predicate is a sibling of the gold one (``place of birth`` for a
residence question) or whose value set overlaps the gold set without
matching it.

WebQuestions-style metrics are the official-script style macro averages:
per-question precision/recall/F1 over answer sets, plus ``p@1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Judgement(Enum):
    """Right / partially right / wrong, the paper's three verdicts."""

    RIGHT = "right"
    PARTIAL = "partial"
    WRONG = "wrong"


def judge(
    predicted_values: set[str],
    gold_values: set[str],
    predicted_intent: str | None = None,
    gold_intent: str | None = None,
    related_intents: tuple[str, ...] = (),
) -> Judgement:
    """Judge one answered question.

    Intent identity wins outright (the paper judges KBQA by the predicate it
    finds); otherwise exact value-set match is right, sibling intents and
    value overlap are partial.
    """
    if gold_intent is not None and predicted_intent is not None:
        if predicted_intent == gold_intent:
            return Judgement.RIGHT
        if predicted_intent in related_intents:
            return Judgement.PARTIAL
    normalized_predicted = {v.lower() for v in predicted_values}
    normalized_gold = {v.lower() for v in gold_values}
    if normalized_gold and normalized_predicted == normalized_gold:
        return Judgement.RIGHT
    if normalized_gold & normalized_predicted:
        return Judgement.PARTIAL
    return Judgement.WRONG


@dataclass
class QALDMetrics:
    """Counter set producing every column of Tables 7-9 and 11."""

    n_total: int = 0
    n_bfq: int = 0
    processed: int = 0
    right: int = 0
    partial: int = 0
    processed_bfq: int = 0
    right_bfq: int = 0
    partial_bfq: int = 0

    def record(self, is_bfq: bool, processed: bool, judgement: Judgement | None) -> None:
        """Tally one evaluated question."""
        self.n_total += 1
        if is_bfq:
            self.n_bfq += 1
        if not processed:
            return
        self.processed += 1
        if is_bfq:
            self.processed_bfq += 1
        if judgement == Judgement.RIGHT:
            self.right += 1
            if is_bfq:
                self.right_bfq += 1
        elif judgement == Judgement.PARTIAL:
            self.partial += 1
            if is_bfq:
                self.partial_bfq += 1

    # -- Paper metrics --------------------------------------------------------

    @property
    def precision(self) -> float:
        return _ratio(self.right, self.processed)

    @property
    def precision_star(self) -> float:
        return _ratio(self.right + self.partial, self.processed)

    @property
    def recall(self) -> float:
        return _ratio(self.right, self.n_total)

    @property
    def recall_star(self) -> float:
        return _ratio(self.right + self.partial, self.n_total)

    @property
    def recall_bfq(self) -> float:
        return _ratio(self.right, self.n_bfq)

    @property
    def recall_star_bfq(self) -> float:
        return _ratio(self.right + self.partial, self.n_bfq)

    @property
    def precision_bfq(self) -> float:
        return _ratio(self.right_bfq, self.processed_bfq)

    @property
    def precision_star_bfq(self) -> float:
        return _ratio(self.right_bfq + self.partial_bfq, self.processed_bfq)

    def as_row(self) -> dict[str, float | int]:
        """The Table 7/8 column set."""
        return {
            "#pro": self.processed,
            "#ri": self.right,
            "#par": self.partial,
            "R": round(self.recall, 2),
            "R_BFQ": round(self.recall_bfq, 2),
            "R*": round(self.recall_star, 2),
            "R*_BFQ": round(self.recall_star_bfq, 2),
            "P": round(self.precision, 2),
            "P*": round(self.precision_star, 2),
        }


@dataclass
class WebQMetrics:
    """Macro-averaged set metrics in the WebQuestions official-script style."""

    f1_scores: list[float] = field(default_factory=list)
    precisions: list[float] = field(default_factory=list)
    recalls: list[float] = field(default_factory=list)
    top1_hits: int = 0
    n_total: int = 0
    n_answered: int = 0

    def record(
        self,
        predicted_values: set[str],
        top_value: str | None,
        gold_values: set[str],
    ) -> None:
        """Tally one question's answer set against its gold set."""
        self.n_total += 1
        predicted = {v.lower() for v in predicted_values}
        gold = {v.lower() for v in gold_values}
        if predicted:
            self.n_answered += 1
        overlap = len(predicted & gold)
        precision = overlap / len(predicted) if predicted else 0.0
        recall = overlap / len(gold) if gold else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        self.f1_scores.append(f1)
        self.precisions.append(precision)
        self.recalls.append(recall)
        if top_value is not None and top_value.lower() in gold:
            self.top1_hits += 1

    @property
    def f1(self) -> float:
        return _mean(self.f1_scores)

    @property
    def precision(self) -> float:
        """Macro precision over *answered* questions (the paper's P column
        is answered-question precision: KBQA scores 0.85 there)."""
        if self.n_answered == 0:
            return 0.0
        return sum(self.precisions) / self.n_answered

    @property
    def recall(self) -> float:
        return _mean(self.recalls)

    @property
    def precision_at_1(self) -> float:
        return _ratio(self.top1_hits, self.n_total)


def _ratio(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0
