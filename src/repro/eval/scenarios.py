"""Scenario harness: serving-realism axes over a streamed mega build.

Binds a trained small-suite model to a :func:`~repro.corpus.mega.compile_mega`
artifact and drives the serving stack through four stress axes, each
reporting **recall** (gold answers that came back exactly right) plus
**p50/p99 latency**:

* ``skew`` — Zipf hot-set traffic (:func:`repro.serve.loadgen.build_zipf_stream`)
  at an offered Poisson rate through :class:`AsyncAnswerer`; recall over
  every checked completion must be 1.0 on the gold non-paraphrase set.
* ``churn`` — sustained fact writes (the ``churn`` gold rows' height
  literals flip through :meth:`AsyncAnswerer.apply`'s write-quiescence
  seam) while plain gold queries stream; recall on the *non-churned* gold
  must hold at 1.0 — writes may slow answers, never corrupt them.
* ``temporal`` — supersession: each ``temporal`` gold row's residence fact
  is replaced (delete old + add new) through ``apply``; the harness asserts
  the pre-edit answer is the old value and the post-edit answer is the new
  one — the *fresh fact wins*.
* ``paraphrase`` — adversarial surface perturbation.  Benign unicode
  rewrites (curly apostrophes, unicode dashes, fullwidth ``？``, NBSP,
  stripped diacritics) must fold to the identical token stream and answer
  correctly; held-out rewordings the templates never saw must *abstain*
  rather than answer wrongly — the axis reports the abstention rate and
  counts any wrong answer against recall.  With ``spec.fallback`` the axis
  adds a **recovery cell**: the same benign + held-out traffic replayed
  through a second answerer with the semantic fallback lane enabled — the
  held-out questions the deterministic lane abstains on should now come
  back *correct* (``recovered``), wrong recoveries are counted, and the
  benign set must stay exactly right (the lane never touches an answered
  question).

The model binding deliberately mirrors production: the system is trained on
the ordinary small suite (surfaces/templates), then pointed at the mega KB
through a :class:`~repro.core.kbview.KBView` with **no expansion** — lookups
run as indexed point queries per hop (`follow`), which is what makes
million-triple serving tractable without a million-triple expansion pass.
The gazetteer and conceptualizer are extended with the gold working set
(entity name -> node, entity -> concept weights) exactly as an entity-linking
sidecar would populate them.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.fallback import FallbackConfig, FallbackIndex
from repro.core.kbview import KBView
from repro.core.online import OnlineAnswerer
from repro.core.system import KBQA
from repro.corpus.mega import iter_gold, load_manifest
from repro.corpus.qa import QAPair
from repro.kb.disk import DiskTripleStore
from repro.nlp.ner import EntityRecognizer
from repro.serve.async_answerer import AsyncAnswerer, ServeConfig, normalized_key
from repro.serve.loadgen import (
    build_zipf_stream,
    latency_percentiles,
    run_open_load,
)
from repro.suite import build_suite

ALL_AXES = ("skew", "churn", "temporal", "paraphrase")


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One scenario sweep: shared traffic knobs across the axes."""

    axes: tuple[str, ...] = ALL_AXES
    requests: int = 400  # open-loop arrivals for skew/churn
    rate_qps: float = 200.0
    zipf_exponent: float = 1.1
    seed: int = 7
    max_gold: int = 512  # cap on gold rows loaded per kind
    churn_writes: int = 32
    temporal_edits: int = 12
    paraphrase_queries: int = 48
    workers: int = 2
    max_batch: int = 8
    fallback: bool = False  # add the paraphrase axis's recovery cell
    fallback_threshold: float | None = None  # None = the lane's default

    def __post_init__(self) -> None:
        if self.fallback_threshold is not None and not (
            0.0 < self.fallback_threshold <= 1.0
        ):
            raise ValueError(
                f"fallback_threshold must be in (0, 1], got {self.fallback_threshold}"
            )
        for axis in self.axes:
            if axis not in ALL_AXES:
                raise ValueError(f"unknown axis {axis!r}; pick from {ALL_AXES}")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.rate_qps <= 0:
            raise ValueError(f"rate_qps must be > 0, got {self.rate_qps}")
        if self.max_gold < 8:
            raise ValueError(f"max_gold must be >= 8, got {self.max_gold}")


@dataclass
class ScenarioBinding:
    """The trained system bound to a mega build's store + gold working set."""

    target: OnlineAnswerer
    store: DiskTripleStore
    gold: dict[str, list[QAPair]]  # kind -> rows
    expected: dict  # normalized question key -> answer value tuple
    manifest: dict
    # a second answerer sharing the store/NER/model with the semantic
    # fallback lane enabled (None unless spec.fallback) — the paraphrase
    # axis replays its traffic through this one for the recovery cell
    fallback_target: OnlineAnswerer | None = None

    def close(self) -> None:
        self.store.close()


def _load_gold(out_dir: str | Path, max_per_kind: int) -> dict[str, list[QAPair]]:
    gold: dict[str, list[QAPair]] = {"plain": [], "temporal": [], "churn": []}
    for pair in iter_gold(out_dir):
        rows = gold.setdefault(pair.meta["kind"], [])
        if len(rows) < max_per_kind:
            rows.append(pair)
        if all(len(rows) >= max_per_kind for rows in gold.values()):
            break
    if not gold["plain"]:
        raise ValueError(f"{out_dir}: gold.jsonl has no plain rows")
    return gold


def bind_scenarios(
    mega_dir: str | Path, spec: ScenarioSpec = ScenarioSpec()
) -> ScenarioBinding:
    """Open a finished mega build and bind the trained model to it.

    Caches are disabled on the bound answerer (``answer_cache_size=0``,
    ``lookup_cache_size=0``): the churn and temporal axes measure the
    *store's* freshness contract, and a hit cache would measure itself.
    """
    manifest = load_manifest(mega_dir)
    kb_path = manifest.get("kb_path")
    if not kb_path:
        raise ValueError(
            f"{mega_dir}: manifest has no kb_path (memory-backend builds "
            "cannot be re-opened; compile with backend='disk')"
        )
    gold = _load_gold(mega_dir, spec.max_gold)

    suite = build_suite("small", seed=manifest["seed"])
    system = KBQA.train(suite.freebase, suite.corpus, suite.conceptualizer)

    # working-set entity linking: gold display names -> nodes, gold
    # entity -> concept weights into the trained conceptualizer's network
    gazetteer: dict[str, list[str]] = {}
    network = system.conceptualizer.network
    for rows in gold.values():
        for pair in rows:
            gazetteer[pair.meta["name"]] = [pair.meta["node"]]
            for concept, weight in pair.meta["concepts"]:
                network.add(pair.meta["node"], concept, weight)

    store = DiskTripleStore(kb_path)
    kbview = KBView(store, expanded=None)
    ner = EntityRecognizer(gazetteer)
    target = OnlineAnswerer(
        kbview,
        ner,
        system.conceptualizer,
        system.model,
        answer_cache_size=0,
        lookup_cache_size=0,
    )
    fallback_target: OnlineAnswerer | None = None
    if spec.fallback:
        fb_config = (
            FallbackConfig(threshold=spec.fallback_threshold)
            if spec.fallback_threshold is not None
            else FallbackConfig()
        )
        fallback_target = OnlineAnswerer(
            kbview,
            ner,
            system.conceptualizer,
            system.model,
            answer_cache_size=0,
            lookup_cache_size=0,
            fallback=FallbackIndex.build(system.model, fb_config),
        )
    expected = {
        normalized_key(pair.question): tuple(pair.meta["values"])
        for rows in gold.values()
        for pair in rows
    }
    return ScenarioBinding(
        target=target,
        store=store,
        gold=gold,
        expected=expected,
        manifest=manifest,
        fallback_target=fallback_target,
    )


def _recall(checked: int, incorrect: int) -> float | None:
    if checked <= 0:
        return None
    return round((checked - incorrect) / checked, 4)


def _serve_config(spec: ScenarioSpec) -> ServeConfig:
    return ServeConfig(
        workers=spec.workers,
        max_batch=spec.max_batch,
        max_pending=max(256, spec.requests),
    )


async def _axis_skew(binding: ScenarioBinding, spec: ScenarioSpec) -> dict:
    questions = [pair.question for pair in binding.gold["plain"]]
    stream = build_zipf_stream(
        questions, spec.requests, exponent=spec.zipf_exponent, seed=spec.seed
    )
    async with AsyncAnswerer(binding.target, _serve_config(spec)) as answerer:
        result = await run_open_load(
            answerer, stream, spec.rate_qps, seed=spec.seed, expected=binding.expected
        )
    return {
        "requests": result["requests"],
        "completed": result["completed"],
        "checked": result["checked"],
        "incorrect": result["incorrect"],
        "recall": _recall(result["checked"], result["incorrect"]),
        "zipf_exponent": spec.zipf_exponent,
        "offered_qps": result["offered_qps"],
        "p50_ms": result["p50_ms"],
        "p99_ms": result["p99_ms"],
    }


async def _axis_churn(binding: ScenarioBinding, spec: ScenarioSpec) -> dict:
    """Open-loop reads over plain gold while churn rows' facts flip."""
    questions = [pair.question for pair in binding.gold["plain"]]
    stream = build_zipf_stream(
        questions, spec.requests, exponent=spec.zipf_exponent, seed=spec.seed + 1
    )
    churn_rows = binding.gold["churn"]
    if not churn_rows:
        raise ValueError("mega build has no churn gold rows")
    store = binding.store
    writes_applied = 0

    async def writer(answerer: AsyncAnswerer) -> None:
        nonlocal writes_applied
        # flip each target old->new->old...; even write counts restore the
        # compiled state, so the build stays reusable across runs
        gap_s = max(0.002, spec.requests / spec.rate_qps / max(1, spec.churn_writes))
        for i in range(spec.churn_writes):
            mutate = churn_rows[i % len(churn_rows)].meta["mutate"]
            flip = (i // len(churn_rows)) % 2
            old = mutate["old_object"] if flip == 0 else mutate["new_object"]
            new = mutate["new_object"] if flip == 0 else mutate["old_object"]
            subject, predicate = mutate["subject"], mutate["predicate"]

            def edit() -> None:
                store.delete(subject, predicate, old)
                store.add(subject, predicate, new)

            await answerer.apply(edit)
            writes_applied += 1
            await asyncio.sleep(gap_s)

    async with AsyncAnswerer(binding.target, _serve_config(spec)) as answerer:
        writer_task = asyncio.ensure_future(writer(answerer))
        result = await run_open_load(
            answerer,
            stream,
            spec.rate_qps,
            seed=spec.seed + 1,
            expected=binding.expected,
        )
        await writer_task
        # restore compiled state if the flip count left targets mutated
        for i, pair in enumerate(churn_rows):
            flips = sum(
                1 for w in range(spec.churn_writes) if w % len(churn_rows) == i
            )
            if flips % 2:
                mutate = pair.meta["mutate"]

                def restore(mutate=mutate) -> None:
                    store.delete(
                        mutate["subject"], mutate["predicate"], mutate["new_object"]
                    )
                    store.add(
                        mutate["subject"], mutate["predicate"], mutate["old_object"]
                    )

                await answerer.apply(restore)
    return {
        "requests": result["requests"],
        "completed": result["completed"],
        "checked": result["checked"],
        "incorrect": result["incorrect"],
        "recall": _recall(result["checked"], result["incorrect"]),
        "writes_applied": writes_applied,
        "offered_qps": result["offered_qps"],
        "p50_ms": result["p50_ms"],
        "p99_ms": result["p99_ms"],
    }


async def _axis_temporal(binding: ScenarioBinding, spec: ScenarioSpec) -> dict:
    """Supersede facts one by one; the fresh answer must win immediately."""
    rows = binding.gold["temporal"][: spec.temporal_edits]
    if not rows:
        raise ValueError("mega build has no temporal gold rows")
    store = binding.store
    latencies_ms: list[float] = []
    stale_before = 0  # pre-edit answer != compiled (old) value
    stale_after = 0  # post-edit answer != superseded (new) value
    edits = 0

    async def ask(answerer: AsyncAnswerer, question: str) -> tuple[tuple, float]:
        start = time.perf_counter()
        result = await answerer.answer(question)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        values = tuple(sorted(result.values)) if result.answered else ()
        return values, elapsed_ms

    async with AsyncAnswerer(binding.target, _serve_config(spec)) as answerer:
        for pair in rows:
            edit = pair.meta["supersede"]
            subject, predicate = edit["subject"], edit["predicate"]

            before, ms = await ask(answerer, pair.question)
            latencies_ms.append(ms)
            if before != (edit["old_value"],):
                stale_before += 1

            def supersede() -> None:
                store.delete(subject, predicate, edit["old_object"])
                store.add(subject, predicate, edit["new_object"])

            await answerer.apply(supersede)
            edits += 1

            after, ms = await ask(answerer, pair.question)
            latencies_ms.append(ms)
            if after != (edit["new_value"],):
                stale_after += 1
    checked = 2 * len(rows)
    incorrect = stale_before + stale_after
    return {
        "edits": edits,
        "checked": checked,
        "incorrect": incorrect,
        "stale_after_edit": stale_after,
        "recall": _recall(checked, incorrect),
        **{k: latency_percentiles(latencies_ms)[k] for k in ("p50_ms", "p99_ms")},
    }


# -- Paraphrase axis --------------------------------------------------------

# benign rewrites: must fold to the identical token stream (tokenizer
# satellite), hence identical answers
_BENIGN_REWRITES = (
    lambda q: q.replace("'s", "’s"),  # curly apostrophe
    lambda q: q.replace("?", "？"),  # fullwidth question mark
    lambda q: q.replace(" ", "\u00a0", 1),  # NBSP as first separator
    lambda q: q.replace("was", "was—", 1).replace("—", " – ", 1),
)

# held-out rewordings: surfaces the template model never trained on — the
# deterministic path should abstain, not guess
_HELDOUT_REWRITES = (
    lambda q: "regarding " + q.rstrip("?") + ", any thoughts?",
    lambda q: q.rstrip("?") + " or not?",
    lambda q: "quick trivia: " + q,
)


def _diacritic_strip(question: str) -> str:
    """ASCII-only rendition of a diacritic-bearing name (José -> Jose)."""
    import unicodedata

    decomposed = unicodedata.normalize("NFD", question)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


async def _axis_paraphrase(binding: ScenarioBinding, spec: ScenarioSpec) -> dict:
    rows = binding.gold["plain"][: spec.paraphrase_queries]
    latencies_ms: list[float] = []
    benign_checked = benign_incorrect = 0
    heldout_total = heldout_wrong = heldout_abstained = 0

    async def ask(answerer: AsyncAnswerer, question: str):
        start = time.perf_counter()
        result = await answerer.answer(question)
        latencies_ms.append((time.perf_counter() - start) * 1000.0)
        return result

    async with AsyncAnswerer(binding.target, _serve_config(spec)) as answerer:
        for i, pair in enumerate(rows):
            reference = tuple(pair.meta["values"])
            benign = _BENIGN_REWRITES[i % len(_BENIGN_REWRITES)](pair.question)
            if i % 2:  # alternate in the diacritic-stripped rendition
                benign = _diacritic_strip(benign)
            result = await ask(answerer, benign)
            benign_checked += 1
            values = tuple(sorted(result.values)) if result.answered else ()
            if values != reference:
                benign_incorrect += 1

            heldout = _HELDOUT_REWRITES[i % len(_HELDOUT_REWRITES)](pair.question)
            result = await ask(answerer, heldout)
            heldout_total += 1
            if not result.answered:
                heldout_abstained += 1
            elif tuple(sorted(result.values)) != reference:
                heldout_wrong += 1
    row = {
        "checked": benign_checked,
        "incorrect": benign_incorrect,
        "recall": _recall(benign_checked, benign_incorrect),
        "heldout_total": heldout_total,
        "heldout_abstained": heldout_abstained,
        "heldout_wrong": heldout_wrong,
        "abstention_rate": (
            round(heldout_abstained / heldout_total, 4) if heldout_total else None
        ),
        **{k: latency_percentiles(latencies_ms)[k] for k in ("p50_ms", "p99_ms")},
    }
    if binding.fallback_target is not None:
        row["fallback"] = await _paraphrase_recovery(binding, spec, rows)
    return row


async def _paraphrase_recovery(
    binding: ScenarioBinding, spec: ScenarioSpec, rows: list[QAPair]
) -> dict:
    """The recovery cell: the same paraphrase traffic, fallback lane on.

    Held-out rewordings the deterministic lane abstains on should now come
    back correct (``recovered``, each tagged ``fallback=True``); incorrect
    recoveries count as ``wrong``; the benign set must stay exactly right —
    an answered question never consults the lane, so ``benign_incorrect``
    above zero means the equivalence contract broke.
    """
    target = binding.fallback_target
    assert target is not None
    benign_checked = benign_incorrect = 0
    heldout_total = recovered = wrong = abstained = 0
    async with AsyncAnswerer(target, _serve_config(spec)) as answerer:
        for i, pair in enumerate(rows):
            reference = tuple(pair.meta["values"])
            benign = _BENIGN_REWRITES[i % len(_BENIGN_REWRITES)](pair.question)
            if i % 2:
                benign = _diacritic_strip(benign)
            result = await answerer.answer(benign)
            benign_checked += 1
            values = tuple(sorted(result.values)) if result.answered else ()
            if values != reference:
                benign_incorrect += 1

            heldout = _HELDOUT_REWRITES[i % len(_HELDOUT_REWRITES)](pair.question)
            result = await answerer.answer(heldout)
            heldout_total += 1
            if not result.answered:
                abstained += 1
            elif tuple(sorted(result.values)) == reference:
                recovered += 1
            else:
                wrong += 1
        stats = answerer.snapshot()
    index = target.fallback_index
    assert index is not None
    return {
        "threshold": index.config.threshold,
        "margin": index.config.margin,
        "paths": len(index),
        "heldout_total": heldout_total,
        "recovered": recovered,
        "wrong": wrong,
        "abstained": abstained,
        "recall": round(recovered / heldout_total, 4) if heldout_total else None,
        "benign_checked": benign_checked,
        "benign_incorrect": benign_incorrect,
        "fallback_served": stats["fallback_served"],
        "fallback_abstained": stats["fallback_abstained"],
    }


_AXIS_RUNNERS = {
    "skew": _axis_skew,
    "churn": _axis_churn,
    "temporal": _axis_temporal,
    "paraphrase": _axis_paraphrase,
}


def run_scenarios(
    mega_dir: str | Path, spec: ScenarioSpec = ScenarioSpec()
) -> dict:
    """Run the requested axes against a finished mega build.

    Returns ``{"mega": accounting, "axes": {axis: metrics}}``; every axis
    carries ``recall`` plus ``p50_ms``/``p99_ms``.  The caller (CLI
    ``kbqa scenario --assert-recall``, CI smoke leg) decides whether a
    recall below 1.0 on the non-paraphrase axes is fatal.
    """
    binding = bind_scenarios(mega_dir, spec)
    try:

        async def _run() -> dict:
            axes: dict[str, dict] = {}
            for axis in spec.axes:
                axes[axis] = await _AXIS_RUNNERS[axis](binding, spec)
            return axes

        axes = asyncio.run(_run())
    finally:
        binding.close()
    manifest = binding.manifest
    return {
        "mega": {
            "triples": manifest["triples"],
            "gold_rows": manifest["gold_rows"],
            "chunks": manifest["chunks"],
            "peak_resident_entities": manifest["peak_resident_entities"],
            "ru_maxrss_kb": manifest.get("ru_maxrss_kb"),
        },
        "axes": axes,
    }
