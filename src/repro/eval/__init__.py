"""Evaluation harness: QALD-style and WebQuestions-style metrics and runners."""

from repro.eval.metrics import Judgement, QALDMetrics, WebQMetrics, judge
from repro.eval.runner import evaluate_qald, evaluate_webquestions, EvalRecord

__all__ = [
    "Judgement",
    "QALDMetrics",
    "WebQMetrics",
    "judge",
    "evaluate_qald",
    "evaluate_webquestions",
    "EvalRecord",
]
