"""Run a QA system over a benchmark and aggregate metrics.

Any object with ``answer(question) -> AnswerResult`` evaluates here — KBQA,
every baseline and the hybrid composition share the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.online import AnswerResult
from repro.corpus.benchmark import Benchmark, BenchmarkQuestion
from repro.data.compile import CompiledKB
from repro.data.world import SCHEMA_BY_INTENT
from repro.eval.metrics import Judgement, QALDMetrics, WebQMetrics, judge


@dataclass(frozen=True, slots=True)
class EvalRecord:
    """Per-question evaluation trace (kept for error analysis)."""

    question: BenchmarkQuestion
    result: AnswerResult
    judgement: Judgement | None
    processed: bool


def evaluate_qald(
    system,
    benchmark: Benchmark,
    kb: CompiledKB | None = None,
) -> tuple[QALDMetrics, list[EvalRecord]]:
    """QALD-style evaluation (Tables 7, 8, 9, 11).

    When ``kb`` is given, the predicted predicate path is mapped back to an
    intent so judging can follow the paper's predicate-level convention;
    otherwise judging is value-set only.
    """
    metrics = QALDMetrics()
    records: list[EvalRecord] = []
    for bq in benchmark.questions:
        result = system.answer(bq.question)
        processed = result.answered
        judgement: Judgement | None = None
        if processed:
            predicted_intent = None
            related: tuple[str, ...] = ()
            if kb is not None and result.predicate is not None:
                predicted_intent = kb.intent_of(result.predicate)
            if bq.gold_intent is not None:
                related = SCHEMA_BY_INTENT[bq.gold_intent].related
            judgement = judge(
                set(result.values),
                set(bq.gold_values),
                predicted_intent=predicted_intent,
                gold_intent=bq.gold_intent,
                related_intents=related,
            )
        metrics.record(bq.is_bfq, processed, judgement)
        records.append(EvalRecord(bq, result, judgement, processed))
    return metrics, records


def evaluate_webquestions(system, benchmark: Benchmark) -> tuple[WebQMetrics, list[EvalRecord]]:
    """WebQuestions-style evaluation (Table 10)."""
    metrics = WebQMetrics()
    records: list[EvalRecord] = []
    for bq in benchmark.questions:
        result = system.answer(bq.question)
        metrics.record(set(result.values), result.value, set(bq.gold_values))
        records.append(EvalRecord(bq, result, None, result.answered))
    return metrics, records
