"""Command-line interface: ``kbqa`` — build, train, answer, evaluate.

A thin front over the library so the whole pipeline is drivable from a
shell::

    kbqa demo --scale small "what is the population of mapleton?"
    kbqa train --scale small --kb freebase --model /tmp/model.json
    kbqa eval --scale small --benchmark qald3
    kbqa expand --scale small --save /tmp/expansion.kbqa
    kbqa answer --scale small --expansion /tmp/expansion.kbqa "..."
    kbqa serve --scale small --port 8080        # HTTP answer service

Every training command accepts ``--shards N`` (compile the KB into a
subject-sharded backend), ``--expansion PATH`` (resume from a persisted
predicate expansion instead of re-running the Sec 6.2 scan), and
``--exec serial|thread|process`` / ``--workers N`` (the execution backend
for the expansion scan and, under ``serve``, for evaluating answer batches;
defaults come from the ``KBQA_EXEC`` / ``KBQA_WORKERS`` environment).
"""

from __future__ import annotations

import argparse
import sys

from dataclasses import replace

from repro.core.fallback import DEFAULT_THRESHOLD
from repro.core.system import KBQA, KBQAConfig
from repro.exec.backend import EXEC_KINDS, resolve_exec_kind, resolve_workers
from repro.eval.runner import evaluate_qald
from repro.eval.scenarios import ALL_AXES
from repro.kb.backend import BACKEND_KINDS
from repro.kb.expansion import ExpandedStore
from repro.suite import build_suite
from repro.utils.tables import Table


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Real failures (an unreadable ``--expansion`` artifact, a config/artifact
    mismatch) exit 1 with a deterministic one-line message on stderr for
    *every* subcommand; unknown entities / empty answers are normal outcomes
    and exit 0.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    try:
        return args.handler(args)
    except (OSError, ValueError) as error:
        print(f"kbqa {args.command}: error: {error}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kbqa",
        description="KBQA reproduction (Cui et al., PVLDB 2017)",
    )
    parser.set_defaults(command=None)
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="train on a synthetic suite and answer questions")
    _common_args(demo)
    demo.add_argument("questions", nargs="+", help="questions to answer")
    demo.set_defaults(handler=_cmd_demo)

    answer = sub.add_parser(
        "answer", help="batch-answer BFQs through the serving caches"
    )
    _common_args(answer)
    answer.add_argument("questions", nargs="+", help="questions to answer")
    answer.add_argument(
        "--no-cache", action="store_true",
        help="disable the answer cache and lookup memoization",
    )
    answer.add_argument(
        "--repeat", type=int, default=1,
        help="answer the batch N times (cache warm-up demonstration)",
    )
    _fallback_args(answer)
    answer.set_defaults(handler=_cmd_answer)

    train = sub.add_parser("train", help="train and save a template model")
    _common_args(train)
    train.add_argument("--model", required=True, help="output path for the model JSON")
    train.set_defaults(handler=_cmd_train)

    evaluate = sub.add_parser("eval", help="evaluate KBQA on a benchmark")
    _common_args(evaluate)
    evaluate.add_argument(
        "--benchmark", default="qald3",
        choices=["qald1", "qald3", "qald5", "webquestions"],
    )
    evaluate.set_defaults(handler=_cmd_eval)

    stats = sub.add_parser("stats", help="print suite inventory statistics")
    _common_args(stats)
    stats.set_defaults(handler=_cmd_stats)

    expand = sub.add_parser(
        "expand",
        help="materialize the Sec 6.2 predicate expansion and save/load it",
    )
    _common_args(expand)
    expand.add_argument(
        "--save", metavar="PATH",
        help="run the expansion scan and persist the ExpandedStore to PATH",
    )
    expand.add_argument(
        "--load", metavar="PATH",
        help="reload a persisted ExpandedStore and print its inventory",
    )
    expand.add_argument(
        "--max-length", type=int, default=3,
        help="maximum expanded-predicate length k (paper default: 3)",
    )
    expand.add_argument(
        "--expanded-format", default=None, choices=["v1", "v2", "v3"],
        help="artifact format for --save: v1 (line JSON), v2 (mmap-ready "
             "struct-packed id arrays), or v3 (v2 plus sorted-offset "
             "indexes, served straight from the mmap); default: "
             "$KBQA_EXPANDED_FORMAT, else v1.  --load sniffs the format "
             "from the file",
    )
    expand.set_defaults(handler=_cmd_expand)

    compile_cmd = sub.add_parser(
        "compile",
        help="compile the synthetic KBs into a persistent on-disk store "
             "(later kbqa runs reopen it with --backend disk --db-dir DIR)",
    )
    _common_args(compile_cmd)
    compile_cmd.set_defaults(handler=_cmd_compile)

    decompose = sub.add_parser(
        "decompose", help="show a question's optimal decomposition (Sec 5)"
    )
    _common_args(decompose)
    decompose.add_argument("questions", nargs="+", help="questions to decompose")
    decompose.set_defaults(handler=_cmd_decompose)

    variants = sub.add_parser(
        "variants", help="answer ranking/comparison/listing/counting questions"
    )
    _common_args(variants)
    variants.add_argument("questions", nargs="+", help="variant questions to answer")
    variants.set_defaults(handler=_cmd_variants)

    serve = sub.add_parser(
        "serve",
        help="train and serve answers over HTTP (coalescing async front)",
    )
    _common_args(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="bind port (0 picks an ephemeral port; default: 8080)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16,
        help="max distinct questions per dispatched answer_many batch",
    )
    serve.add_argument(
        "--max-pending", type=int, default=256,
        help="admission bound: queued+executing evaluations before 503",
    )
    serve.add_argument(
        "--no-coalesce", action="store_true",
        help="disable duplicate-request coalescing (benchmark A/B)",
    )
    serve.add_argument(
        "--procs", type=int, default=1,
        help="server processes sharing the port via SO_REUSEPORT (each with "
             "its own event loop and executor; POSIX only; default: 1)",
    )
    serve.add_argument(
        "--smoke", action="store_true",
        help="start on an ephemeral port, run concurrent self-requests, "
             "assert clean shutdown, exit (the CI serving smoke test)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=0.0,
        help="default per-request deadline in ms (0 disables; requests past "
             "it get a 504; the X-KBQA-Deadline-Ms header overrides)",
    )
    serve.add_argument(
        "--slo-ms", type=float, default=0.0,
        help="p99 latency objective in ms for the adaptive controller "
             "(0 leaves it unset; --adaptive defaults it to 50)",
    )
    serve.add_argument(
        "--adaptive", action="store_true",
        help="run the SLO feedback controller: batch window / max batch / "
             "admission bound re-tune against the --slo-ms p99 target",
    )
    serve.add_argument(
        "--quota", metavar="RATE:BURST[;tenant=weight...]", default=None,
        help="per-tenant token-bucket admission keyed on the X-KBQA-Client "
             "header (e.g. '50:100;gold=4;free=1'; over-quota requests get "
             "a 429; /healthz is never throttled)",
    )
    _fallback_args(serve)
    serve.set_defaults(handler=_cmd_serve)

    mega = sub.add_parser(
        "mega-compile",
        help="stream-compile an N-triple mega world (kb.db + gold.jsonl + "
             "manifest.json) in bounded memory",
    )
    mega.add_argument("--out", required=True, metavar="DIR", help="output directory")
    mega.add_argument(
        "--triples", type=int, default=1_000_000,
        help="minimum triple count to compile (default: 1,000,000)",
    )
    mega.add_argument("--seed", type=int, default=7)
    mega.add_argument(
        "--chunk-people", type=int, default=4000,
        help="people minted per streaming chunk (bounds resident memory)",
    )
    mega.add_argument(
        "--chunk-cities", type=int, default=1000,
        help="cities minted per streaming chunk",
    )
    mega.add_argument(
        "--mega-backend", default="disk", choices=["disk", "memory"],
        help="triple store backend (memory is the equivalence-test path; "
             "it writes no kb.db)",
    )
    mega.add_argument(
        "--max-rss-mb", type=float, default=0.0,
        help="fail (exit 1) if process peak RSS exceeds this many MiB "
             "(0 disables; the bounded-memory assertion for CI)",
    )
    mega.set_defaults(handler=_cmd_mega_compile)

    scenario = sub.add_parser(
        "scenario",
        help="run the serving-realism scenario axes (skew / churn / "
             "temporal / paraphrase) against a finished mega build",
    )
    scenario.add_argument(
        "--mega", required=True, metavar="DIR",
        help="a directory produced by kbqa mega-compile",
    )
    scenario.add_argument(
        "--axes", default=",".join(ALL_AXES),
        help=f"comma-separated axes to run (default: {','.join(ALL_AXES)})",
    )
    scenario.add_argument(
        "--requests", type=int, default=400,
        help="open-loop arrivals for the skew/churn axes",
    )
    scenario.add_argument(
        "--rate-qps", type=float, default=200.0,
        help="offered Poisson arrival rate for the skew/churn axes",
    )
    scenario.add_argument("--seed", type=int, default=7)
    scenario.add_argument(
        "--assert-recall", action="store_true",
        help="exit 1 unless recall is 1.0 on every non-paraphrase axis "
             "(the CI gate: gold questions must come back exactly right)",
    )
    scenario.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    _fallback_args(scenario)
    scenario.set_defaults(handler=_cmd_scenario)

    shm_gc = sub.add_parser(
        "shm-gc",
        help="unlink kbqa-* shared-memory segments whose publisher is dead "
             "(leaked by SIGKILL'd runs; live publishes are never touched)",
    )
    shm_gc.set_defaults(handler=_cmd_shm_gc)
    return parser


def _common_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--scale", default="small", choices=["small", "default"])
    sub.add_argument("--seed", type=int, default=7)
    sub.add_argument("--kb", default="freebase", choices=["freebase", "dbpedia"])
    sub.add_argument(
        "--shards", type=int, default=1,
        help="number of subject shards for the KB backend (default: 1)",
    )
    sub.add_argument(
        "--backend", default=None, choices=list(BACKEND_KINDS),
        help="KB backend: memory (dict indexes), sharded (subject-partitioned "
             "memory), or disk (SQLite file, reopened across restarts) "
             "(default: $KBQA_BACKEND, else sharded when --shards > 1, "
             "else memory)",
    )
    sub.add_argument(
        "--db-dir", metavar="DIR", default=None,
        help="directory holding the disk backend's database files "
             "(<DIR>/freebase.db, <DIR>/dbpedia.db); omit for an ephemeral "
             "temp-file store.  See also: kbqa compile",
    )
    sub.add_argument(
        "--expansion", metavar="PATH", default=None,
        help="resume from a persisted expansion (kbqa expand --save) "
             "instead of re-running the Sec 6.2 scan",
    )
    sub.add_argument(
        "--exec", dest="exec_backend", default=None, choices=list(EXEC_KINDS),
        help="execution backend for the Sec 6.2 expansion scan and for "
             "serve's answer batches (default: $KBQA_EXEC, else thread "
             "fan-out on sharded KBs / serial otherwise)",
    )
    sub.add_argument(
        "--workers", type=int, default=None,
        help="worker count for the chosen backend, clamped to >= 1 "
             "(default: $KBQA_WORKERS, else a per-path default)",
    )


def _fallback_args(sub: argparse.ArgumentParser) -> None:
    """The semantic-fallback-lane flags (answer / serve / scenario)."""
    sub.add_argument(
        "--fallback", action="store_true",
        help="enable the semantic fallback lane: when the template match "
             "abstains, score the question embedding against the learned "
             "predicate paths behind a confidence gate (answers recovered "
             "this way are tagged fallback=true)",
    )
    sub.add_argument(
        "--fallback-threshold", type=float, default=None, metavar="COS",
        help="minimum cosine for a fallback answer (default: "
             f"{DEFAULT_THRESHOLD}; raise for fewer, safer recoveries)",
    )


def _suite_kwargs(args) -> dict:
    return dict(
        scale=args.scale,
        seed=args.seed,
        shards=args.shards,
        backend=getattr(args, "backend", None),
        db_dir=getattr(args, "db_dir", None),
    )


def _train_system(args, config: KBQAConfig | None = None) -> tuple[KBQA, object]:
    suite = build_suite(**_suite_kwargs(args))
    kb = suite.freebase if args.kb == "freebase" else suite.dbpedia
    expanded = None
    expansion_path = getattr(args, "expansion", None)
    if expansion_path:
        expanded = ExpandedStore.load(expansion_path)
    config = config or KBQAConfig()
    config = replace(
        config,
        learner=replace(
            config.learner,
            executor=getattr(args, "exec_backend", None) or config.learner.executor,
            workers=getattr(args, "workers", None) or config.learner.workers,
        ),
    )
    if getattr(args, "fallback", False):
        threshold = getattr(args, "fallback_threshold", None)
        config = replace(
            config,
            fallback=True,
            fallback_threshold=(
                threshold if threshold is not None else config.fallback_threshold
            ),
        )
    system = KBQA.train(kb, suite.corpus, suite.conceptualizer, config, expanded=expanded)
    return system, suite


def _cmd_demo(args) -> int:
    system, _suite = _train_system(args)
    for question in args.questions:
        result = system.answer_complex(question)
        if result.answered:
            print(f"Q: {question}")
            print(f"A: {result.value}  (all: {', '.join(result.values)})")
        else:
            print(f"Q: {question}")
            print("A: (no answer)")
    return 0


def _cmd_answer(args) -> int:
    """Batch answering with deterministic non-crash handling.

    An unknown entity or an empty answer set is a *normal* outcome — it
    prints ``A: (no answer)`` and the command still exits 0.  Only real
    failures (an unreadable ``--expansion`` file, an internal error) exit
    nonzero, with the message on stderr.
    """
    import time

    config = (
        KBQAConfig(answer_cache_size=0, lookup_cache_size=0)
        if args.no_cache
        else None
    )
    try:
        system, _suite = _train_system(args, config)
        results = []
        start = time.perf_counter()
        for _ in range(max(1, args.repeat)):
            results = system.answer_many(args.questions)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
    except (OSError, ValueError) as error:
        print(f"kbqa answer: error: {error}", file=sys.stderr)
        return 1
    for result in results:
        print(f"Q: {result.question}")
        if result.answered:
            tag = "  [fallback]" if result.fallback else ""
            print(f"A: {result.value}  (all: {', '.join(result.values)}){tag}")
        else:
            print("A: (no answer)")
    n_answered = sum(1 for r in results if r.answered)
    per_q = elapsed_ms / (max(1, args.repeat) * len(results))
    print(f"-- answered {n_answered}/{len(results)}, {per_q:.2f}ms/question")
    return 0


def _cmd_train(args) -> int:
    system, _suite = _train_system(args)
    system.model.save(args.model)
    info = system.describe()
    print(f"saved model to {args.model}")
    print(f"templates={info['templates']} predicates={info['predicates']}")
    return 0


def _cmd_eval(args) -> int:
    system, suite = _train_system(args)
    kb = suite.freebase if args.kb == "freebase" else suite.dbpedia
    benchmark = suite.benchmark(args.benchmark)
    metrics, _records = evaluate_qald(system, benchmark, kb)
    table = Table(["metric", "value"], title=f"KBQA on {args.benchmark} ({args.kb})")
    for key, value in metrics.as_row().items():
        table.add_row([key, value])
    table.print()
    return 0


def _cmd_decompose(args) -> int:
    system, _suite = _train_system(args)
    for question in args.questions:
        decomposition = system.decompose(question)
        print(f"Q: {question}")
        if decomposition.is_simple:
            verdict = "primitive BFQ" if decomposition.score > 0 else "not answerable"
            print(f"   {verdict} (score {decomposition.score:.3f})")
        else:
            print(f"   score {decomposition.score:.3f}")
            for i, part in enumerate(decomposition.sequence):
                print(f"   q{i}: {part}")
    return 0


def _cmd_variants(args) -> int:
    from repro.core.variants import ExtendedKBQA

    system, suite = _train_system(args)
    extended = ExtendedKBQA(system, suite.taxonomy)
    for question in args.questions:
        result = extended.answer(question)
        print(f"Q: {question}")
        if result.answered:
            shown = ", ".join(result.values[:8])
            print(f"A: {shown}  [{result.template or 'bfq'}]")
        else:
            print("A: (no answer)")
    return 0


def _cmd_serve(args) -> int:
    """Serve answers over HTTP through the coalescing async front.

    Foreground mode trains, binds, prints the endpoints and blocks until
    Ctrl-C.  ``--smoke`` instead binds an ephemeral port, fires concurrent
    requests at itself from client threads, asserts every response and a
    clean shutdown, and exits — deterministic enough for CI.
    """
    import time

    from repro.serve import BackgroundServer, ServeConfig, run_smoke

    # --adaptive without an explicit objective gets a sane default SLO;
    # --slo-ms alone (no controller) still feeds the /metrics histograms
    slo_ms = args.slo_ms if args.slo_ms > 0 else (50.0 if args.adaptive else 0.0)
    config = ServeConfig(
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        # the environment resolves to an explicit backend here (the server
        # CAN follow KBQA_EXEC; test-facing defaults deliberately don't)
        executor=resolve_exec_kind(args.exec_backend, default="thread"),
        workers=resolve_workers(args.workers, fallback=2),
        coalesce=not args.no_coalesce,
        deadline_ms=args.deadline_ms,
        slo_ms=slo_ms,
        adaptive=args.adaptive,
        quota=args.quota,
    )
    system, suite = _train_system(args)
    if args.smoke:
        questions = [q.question for q in suite.benchmark("qald3").bfqs()][:12]
        try:
            summary = run_smoke(system, questions, config=config, procs=args.procs)
        except RuntimeError as error:
            print(f"kbqa serve: smoke failed: {error}", file=sys.stderr)
            return 1
        for key, value in summary.items():
            print(f"{key}={value}")
        print("serving smoke: OK")
        return 0

    if args.procs > 1:
        from repro.serve import MultiProcessServer

        front = MultiProcessServer(
            system, config, host=args.host, port=args.port, procs=args.procs
        )
    else:
        front = BackgroundServer(system, config, host=args.host, port=args.port)
    with front as bg:
        print(f"serving on {bg.url}" + (
            f" ({args.procs} SO_REUSEPORT processes)" if args.procs > 1 else ""
        ))
        print(f"  POST {bg.url}/answer   {{\"question\": \"...\"}}")
        print(f"  POST {bg.url}/batch    {{\"questions\": [...]}}")
        print(f"  POST {bg.url}/facts    {{\"op\": \"add|delete\", ...}}")
        print(f"  GET  {bg.url}/healthz | {bg.url}/stats | {bg.url}/metrics")
        print("Ctrl-C to stop")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("\nshutting down")
    return 0


def _cmd_mega_compile(args) -> int:
    """Stream-compile a mega world; optionally assert the memory bound."""
    from repro.corpus.mega import MegaSpec, compile_mega

    spec = MegaSpec(
        triples=args.triples,
        seed=args.seed,
        chunk_people=args.chunk_people,
        chunk_cities=args.chunk_cities,
    )
    build = compile_mega(spec, args.out, backend=args.mega_backend)
    close = getattr(build.kb.store, "close", None)
    if close is not None:
        close()
    for key in (
        "triples", "chunks", "total_entities", "peak_resident_entities",
        "gold_rows", "ru_maxrss_kb", "kb_path",
    ):
        print(f"{key}={build.manifest[key]}")
    rss_kb = build.manifest.get("ru_maxrss_kb")
    if args.max_rss_mb > 0 and rss_kb is not None:
        limit_kb = args.max_rss_mb * 1024
        if rss_kb > limit_kb:
            print(
                f"kbqa mega-compile: error: peak RSS {rss_kb} KiB exceeds "
                f"--max-rss-mb {args.max_rss_mb} ({limit_kb:.0f} KiB)",
                file=sys.stderr,
            )
            return 1
        print(f"rss_bound_ok={rss_kb} KiB <= {limit_kb:.0f} KiB")
    return 0


def _cmd_scenario(args) -> int:
    """Run the scenario axes; ``--assert-recall`` is the CI correctness gate."""
    import json

    from repro.eval.scenarios import ScenarioSpec, run_scenarios

    axes = tuple(a.strip() for a in args.axes.split(",") if a.strip())
    spec = ScenarioSpec(
        axes=axes,
        requests=args.requests,
        rate_qps=args.rate_qps,
        seed=args.seed,
        fallback=args.fallback,
        fallback_threshold=args.fallback_threshold,
    )
    report = run_scenarios(args.mega, spec)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for axis, row in report["axes"].items():
            keys = ("recall", "checked", "incorrect", "p50_ms", "p99_ms")
            rendered = " ".join(f"{k}={row[k]}" for k in keys if k in row)
            print(f"{axis}: {rendered}")
            cell = row.get("fallback")
            if cell is not None:
                keys = ("recall", "recovered", "wrong", "abstained", "benign_incorrect")
                rendered = " ".join(f"{k}={cell[k]}" for k in keys if k in cell)
                print(f"paraphrase.fallback: {rendered}")
    if args.assert_recall:
        failures = [
            axis
            for axis, row in report["axes"].items()
            if axis != "paraphrase" and row.get("recall") != 1.0
        ]
        # paraphrase still must never answer *wrongly* on benign rewrites
        para = report["axes"].get("paraphrase")
        if para is not None and para.get("incorrect", 0) > 0:
            failures.append("paraphrase")
        # recovery-cell gate (fallback lane on): the lane must recover at
        # least one held-out rewording, never disturb a benign answer, and
        # keep the wrong-recovery rate bounded — a lane that guesses freely
        # would trade the paper's abstention contract for recall
        cell = para.get("fallback") if para is not None else None
        if cell is not None:
            wrong_rate = (
                cell["wrong"] / cell["heldout_total"] if cell["heldout_total"] else 0.0
            )
            if (
                cell["recovered"] < 1
                or cell["benign_incorrect"] > 0
                or wrong_rate > 0.1
            ):
                failures.append("paraphrase.fallback")
        if failures:
            print(
                f"kbqa scenario: error: recall below 1.0 on: {', '.join(failures)}",
                file=sys.stderr,
            )
            return 1
        print("recall gate: OK")
    return 0


def _cmd_shm_gc(args) -> int:
    """Reclaim ``kbqa-*`` shared-memory segments orphaned by crashed runs.

    Pool starts sweep automatically; this command is the manual spelling
    for operators inspecting ``/dev/shm`` after a hard kill.
    """
    from repro.exec.shm import sweep_orphans

    removed = sweep_orphans()
    for name in removed:
        print(f"unlinked /dev/shm/{name}")
    print(f"shm-gc: {len(removed)} orphaned segment(s) reclaimed")
    return 0


def _cmd_expand(args) -> int:
    """Materialize (``--save``) or reload (``--load``) a predicate expansion."""
    if bool(args.save) == bool(args.load):
        print("kbqa expand: error: pass exactly one of --save/--load", file=sys.stderr)
        return 1
    try:
        if args.save:
            from repro.core.learner import collect_seed_entities
            from repro.kb.expansion import expand_predicates
            from repro.nlp.ner import EntityRecognizer

            suite = build_suite(**_suite_kwargs(args))
            kb = suite.freebase if args.kb == "freebase" else suite.dbpedia
            ner = EntityRecognizer(kb.gazetteer)
            seeds = collect_seed_entities(suite.corpus, ner)
            # record reach so the saved artifact supports live updates on
            # reload without a rebuild at maintainer attach
            expanded = expand_predicates(
                kb.store,
                seeds,
                max_length=args.max_length,
                record_reach=True,
                executor=args.exec_backend,
                workers=args.workers,
            )
            expanded.save(args.save, format=args.expanded_format)
            print(f"saved expansion to {args.save}")
        else:
            expanded = ExpandedStore.load(args.load)
            # a mapped (v3) artifact loads with O(1) structural checks only;
            # --load is the operator's integrity gate, so run the full
            # index-consistency sweep here (a corrupt file exits 1)
            verify = getattr(expanded, "verify", None)
            if verify is not None:
                verify()
            print(f"loaded expansion from {args.load}")
    except (OSError, ValueError) as error:
        print(f"kbqa expand: error: {error}", file=sys.stderr)
        return 1
    for key, value in expanded.stats().items():
        print(f"{key}={value}")
    return 0


def _cmd_compile(args) -> int:
    """Compile both KBs into SQLite files under ``--db-dir``.

    The write-once half of the disk-native flow: ``kbqa compile --db-dir D``
    pays the world build + triple load a single time; every later command
    run with ``--backend disk --db-dir D`` reopens the same files in
    milliseconds (the adds replay as no-ops against the existing rows).
    """
    if not args.db_dir:
        print("kbqa compile: error: --db-dir is required", file=sys.stderr)
        return 1
    if args.backend not in (None, "disk"):
        print(
            f"kbqa compile: error: only the disk backend compiles to --db-dir "
            f"(got --backend {args.backend})",
            file=sys.stderr,
        )
        return 1
    args.backend = "disk"
    suite = build_suite(**_suite_kwargs(args))
    table = Table(["kb", "stat", "value"], title=f"compiled into {args.db_dir}")
    for kind, compiled in (("freebase", suite.freebase), ("dbpedia", suite.dbpedia)):
        table.add_row([kind, "path", compiled.store.path])
        for key, value in compiled.store.stats().items():
            table.add_row([kind, key, value])
    table.print()
    return 0


def _cmd_stats(args) -> int:
    suite = build_suite(**_suite_kwargs(args))
    table = Table(["component", "stat", "value"], title=f"suite ({args.scale}, seed {args.seed})")
    for key, value in suite.world.stats().items():
        table.add_row(["world", key, value])
    for key, value in suite.freebase.store.stats().items():
        table.add_row(["freebase-like KB", key, value])
    for key, value in suite.dbpedia.store.stats().items():
        table.add_row(["dbpedia-like KB", key, value])
    table.add_row(["corpus", "qa_pairs", len(suite.corpus)])
    for name, bench in suite.benchmarks.items():
        table.add_row(["benchmark", name, f"{bench.n_total} ({bench.n_bfq} BFQ)"])
    table.print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
