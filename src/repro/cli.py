"""Command-line interface: ``kbqa`` — build, train, answer, evaluate.

A thin front over the library so the whole pipeline is drivable from a
shell::

    kbqa demo --scale small "what is the population of mapleton?"
    kbqa train --scale small --kb freebase --model /tmp/model.json
    kbqa eval --scale small --benchmark qald3
"""

from __future__ import annotations

import argparse
import sys

from repro.core.system import KBQA, KBQAConfig
from repro.eval.runner import evaluate_qald
from repro.suite import build_suite
from repro.utils.tables import Table


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    return args.handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kbqa",
        description="KBQA reproduction (Cui et al., PVLDB 2017)",
    )
    parser.set_defaults(command=None)
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="train on a synthetic suite and answer questions")
    _common_args(demo)
    demo.add_argument("questions", nargs="+", help="questions to answer")
    demo.set_defaults(handler=_cmd_demo)

    answer = sub.add_parser(
        "answer", help="batch-answer BFQs through the serving caches"
    )
    _common_args(answer)
    answer.add_argument("questions", nargs="+", help="questions to answer")
    answer.add_argument(
        "--no-cache", action="store_true",
        help="disable the answer cache and lookup memoization",
    )
    answer.add_argument(
        "--repeat", type=int, default=1,
        help="answer the batch N times (cache warm-up demonstration)",
    )
    answer.set_defaults(handler=_cmd_answer)

    train = sub.add_parser("train", help="train and save a template model")
    _common_args(train)
    train.add_argument("--model", required=True, help="output path for the model JSON")
    train.set_defaults(handler=_cmd_train)

    evaluate = sub.add_parser("eval", help="evaluate KBQA on a benchmark")
    _common_args(evaluate)
    evaluate.add_argument(
        "--benchmark", default="qald3",
        choices=["qald1", "qald3", "qald5", "webquestions"],
    )
    evaluate.set_defaults(handler=_cmd_eval)

    stats = sub.add_parser("stats", help="print suite inventory statistics")
    _common_args(stats)
    stats.set_defaults(handler=_cmd_stats)

    decompose = sub.add_parser(
        "decompose", help="show a question's optimal decomposition (Sec 5)"
    )
    _common_args(decompose)
    decompose.add_argument("questions", nargs="+", help="questions to decompose")
    decompose.set_defaults(handler=_cmd_decompose)

    variants = sub.add_parser(
        "variants", help="answer ranking/comparison/listing/counting questions"
    )
    _common_args(variants)
    variants.add_argument("questions", nargs="+", help="variant questions to answer")
    variants.set_defaults(handler=_cmd_variants)
    return parser


def _common_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--scale", default="small", choices=["small", "default"])
    sub.add_argument("--seed", type=int, default=7)
    sub.add_argument("--kb", default="freebase", choices=["freebase", "dbpedia"])


def _train_system(args, config: KBQAConfig | None = None) -> tuple[KBQA, object]:
    suite = build_suite(scale=args.scale, seed=args.seed)
    kb = suite.freebase if args.kb == "freebase" else suite.dbpedia
    system = KBQA.train(kb, suite.corpus, suite.conceptualizer, config)
    return system, suite


def _cmd_demo(args) -> int:
    system, _suite = _train_system(args)
    for question in args.questions:
        result = system.answer_complex(question)
        if result.answered:
            print(f"Q: {question}")
            print(f"A: {result.value}  (all: {', '.join(result.values)})")
        else:
            print(f"Q: {question}")
            print("A: (no answer)")
    return 0


def _cmd_answer(args) -> int:
    import time

    config = (
        KBQAConfig(answer_cache_size=0, lookup_cache_size=0)
        if args.no_cache
        else None
    )
    system, _suite = _train_system(args, config)
    results = []
    start = time.perf_counter()
    for _ in range(max(1, args.repeat)):
        results = system.answer_many(args.questions)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    for result in results:
        print(f"Q: {result.question}")
        if result.answered:
            print(f"A: {result.value}  (all: {', '.join(result.values)})")
        else:
            print("A: (no answer)")
    n_answered = sum(1 for r in results if r.answered)
    per_q = elapsed_ms / (max(1, args.repeat) * len(results))
    print(f"-- answered {n_answered}/{len(results)}, {per_q:.2f}ms/question")
    return 0


def _cmd_train(args) -> int:
    system, _suite = _train_system(args)
    system.model.save(args.model)
    info = system.describe()
    print(f"saved model to {args.model}")
    print(f"templates={info['templates']} predicates={info['predicates']}")
    return 0


def _cmd_eval(args) -> int:
    system, suite = _train_system(args)
    kb = suite.freebase if args.kb == "freebase" else suite.dbpedia
    benchmark = suite.benchmark(args.benchmark)
    metrics, _records = evaluate_qald(system, benchmark, kb)
    table = Table(["metric", "value"], title=f"KBQA on {args.benchmark} ({args.kb})")
    for key, value in metrics.as_row().items():
        table.add_row([key, value])
    table.print()
    return 0


def _cmd_decompose(args) -> int:
    system, _suite = _train_system(args)
    for question in args.questions:
        decomposition = system.decompose(question)
        print(f"Q: {question}")
        if decomposition.is_simple:
            verdict = "primitive BFQ" if decomposition.score > 0 else "not answerable"
            print(f"   {verdict} (score {decomposition.score:.3f})")
        else:
            print(f"   score {decomposition.score:.3f}")
            for i, part in enumerate(decomposition.sequence):
                print(f"   q{i}: {part}")
    return 0


def _cmd_variants(args) -> int:
    from repro.core.variants import ExtendedKBQA

    system, suite = _train_system(args)
    extended = ExtendedKBQA(system, suite.taxonomy)
    for question in args.questions:
        result = extended.answer(question)
        print(f"Q: {question}")
        if result.answered:
            shown = ", ".join(result.values[:8])
            print(f"A: {shown}  [{result.template or 'bfq'}]")
        else:
            print("A: (no answer)")
    return 0


def _cmd_stats(args) -> int:
    suite = build_suite(scale=args.scale, seed=args.seed)
    table = Table(["component", "stat", "value"], title=f"suite ({args.scale}, seed {args.seed})")
    for key, value in suite.world.stats().items():
        table.add_row(["world", key, value])
    for key, value in suite.freebase.store.stats().items():
        table.add_row(["freebase-like KB", key, value])
    for key, value in suite.dbpedia.store.stats().items():
        table.add_row(["dbpedia-like KB", key, value])
    table.add_row(["corpus", "qa_pairs", len(suite.corpus)])
    for name, bench in suite.benchmarks.items():
        table.add_row(["benchmark", name, f"{bench.n_total} ({bench.n_bfq} BFQ)"])
    table.print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
