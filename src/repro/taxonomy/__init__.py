"""Probabilistic is-a taxonomy and context-aware conceptualization.

Stands in for Probase (Wu et al., SIGMOD 2012) and the conceptualization
method of Song et al. (IJCAI 2011) that the paper plugs in for
``P(t|q, e) = P(c|q, e)`` (Eq 5).
"""

from repro.taxonomy.isa import IsANetwork
from repro.taxonomy.conceptualizer import Conceptualizer

__all__ = ["IsANetwork", "Conceptualizer"]
