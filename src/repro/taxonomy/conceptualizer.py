"""Context-aware conceptualization: ``P(c | e, q)`` (Eq 5).

Implements the mechanism of Song et al. [25] / Kim et al. [17] the paper
plugs in: the concept distribution of a mention is its taxonomy prior
``P(c|e)`` reweighted by how well the question's *context words* (tokens
outside the mention) fit each concept under a smoothed naive-Bayes model
``P(w|c)``.

``P(w|c)`` is estimated from concept-tagged text — here, the surface
template banks of the synthetic corpus, which play the role of Probase's
co-occurrence statistics.  This resolves ``apple`` to ``$company`` in
``what is the headquarter of apple?`` because *headquarter* co-occurs with
``$company`` contexts, never with ``$fruit`` ones.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Sequence

from repro.taxonomy.isa import IsANetwork

_STOPWORDS = frozenset(
    "a an the is are was were be been of in on at to for by with from what "
    "which who whom whose when where how why many much do does did 's it its "
    "there ? and or".split()
)


class Conceptualizer:
    """Computes ``P(c | e, q)`` from an is-a prior and a context model."""

    def __init__(self, network: IsANetwork, smoothing: float = 0.1) -> None:
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.network = network
        self.smoothing = smoothing
        self._word_counts: dict[str, dict[str, float]] = defaultdict(dict)
        self._concept_totals: dict[str, float] = defaultdict(float)
        self._vocabulary: set[str] = set()

    # -- Context model construction ----------------------------------------

    def observe(self, concept: str, words: Iterable[str], weight: float = 1.0) -> None:
        """Record that ``words`` appeared in a context about ``concept``."""
        for word in words:
            if word in _STOPWORDS:
                continue
            counts = self._word_counts[concept]
            counts[word] = counts.get(word, 0.0) + weight
            self._concept_totals[concept] += weight
            self._vocabulary.add(word)

    def observe_text(self, concept: str, text: str, weight: float = 1.0) -> None:
        self.observe(concept, text.lower().split(), weight)

    # -- Inference -----------------------------------------------------------

    def context_log_likelihood(self, concept: str, context: Sequence[str]) -> float:
        """``log Π P(w|c)`` with add-``smoothing`` estimation."""
        counts = self._word_counts.get(concept, {})
        total = self._concept_totals.get(concept, 0.0)
        vocab = max(len(self._vocabulary), 1)
        denominator = total + self.smoothing * vocab
        score = 0.0
        for word in context:
            if word in _STOPWORDS:
                continue
            numerator = counts.get(word, 0.0) + self.smoothing
            score += math.log(numerator / denominator)
        return score

    def conceptualize(
        self, entity: str, context: Sequence[str] = ()
    ) -> dict[str, float]:
        """``P(c | e, q)`` — posterior over the entity's concepts.

        With an empty context this degrades gracefully to the prior
        ``P(c|e)``, which is what the offline procedure uses when a question
        gives no disambiguating signal.
        """
        prior = self.network.prior(entity)
        if not prior:
            return {}
        if not context:
            return prior
        log_scores = {
            concept: math.log(p) + self.context_log_likelihood(concept, context)
            for concept, p in prior.items()
        }
        return _softmax_from_logs(log_scores)

    def best_concept(self, entity: str, context: Sequence[str] = ()) -> str | None:
        """Most probable concept, or None for unknown entities."""
        posterior = self.conceptualize(entity, context)
        if not posterior:
            return None
        return max(posterior.items(), key=lambda kv: (kv[1], kv[0]))[0]


def _softmax_from_logs(log_scores: dict[str, float]) -> dict[str, float]:
    """Normalize log scores into a distribution without underflow."""
    peak = max(log_scores.values())
    exps = {key: math.exp(value - peak) for key, value in log_scores.items()}
    total = sum(exps.values())
    return {key: value / total for key, value in exps.items()}
