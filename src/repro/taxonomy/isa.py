"""Probabilistic is-a network: ``P(c | e)`` for entities and concepts.

Concepts are written with a ``$`` prefix (``$city``, ``$person``) matching
the paper's template notation.  Each entity carries a weighted set of
concepts; weights normalize to the prior concept distribution ``P(c|e)``
that conceptualization starts from.
"""

from __future__ import annotations

from collections import defaultdict


def is_concept(term: str) -> bool:
    """Concept terms carry the ``$`` prefix used in templates."""
    return term.startswith("$")


class IsANetwork:
    """Entity -> concept edges with instance counts (Probase-style).

    >>> net = IsANetwork()
    >>> net.add("m.honolulu", "$city", 8.0)
    >>> net.add("m.honolulu", "$location", 2.0)
    >>> net.prior("m.honolulu")["$city"]
    0.8
    """

    def __init__(self) -> None:
        self._concepts_of: dict[str, dict[str, float]] = defaultdict(dict)
        self._instances_of: dict[str, set[str]] = defaultdict(set)

    def add(self, entity: str, concept: str, weight: float = 1.0) -> None:
        """Record an is-a edge; repeated adds accumulate weight."""
        if not is_concept(concept):
            raise ValueError(f"concepts must start with '$': {concept!r}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        current = self._concepts_of[entity].get(concept, 0.0)
        self._concepts_of[entity][concept] = current + weight
        self._instances_of[concept].add(entity)

    def concepts(self, entity: str) -> set[str]:
        return set(self._concepts_of.get(entity, ()))

    def instances(self, concept: str) -> set[str]:
        return set(self._instances_of.get(concept, ()))

    def all_concepts(self) -> set[str]:
        return set(self._instances_of)

    def has_entity(self, entity: str) -> bool:
        return entity in self._concepts_of

    def prior(self, entity: str) -> dict[str, float]:
        """``P(c|e)`` — concept weights normalized to a distribution."""
        weights = self._concepts_of.get(entity)
        if not weights:
            return {}
        total = sum(weights.values())
        return {concept: weight / total for concept, weight in weights.items()}

    def merge(self, other: "IsANetwork") -> None:
        """Union another network into this one (weights accumulate)."""
        for entity, weights in other._concepts_of.items():
            for concept, weight in weights.items():
                self.add(entity, concept, weight)

    def stats(self) -> dict[str, int]:
        """Entity/concept/edge counts."""
        return {
            "entities": len(self._concepts_of),
            "concepts": len(self._instances_of),
            "edges": sum(len(w) for w in self._concepts_of.values()),
        }
