"""One-call assembly of the full experimental setup.

``build_suite("small")`` produces everything the examples, tests and
benchmarks need: the world, both compiled KBs, taxonomy + conceptualizer,
the QA corpus, the sentence corpus, the Infobox and the benchmark sets —
all derived from one seed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.corpus.benchmark import (
    Benchmark,
    build_complex_benchmark,
    build_qald_like,
    build_webquestions_like,
)
from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.corpus.qa import QACorpus
from repro.corpus.sentences import generate_sentences
from repro.corpus.surface import surface_context_sources
from repro.data.compile import CompiledKB, compile_dbpedia_like, compile_freebase_like
from repro.data.conceptnet import build_conceptualizer, build_taxonomy
from repro.data.infobox import Infobox, build_infobox
from repro.data.world import World, WorldConfig, build_world
from repro.taxonomy.conceptualizer import Conceptualizer
from repro.taxonomy.isa import IsANetwork

# Benchmark mixes follow Table 5's total/BFQ ratios:
#   QALD-5: 50 questions, 12 BFQ; QALD-3: 99/41; QALD-1: 50/27.
_BENCHMARK_MIXES = {
    "qald5": dict(n_bfq_seen=9, n_bfq_unseen=2, n_bfq_rare=1, n_nonbfq=38),
    "qald3": dict(n_bfq_seen=29, n_bfq_unseen=9, n_bfq_rare=3, n_nonbfq=58),
    "qald1": dict(n_bfq_seen=21, n_bfq_unseen=4, n_bfq_rare=2, n_nonbfq=23),
}


@dataclass
class Suite:
    """Everything derived from one seed."""

    seed: int
    scale: str
    world: World
    freebase: CompiledKB
    dbpedia: CompiledKB
    taxonomy: IsANetwork
    conceptualizer: Conceptualizer
    corpus: QACorpus
    sentences: list[str]
    infobox: Infobox
    benchmarks: dict[str, Benchmark] = field(default_factory=dict)

    def benchmark(self, name: str) -> Benchmark:
        return self.benchmarks[name]


def build_suite(
    scale: str = "small",
    seed: int = 7,
    shards: int = 1,
    backend: str | None = None,
    db_dir: str | None = None,
) -> Suite:
    """Build the full setup at ``scale`` in {"small", "default"}.

    *small* is test-sized (seconds); *default* is benchmark-sized.
    ``shards > 1`` compiles both KBs into subject-sharded backends
    (:class:`~repro.kb.sharded.ShardedTripleStore`) — everything downstream
    is behaviour-identical, only the KB partitioning changes.  ``backend``
    picks the store kind per :func:`~repro.kb.backend.resolve_backend`
    (``"disk"`` = SQLite-backed); ``db_dir`` makes a disk build persistent,
    compiling into ``<db_dir>/freebase.db`` and ``<db_dir>/dbpedia.db``.
    """
    if scale == "small":
        world_config = WorldConfig.small(seed=seed)
        corpus_config = CorpusConfig.small(seed=seed)
        n_sentences = 4_000
        webq_total = 200
    elif scale == "default":
        world_config = WorldConfig(seed=seed)
        corpus_config = CorpusConfig(seed=seed)
        n_sentences = 20_000
        webq_total = 600
    else:
        raise ValueError(f"unknown scale {scale!r} (expected 'small' or 'default')")

    fb_db = dbp_db = None
    if db_dir is not None:
        os.makedirs(db_dir, exist_ok=True)
        fb_db = os.path.join(db_dir, "freebase.db")
        dbp_db = os.path.join(db_dir, "dbpedia.db")

    world = build_world(world_config)
    freebase = compile_freebase_like(world, shards=shards, backend=backend, db_path=fb_db)
    dbpedia = compile_dbpedia_like(world, shards=shards, backend=backend, db_path=dbp_db)
    taxonomy = build_taxonomy(world)
    conceptualizer = build_conceptualizer(world, extra_contexts=surface_context_sources())
    corpus = generate_corpus(world, corpus_config)
    sentences = generate_sentences(world, count=n_sentences, seed=seed)
    infobox = build_infobox(world)

    benchmarks = {
        name: build_qald_like(name, world, seed=seed, **mix)
        for name, mix in _BENCHMARK_MIXES.items()
    }
    benchmarks["webquestions"] = build_webquestions_like(world, seed=seed, total=webq_total)
    benchmarks["complex"] = build_complex_benchmark(world, seed=seed)

    return Suite(
        seed=seed,
        scale=scale,
        world=world,
        freebase=freebase,
        dbpedia=dbpedia,
        taxonomy=taxonomy,
        conceptualizer=conceptualizer,
        corpus=corpus,
        sentences=sentences,
        infobox=infobox,
        benchmarks=benchmarks,
    )
