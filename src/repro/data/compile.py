"""Compile the synthetic world into RDF stores.

Two encodings of the same ground truth, mirroring the paper's KBs:

* :func:`compile_freebase_like` — attribute facts are direct literal edges,
  relations to other entities are entity edges (answer literal one ``name``
  hop away), and several relations run through **CVT mediator nodes** exactly
  like Freebase compounds: ``(s, marriage, cvt), (cvt, person, o)`` with
  decoration edges (marriage date, membership year) hanging off the mediator.
  The spouse intent therefore *only* resolves through the expanded predicate
  ``marriage -> person -> name`` — this is what makes predicate expansion
  (Sec 6) necessary, reproducing the paper's claim that over 98% of intents
  map to complex structures.
* :func:`compile_dbpedia_like` — flat direct predicates with DBpedia-flavored
  names (``populationTotal``, ``birthPlace``).

:class:`CompiledKB` bundles the store with the intent <-> predicate-path
mapping used by training refinement and by evaluation judging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.world import (
    INTENT_CATALOG,
    LITERAL,
    SCHEMA_BY_INTENT,
    World,
)
from repro.kb.backend import KBBackend, resolve_backend
from repro.kb.paths import PredicatePath
from repro.kb.triple import make_literal
from repro.nlp.question_class import AnswerType
from repro.utils.rng import stable_hash

# Decoration predicates attached to CVT nodes.  They create *meaningless*
# length-3 paths (e.g. ``marriage -> person -> dob``) whose rejection by the
# Infobox validation drives the valid(k) collapse at k=3 (Table 4).
_CVT_DECORATIONS = {
    "spouse": ("date", lambda salt: str(1950 + salt % 70)),
    "members": ("since", lambda salt: str(1950 + salt % 70)),
    "board_members": ("since", lambda salt: str(1980 + salt % 40)),
    "songs": ("track", lambda salt: str(1 + salt % 12)),
}


@dataclass
class CompiledKB:
    """A triple store plus the schema map tying paths back to intents.

    ``world`` is the generating :class:`World` for suite-built KBs and may
    be ``None`` for hand-built stores (e.g. the paper's Figure 1 toy KB).
    """

    kind: str
    store: KBBackend
    world: World | None
    path_for_intent: dict[str, PredicatePath]
    intent_for_path: dict[str, str]
    gazetteer: dict[str, list[str]] = field(default_factory=dict)

    def answer_type_for_path(self, path: PredicatePath) -> AnswerType:
        """Manual predicate category labels of Sec 4.1.1 (schema-derived)."""
        intent = self.intent_for_path.get(str(path))
        if intent is None:
            return AnswerType.UNKNOWN
        return SCHEMA_BY_INTENT[intent].answer_type

    def expected_path(self, intent: str) -> PredicatePath:
        return self.path_for_intent[intent]

    def intent_of(self, path: PredicatePath) -> str | None:
        return self.intent_for_path.get(str(path))

    def related_intents(self, intent: str) -> tuple[str, ...]:
        return SCHEMA_BY_INTENT[intent].related


def _schema_paths(kind: str) -> tuple[dict[str, PredicatePath], dict[str, str]]:
    path_for_intent: dict[str, PredicatePath] = {}
    intent_for_path: dict[str, str] = {}
    for schema in INTENT_CATALOG:
        raw = schema.fb_path if kind == "freebase" else schema.dbp_path
        path = PredicatePath(tuple(raw))
        path_for_intent[schema.intent] = path
        key = str(path)
        if key in intent_for_path:
            raise ValueError(f"duplicate predicate path {key} in {kind} schema")
        intent_for_path[key] = schema.intent
    return path_for_intent, intent_for_path


def _new_store(shards: int, backend: str | None, db_path: str | None) -> KBBackend:
    """Pick the store through :func:`~repro.kb.backend.resolve_backend`.

    ``backend=None`` keeps the historical default (plain store, sharded when
    ``shards > 1``) unless ``KBQA_BACKEND`` overrides it; ``db_path`` names
    the database file of a disk-backed compile.
    """
    return resolve_backend(backend, shards=shards, path=db_path)


def _base_entity_triples(store: KBBackend, world: World, with_alias: bool) -> None:
    for node, entity in world.entities.items():
        store.add(node, "name", make_literal(entity.name))
        # A quarter of persons carry an alias edge (Freebase-style sparse
        # aliases): enough for alias-tailed expanded predicates to exist
        # (Table 18) without shadowing the canonical ``name`` paths in EM.
        if with_alias and entity.etype == "person" and stable_hash(node) % 4 == 0:
            store.add(node, "alias", make_literal(entity.name))
        for concept, _weight in entity.concepts:
            store.add(node, "category", concept)


def _gazetteer(world: World) -> dict[str, list[str]]:
    return {name: list(nodes) for name, nodes in world.by_name.items()}


def compile_freebase_like(
    world: World,
    shards: int = 1,
    backend: str | None = None,
    db_path: str | None = None,
) -> CompiledKB:
    """World -> Freebase-like store (CVT mediators for compound relations).

    ``shards > 1`` compiles into a sharded backend; ``backend``/``db_path``
    select the store kind via :func:`~repro.kb.backend.resolve_backend`
    (``"disk"`` compiles straight into a SQLite file that later runs reopen
    without recompiling).  The add sequence is identical for every backend,
    so all builds assign the same dictionary ids (equivalence-tested).
    """
    store = _new_store(shards, backend, db_path)
    _base_entity_triples(store, world, with_alias=True)
    cvt_counter = 0
    for node, intent, value in world.iter_facts():
        schema = SCHEMA_BY_INTENT[intent]
        if schema.value_kind == LITERAL:
            store.add(node, schema.fb_path[0], make_literal(value))
        elif not schema.is_cvt:
            store.add(node, schema.fb_path[0], value)
        else:
            cvt = f"cvt.{intent}_{cvt_counter:06d}"
            cvt_counter += 1
            store.add(node, schema.fb_path[0], cvt)
            store.add(cvt, schema.fb_path[1], value)
            decoration = _CVT_DECORATIONS.get(intent)
            if decoration is not None:
                pred, make_value = decoration
                salt = stable_hash(node, intent, value)
                store.add(cvt, pred, make_literal(make_value(salt)))
    path_for_intent, intent_for_path = _schema_paths("freebase")
    return CompiledKB(
        kind="freebase",
        store=store,
        world=world,
        path_for_intent=path_for_intent,
        intent_for_path=intent_for_path,
        gazetteer=_gazetteer(world),
    )


def compile_dbpedia_like(
    world: World,
    shards: int = 1,
    backend: str | None = None,
    db_path: str | None = None,
) -> CompiledKB:
    """World -> DBpedia-like store (direct predicates, no mediators).

    ``shards``/``backend``/``db_path`` select the store kind exactly as in
    :func:`compile_freebase_like`.
    """
    store = _new_store(shards, backend, db_path)
    _base_entity_triples(store, world, with_alias=False)
    for node, intent, value in world.iter_facts():
        schema = SCHEMA_BY_INTENT[intent]
        if schema.value_kind == LITERAL:
            store.add(node, schema.dbp_path[0], make_literal(value))
        else:
            store.add(node, schema.dbp_path[0], value)
    path_for_intent, intent_for_path = _schema_paths("dbpedia")
    return CompiledKB(
        kind="dbpedia",
        store=store,
        world=world,
        path_for_intent=path_for_intent,
        intent_for_path=intent_for_path,
        gazetteer=_gazetteer(world),
    )
