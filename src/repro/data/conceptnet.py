"""Build the is-a taxonomy and conceptualizer from the world.

The taxonomy plays Probase's role (Sec 1.3): it supplies ``P(c|e)`` priors
from the world's typed entities.  The conceptualizer's context model
``P(w|c)`` is primed from intent labels and can be enriched with any
concept-tagged text (the QA surface banks pass theirs in via
``extra_contexts`` — see :func:`repro.suite.build_suite`), standing in for
Probase's co-occurrence statistics.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.data.world import (
    INTENT_CATALOG,
    PROFESSION_CONCEPTS,
    TYPE_CONCEPTS,
    World,
)
from repro.taxonomy.conceptualizer import Conceptualizer
from repro.taxonomy.isa import IsANetwork


def build_taxonomy(world: World) -> IsANetwork:
    """Is-a edges for every world entity with its concept weights."""
    network = IsANetwork()
    for node, entity in world.entities.items():
        for concept, weight in entity.concepts:
            network.add(node, concept, weight)
    return network


def concepts_for_type(etype: str) -> list[str]:
    """All concepts that entities of ``etype`` may carry."""
    concepts = [c for c, _w in TYPE_CONCEPTS.get(etype, ())]
    if etype == "person":
        concepts.extend(PROFESSION_CONCEPTS.values())
    return concepts


def build_conceptualizer(
    world: World,
    extra_contexts: Mapping[str, Iterable[str]] | None = None,
    smoothing: float = 0.1,
) -> Conceptualizer:
    """Conceptualizer with a context model over the world's concepts.

    The base signal ties each concept to the vocabulary of the intents whose
    domain covers that concept's entity type (e.g. ``$company`` to
    *headquarters*, *ceo*, *revenue*); ``extra_contexts`` adds richer
    concept-tagged text such as the corpus surface banks.
    """
    conceptualizer = Conceptualizer(build_taxonomy(world), smoothing=smoothing)
    for schema in INTENT_CATALOG:
        words = schema.label.split() + [schema.intent.replace("_", " ")]
        for etype in schema.domain_types:
            for concept in concepts_for_type(etype):
                conceptualizer.observe(concept, words, weight=2.0)
    if extra_contexts:
        for concept, texts in extra_contexts.items():
            for text in texts:
                conceptualizer.observe_text(concept, text)
    return conceptualizer
