"""Typed synthetic world: entities, ground-truth facts, and the intent schema.

The *world* is the single source of truth the rest of the data layer compiles
from: the Freebase-like and DBpedia-like stores, the Infobox, the QA corpus
and the benchmarks are all derived views of it.  Because gold answers come
from the same object, evaluation is exact.

An **intent** is a semantic relation (``population``, ``spouse``) independent
of its RDF encoding; :class:`IntentSchema` records how each intent appears in
both compiled KBs (a direct predicate, an entity edge + ``name``, or a
CVT-mediated path such as ``marriage -> person -> name``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data import names as pools
from repro.nlp.question_class import AnswerType
from repro.utils.rng import SeedStream

LITERAL = "literal"
ENTITY = "entity"


@dataclass(frozen=True, slots=True)
class IntentSchema:
    """Declarative description of one semantic relation."""

    intent: str
    domain_types: tuple[str, ...]
    answer_type: AnswerType
    value_kind: str  # LITERAL or ENTITY
    fb_path: tuple[str, ...]
    dbp_path: tuple[str, ...]
    label: str
    related: tuple[str, ...] = ()
    multi_valued: bool = False

    @property
    def is_cvt(self) -> bool:
        """True when the Freebase-like encoding runs through a mediator node."""
        return len(self.fb_path) == 3


# The full intent catalog.  fb_path/dbp_path are predicate paths from the
# entity node to the *answer literal* in the respective store.
INTENT_CATALOG: tuple[IntentSchema, ...] = (
    # --- person ---------------------------------------------------------
    IntentSchema("dob", ("person",), AnswerType.DATE, LITERAL,
                 ("dob",), ("birthDate",), "date of birth"),
    IntentSchema("pob", ("person",), AnswerType.LOCATION, ENTITY,
                 ("pob", "name"), ("birthPlace", "name"), "place of birth",
                 related=("residence",)),
    IntentSchema("residence", ("person",), AnswerType.LOCATION, ENTITY,
                 ("residence", "name"), ("residence", "name"), "residence",
                 related=("pob",)),
    IntentSchema("height", ("person",), AnswerType.NUMERIC, LITERAL,
                 ("height",), ("height",), "height"),
    IntentSchema("profession", ("person",), AnswerType.ENTITY, ENTITY,
                 ("profession", "name"), ("occupation", "name"), "profession"),
    IntentSchema("spouse", ("person",), AnswerType.HUMAN, ENTITY,
                 ("marriage", "person", "name"), ("spouse", "name"), "spouse"),
    IntentSchema("instrument", ("person",), AnswerType.ENTITY, ENTITY,
                 ("instrument", "name"), ("instrument", "name"), "instrument"),
    IntentSchema("works_written", ("person",), AnswerType.ENTITY, ENTITY,
                 ("works_written", "name"), ("notableWork", "name"),
                 "books written", multi_valued=True),
    # --- city / country -------------------------------------------------
    IntentSchema("population", ("city", "country"), AnswerType.NUMERIC, LITERAL,
                 ("population",), ("populationTotal",), "population",
                 related=("area",)),
    IntentSchema("area", ("city", "country"), AnswerType.NUMERIC, LITERAL,
                 ("area",), ("areaTotal",), "area",
                 related=("population",)),
    IntentSchema("mayor", ("city",), AnswerType.HUMAN, ENTITY,
                 ("mayor", "name"), ("leaderName", "name"), "mayor"),
    IntentSchema("located_country", ("city", "mountain"), AnswerType.LOCATION, ENTITY,
                 ("country", "name"), ("country", "name"), "country"),
    IntentSchema("founded", ("city", "company", "university"), AnswerType.DATE, LITERAL,
                 ("founded",), ("foundingDate",), "founding year"),
    IntentSchema("capital", ("country",), AnswerType.LOCATION, ENTITY,
                 ("capital", "name"), ("capital", "name"), "capital"),
    IntentSchema("currency", ("country",), AnswerType.ENTITY, ENTITY,
                 ("currency", "name"), ("currency", "name"), "currency"),
    IntentSchema("language", ("country",), AnswerType.ENTITY, ENTITY,
                 ("language", "name"), ("officialLanguage", "name"), "official language"),
    # --- company ---------------------------------------------------------
    IntentSchema("headquarters", ("company",), AnswerType.LOCATION, ENTITY,
                 ("headquarters", "name"), ("headquarter", "name"), "headquarters"),
    IntentSchema("ceo", ("company",), AnswerType.HUMAN, ENTITY,
                 ("ceo", "name"), ("keyPerson", "name"), "ceo"),
    IntentSchema("revenue", ("company",), AnswerType.NUMERIC, LITERAL,
                 ("revenue",), ("revenue",), "revenue"),
    IntentSchema("employees", ("company",), AnswerType.NUMERIC, LITERAL,
                 ("employees",), ("numberOfEmployees",), "number of employees"),
    IntentSchema("board_members", ("company",), AnswerType.HUMAN, ENTITY,
                 ("organization_members", "member", "name"),
                 ("boardMember", "name"), "board members", multi_valued=True),
    # --- river -----------------------------------------------------------
    IntentSchema("river_length", ("river",), AnswerType.NUMERIC, LITERAL,
                 ("length",), ("length",), "length"),
    IntentSchema("flows_through", ("river",), AnswerType.LOCATION, ENTITY,
                 ("flows_through", "name"), ("crosses", "name"),
                 "country it flows through"),
    # --- book ------------------------------------------------------------
    IntentSchema("author", ("book",), AnswerType.HUMAN, ENTITY,
                 ("author", "name"), ("author", "name"), "author"),
    IntentSchema("published", ("book",), AnswerType.DATE, LITERAL,
                 ("published",), ("publicationDate",), "publication year"),
    IntentSchema("pages", ("book",), AnswerType.NUMERIC, LITERAL,
                 ("pages",), ("numberOfPages",), "number of pages"),
    IntentSchema("genre", ("book", "band", "movie"), AnswerType.ENTITY, ENTITY,
                 ("genre", "name"), ("genre", "name"), "genre"),
    # --- band ------------------------------------------------------------
    IntentSchema("members", ("band",), AnswerType.HUMAN, ENTITY,
                 ("group_member", "member", "name"), ("bandMember", "name"),
                 "members", multi_valued=True),
    IntentSchema("origin", ("band",), AnswerType.LOCATION, ENTITY,
                 ("origin", "name"), ("hometown", "name"), "origin"),
    IntentSchema("formed", ("band",), AnswerType.DATE, LITERAL,
                 ("formed",), ("activeYearsStartYear",), "formation year"),
    IntentSchema("songs", ("band",), AnswerType.ENTITY, ENTITY,
                 ("songs", "song", "name"), ("song", "name"), "songs",
                 multi_valued=True),
    # --- movie -----------------------------------------------------------
    IntentSchema("director", ("movie",), AnswerType.HUMAN, ENTITY,
                 ("director", "name"), ("director", "name"), "director"),
    IntentSchema("release", ("movie",), AnswerType.DATE, LITERAL,
                 ("release",), ("releaseDate",), "release year"),
    IntentSchema("runtime", ("movie",), AnswerType.NUMERIC, LITERAL,
                 ("runtime",), ("runtime",), "runtime"),
    # --- university ------------------------------------------------------
    IntentSchema("students", ("university",), AnswerType.NUMERIC, LITERAL,
                 ("students",), ("numberOfStudents",), "number of students"),
    IntentSchema("located_city", ("university",), AnswerType.LOCATION, ENTITY,
                 ("location", "name"), ("city", "name"), "location"),
    # --- mountain --------------------------------------------------------
    IntentSchema("elevation", ("mountain",), AnswerType.NUMERIC, LITERAL,
                 ("elevation",), ("elevation",), "elevation"),
)

SCHEMA_BY_INTENT: dict[str, IntentSchema] = {s.intent: s for s in INTENT_CATALOG}

# Concept sets per entity type, with Probase-style weights (dominant concept
# first).  Professions refine the person concepts below.
TYPE_CONCEPTS: dict[str, tuple[tuple[str, float], ...]] = {
    "person": (("$person", 4.0),),
    "city": (("$city", 7.0), ("$location", 3.0)),
    "country": (("$country", 7.0), ("$location", 3.0)),
    "company": (("$company", 8.0), ("$organization", 2.0)),
    "river": (("$river", 7.0), ("$location", 3.0)),
    "book": (("$book", 8.0), ("$work", 2.0)),
    "band": (("$band", 7.0), ("$organization", 3.0)),
    "movie": (("$movie", 8.0), ("$work", 2.0)),
    "university": (("$university", 7.0), ("$organization", 3.0)),
    "mountain": (("$mountain", 7.0), ("$location", 3.0)),
    "food": (("$fruit", 7.0), ("$food", 3.0)),
    "song": (("$song", 9.0), ("$work", 1.0)),
    # Value-entity pools: Freebase models these as entities, not literals.
    "profession": (("$profession", 8.0), ("$occupation", 2.0)),
    "instrument": (("$instrument", 9.0), ("$object", 1.0)),
    "currency": (("$currency", 9.0), ("$money", 1.0)),
    "language": (("$language", 9.0), ("$tongue", 1.0)),
    "genre": (("$genre", 9.0), ("$style", 1.0)),
}

PROFESSION_CONCEPTS = {
    "politician": "$politician",
    "actor": "$actor",
    "scientist": "$scientist",
    "musician": "$musician",
    "author": "$author",
}


@dataclass(slots=True)
class WorldEntity:
    """One entity with its ground-truth facts.

    ``facts`` maps intent -> tuple of values; a value is a literal string for
    LITERAL intents and a target node id for ENTITY intents.
    """

    node: str
    name: str
    etype: str
    concepts: tuple[tuple[str, float], ...]
    facts: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def set_fact(self, intent: str, *values: str) -> None:
        if intent not in SCHEMA_BY_INTENT:
            raise KeyError(f"unknown intent {intent!r}")
        self.facts[intent] = tuple(values)

    def get_fact(self, intent: str) -> tuple[str, ...]:
        return self.facts.get(intent, ())


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """Entity counts; two presets cover tests (small) and benchmarks (default)."""

    seed: int = 7
    n_people: int = 1200
    n_cities: int = 280
    n_countries: int = 40
    n_companies: int = 200
    n_rivers: int = 100
    n_books: int = 360
    n_bands: int = 110
    n_movies: int = 220
    n_universities: int = 90
    n_mountains: int = 90
    n_foods: int = 16

    @classmethod
    def small(cls, seed: int = 7) -> "WorldConfig":
        """A few hundred entities — fast enough for unit tests."""
        return cls(
            seed=seed, n_people=140, n_cities=40, n_countries=10,
            n_companies=30, n_rivers=14, n_books=44, n_bands=14,
            n_movies=24, n_universities=10, n_mountains=12, n_foods=8,
        )


class World:
    """Registry of entities plus lookup structure over names and types."""

    def __init__(self, config: WorldConfig) -> None:
        self.config = config
        self.entities: dict[str, WorldEntity] = {}
        self.by_type: dict[str, list[str]] = {}
        self.by_name: dict[str, list[str]] = {}

    # -- Construction -------------------------------------------------------

    def register(self, entity: WorldEntity) -> WorldEntity:
        """Add an entity to the registry (node ids must be unique)."""
        if entity.node in self.entities:
            raise ValueError(f"duplicate node id {entity.node}")
        self.entities[entity.node] = entity
        self.by_type.setdefault(entity.etype, []).append(entity.node)
        self.by_name.setdefault(entity.name, []).append(entity.node)
        return entity

    # -- Lookups ------------------------------------------------------------

    def entity(self, node: str) -> WorldEntity:
        return self.entities[node]

    def of_type(self, etype: str) -> list[WorldEntity]:
        return [self.entities[n] for n in self.by_type.get(etype, [])]

    def name_of(self, node: str) -> str:
        return self.entities[node].name

    def gold_values(self, node: str, intent: str) -> set[str]:
        """Answer strings for (entity, intent): literals, or target names."""
        schema = SCHEMA_BY_INTENT[intent]
        raw = self.entities[node].get_fact(intent)
        if schema.value_kind == LITERAL:
            return set(raw)
        return {self.entities[target].name for target in raw}

    def iter_facts(self):
        """Yield every (node, intent, value) ground-truth fact."""
        for node, entity in self.entities.items():
            for intent, values in entity.facts.items():
                for value in values:
                    yield node, intent, value

    def ambiguous_names(self) -> dict[str, list[str]]:
        """Names carried by entities of more than one type."""
        out: dict[str, list[str]] = {}
        for name, nodes in self.by_name.items():
            types = {self.entities[n].etype for n in nodes}
            if len(types) > 1:
                out[name] = list(nodes)
        return out

    def stats(self) -> dict[str, int]:
        """Entity counts per type plus totals."""
        counts = {etype: len(nodes) for etype, nodes in self.by_type.items()}
        counts["total_entities"] = len(self.entities)
        counts["facts"] = sum(len(v) for e in self.entities.values() for v in e.facts.values())
        return counts


# ---------------------------------------------------------------------------
# World generation
# ---------------------------------------------------------------------------


def build_world(config: WorldConfig | None = None) -> World:
    """Generate the full synthetic world for ``config`` (deterministic)."""
    config = config or WorldConfig()
    world = World(config)
    stream = SeedStream(config.seed).substream("world")

    value_pools = _make_value_pools(world)
    countries = _make_countries(world, stream, value_pools)
    cities = _make_cities(world, stream, countries)
    people = _make_people(world, stream, cities, value_pools)
    _make_marriages(world, stream, people)
    _assign_mayors(world, stream, cities, people, value_pools)
    _make_companies(world, stream, cities, people)
    _make_rivers(world, stream, countries)
    _make_books(world, stream, people, value_pools)
    _make_bands(world, stream, cities, people, value_pools)
    _make_movies(world, stream, people, value_pools)
    _make_universities(world, stream, cities)
    _make_mountains(world, stream, countries)
    _make_foods(world, stream)
    _assign_capitals(world, stream, countries, cities)
    return world


def _make_value_pools(world: World) -> dict[str, dict[str, str]]:
    """Register the small value-entity pools (professions, instruments,
    currencies, languages, genres) and return name -> node maps per type.

    Freebase encodes these as first-class entities whose display string is a
    ``name`` hop away — one of the reasons over 98% of the paper's intents
    map to multi-edge structures rather than direct literal predicates.
    """
    pools_spec = {
        "profession": list(pools.PROFESSIONS),
        "instrument": pools.INSTRUMENTS,
        "currency": pools.CURRENCIES,
        "language": pools.LANGUAGES,
        "genre": sorted(set(pools.GENRES_MUSIC) | set(pools.GENRES_BOOK)),
    }
    mapping: dict[str, dict[str, str]] = {}
    for etype, names in pools_spec.items():
        mapping[etype] = {}
        for i, name in enumerate(names):
            entity = world.register(WorldEntity(
                node=f"m.{etype}_{i:03d}", name=name, etype=etype,
                concepts=_concepts_for(etype),
            ))
            mapping[etype][name] = entity.node
    return mapping


def _with_profession(world: World, people, value_pools, profession: str) -> list[str]:
    """People whose profession fact points at the named profession entity."""
    node = value_pools["profession"][profession]
    return [p for p in people if world.entity(p).get_fact("profession") == (node,)]


def _take_names(generator, count: int, used: set[str]) -> list[str]:
    out: list[str] = []
    for name in generator:
        if name in used:
            continue
        used.add(name)
        out.append(name)
        if len(out) == count:
            return out
    raise ValueError(f"name pool exhausted after {len(out)} of {count}")


def _concepts_for(etype: str, profession: str | None = None) -> tuple[tuple[str, float], ...]:
    base = TYPE_CONCEPTS[etype]
    if etype == "person" and profession:
        return ((PROFESSION_CONCEPTS[profession], 6.0),) + base
    return base


def _make_countries(world: World, stream: SeedStream, value_pools):
    rng = stream.substream("countries").rng()
    count = world.config.n_countries
    names = pools.COUNTRY_NAMES[:count]
    if len(names) < count:
        raise ValueError("not enough country names")
    nodes = []
    for i, name in enumerate(names):
        entity = world.register(WorldEntity(
            node=f"m.country_{i:04d}", name=name, etype="country",
            concepts=_concepts_for("country"),
        ))
        entity.set_fact("population", str(rng.randint(1, 200) * 1_000_000))
        entity.set_fact("area", str(rng.randint(10_000, 2_000_000)))
        entity.set_fact("currency", value_pools["currency"][rng.choice(pools.CURRENCIES)])
        entity.set_fact("language", value_pools["language"][rng.choice(pools.LANGUAGES)])
        nodes.append(entity.node)
    return nodes


def _make_cities(world: World, stream: SeedStream, countries: list[str]):
    rng = stream.substream("cities").rng()
    used = set(world.by_name)
    names = _take_names(pools.city_names(), world.config.n_cities, used)
    nodes = []
    for i, name in enumerate(names):
        entity = world.register(WorldEntity(
            node=f"m.city_{i:04d}", name=name, etype="city",
            concepts=_concepts_for("city"),
        ))
        entity.set_fact("population", str(rng.randint(10, 9_999) * 1_000))
        if rng.random() < 0.85:
            entity.set_fact("area", str(rng.randint(50, 2_500)))
        entity.set_fact("located_country", rng.choice(countries))
        if rng.random() < 0.6:
            entity.set_fact("founded", str(rng.randint(1400, 1990)))
        nodes.append(entity.node)
    return nodes


def _make_people(world: World, stream: SeedStream, cities: list[str], value_pools):
    rng = stream.substream("people").rng()
    used = set(world.by_name)
    names = _take_names(pools.person_names(), world.config.n_people, used)
    professions = list(pools.PROFESSIONS)
    nodes = []
    for i, name in enumerate(names):
        profession = professions[i % len(professions)]
        entity = world.register(WorldEntity(
            node=f"m.person_{i:04d}", name=name, etype="person",
            concepts=_concepts_for("person", profession),
        ))
        entity.set_fact("dob", str(rng.randint(1900, 1995)))
        entity.set_fact("profession", value_pools["profession"][profession])
        if rng.random() < 0.9:
            entity.set_fact("pob", rng.choice(cities))
        if rng.random() < 0.7:
            entity.set_fact("residence", rng.choice(cities))
        if rng.random() < 0.6:
            entity.set_fact("height", str(rng.randint(150, 210)))
        if profession == "musician":
            entity.set_fact("instrument", value_pools["instrument"][rng.choice(pools.INSTRUMENTS)])
        nodes.append(entity.node)
    return nodes


def _make_marriages(world: World, stream: SeedStream, people: list[str]) -> None:
    rng = stream.substream("marriages").rng()
    shuffled = people[:]
    rng.shuffle(shuffled)
    for a, b in zip(shuffled[0::2], shuffled[1::2]):
        if rng.random() < 0.55:
            world.entity(a).set_fact("spouse", b)
            world.entity(b).set_fact("spouse", a)


def _assign_mayors(world: World, stream: SeedStream, cities, people, value_pools) -> None:
    rng = stream.substream("mayors").rng()
    politicians = _with_profession(world, people, value_pools, "politician")
    for city in cities:
        if politicians and rng.random() < 0.8:
            world.entity(city).set_fact("mayor", rng.choice(politicians))


def _make_companies(world: World, stream: SeedStream, cities, people):
    rng = stream.substream("companies").rng()
    used = set(world.by_name) - set(pools.AMBIGUOUS_COMPANY_FOODS)
    names = _take_names(pools.company_names(), world.config.n_companies, used)
    nodes = []
    for i, name in enumerate(names):
        entity = world.register(WorldEntity(
            node=f"m.company_{i:04d}", name=name, etype="company",
            concepts=_concepts_for("company"),
        ))
        entity.set_fact("headquarters", rng.choice(cities))
        entity.set_fact("ceo", rng.choice(people))
        entity.set_fact("founded", str(rng.randint(1850, 2015)))
        if rng.random() < 0.7:
            entity.set_fact("revenue", str(rng.randint(1, 500) * 1_000_000))
        if rng.random() < 0.8:
            entity.set_fact("employees", str(rng.randint(1, 500) * 100))
        board = rng.sample(people, k=rng.randint(1, 3))
        entity.set_fact("board_members", *board)
        nodes.append(entity.node)
    return nodes


def _make_rivers(world: World, stream: SeedStream, countries):
    rng = stream.substream("rivers").rng()
    used = set(world.by_name)
    names = _take_names(pools.river_names(), world.config.n_rivers, used)
    nodes = []
    for i, name in enumerate(names):
        entity = world.register(WorldEntity(
            node=f"m.river_{i:04d}", name=name, etype="river",
            concepts=_concepts_for("river"),
        ))
        entity.set_fact("river_length", str(rng.randint(100, 6_000)))
        entity.set_fact("flows_through", rng.choice(countries))
        nodes.append(entity.node)
    return nodes


def _make_books(world: World, stream: SeedStream, people, value_pools):
    rng = stream.substream("books").rng()
    authors = _with_profession(world, people, value_pools, "author")
    used = set(world.by_name)
    names = _take_names(pools.book_titles(), world.config.n_books, used)
    nodes = []
    by_author: dict[str, list[str]] = {}
    for i, name in enumerate(names):
        entity = world.register(WorldEntity(
            node=f"m.book_{i:04d}", name=name, etype="book",
            concepts=_concepts_for("book"),
        ))
        author = rng.choice(authors) if authors else None
        if author:
            entity.set_fact("author", author)
            by_author.setdefault(author, []).append(entity.node)
        entity.set_fact("published", str(rng.randint(1800, 2016)))
        if rng.random() < 0.8:
            entity.set_fact("pages", str(rng.randint(80, 1_200)))
        entity.set_fact("genre", value_pools["genre"][rng.choice(pools.GENRES_BOOK)])
        nodes.append(entity.node)
    for author, books in by_author.items():
        world.entity(author).set_fact("works_written", *books)
    return nodes


def _make_bands(world: World, stream: SeedStream, cities, people, value_pools):
    rng = stream.substream("bands").rng()
    musicians = _with_profession(world, people, value_pools, "musician")
    used = set(world.by_name) - set(pools.AMBIGUOUS_BAND_PLACES)
    names = _take_names(pools.band_names(), world.config.n_bands, used)
    song_titles = iter(pools.song_titles())
    used_songs = set(world.by_name)
    nodes = []
    song_index = 0
    for i, name in enumerate(names):
        entity = world.register(WorldEntity(
            node=f"m.band_{i:04d}", name=name, etype="band",
            concepts=_concepts_for("band"),
        ))
        members = rng.sample(musicians, k=min(rng.randint(2, 5), len(musicians)))
        entity.set_fact("members", *members)
        entity.set_fact("origin", rng.choice(cities))
        entity.set_fact("formed", str(rng.randint(1950, 2015)))
        entity.set_fact("genre", value_pools["genre"][rng.choice(pools.GENRES_MUSIC)])
        songs = []
        for title in song_titles:
            if title in used_songs:
                continue
            used_songs.add(title)
            song = world.register(WorldEntity(
                node=f"m.song_{song_index:05d}", name=title, etype="song",
                concepts=_concepts_for("song"),
            ))
            song_index += 1
            songs.append(song.node)
            if len(songs) >= rng.randint(2, 4):
                break
        if songs:
            entity.set_fact("songs", *songs)
        nodes.append(entity.node)
    return nodes


def _make_movies(world: World, stream: SeedStream, people, value_pools):
    rng = stream.substream("movies").rng()
    directors = _with_profession(world, people, value_pools, "actor")
    used = set(world.by_name)
    names = _take_names(pools.movie_titles(), world.config.n_movies, used)
    nodes = []
    for i, name in enumerate(names):
        entity = world.register(WorldEntity(
            node=f"m.movie_{i:04d}", name=name, etype="movie",
            concepts=_concepts_for("movie"),
        ))
        if directors:
            entity.set_fact("director", rng.choice(directors))
        entity.set_fact("release", str(rng.randint(1930, 2016)))
        if rng.random() < 0.85:
            entity.set_fact("runtime", str(rng.randint(60, 240)))
        entity.set_fact("genre", value_pools["genre"][rng.choice(pools.GENRES_BOOK)])
        nodes.append(entity.node)
    return nodes


def _make_universities(world: World, stream: SeedStream, cities):
    rng = stream.substream("universities").rng()
    host_cities = rng.sample(cities, k=min(world.config.n_universities, len(cities)))
    nodes = []
    for i, city in enumerate(host_cities):
        name = f"university of {world.name_of(city)}"
        if name in world.by_name:
            continue
        entity = world.register(WorldEntity(
            node=f"m.university_{i:04d}", name=name, etype="university",
            concepts=_concepts_for("university"),
        ))
        entity.set_fact("located_city", city)
        entity.set_fact("founded", str(rng.randint(1200, 1990)))
        entity.set_fact("students", str(rng.randint(1, 60) * 1_000))
        nodes.append(entity.node)
    return nodes


def _make_mountains(world: World, stream: SeedStream, countries):
    rng = stream.substream("mountains").rng()
    used = set(world.by_name)
    names = _take_names(pools.mountain_names(), world.config.n_mountains, used)
    nodes = []
    for i, name in enumerate(names):
        entity = world.register(WorldEntity(
            node=f"m.mountain_{i:04d}", name=name, etype="mountain",
            concepts=_concepts_for("mountain"),
        ))
        entity.set_fact("elevation", str(rng.randint(1_000, 8_800)))
        entity.set_fact("located_country", rng.choice(countries))
        nodes.append(entity.node)
    return nodes


def _make_foods(world: World, stream: SeedStream):
    nodes = []
    for i, name in enumerate(pools.FOOD_NAMES[: world.config.n_foods]):
        entity = world.register(WorldEntity(
            node=f"m.food_{i:04d}", name=name, etype="food",
            concepts=_concepts_for("food"),
        ))
        nodes.append(entity.node)
    return nodes


def _assign_capitals(world: World, stream: SeedStream, countries, cities) -> None:
    """Give each country a capital among its own cities (or any city)."""
    rng = stream.substream("capitals").rng()
    cities_by_country: dict[str, list[str]] = {}
    for city in cities:
        country_fact = world.entity(city).get_fact("located_country")
        if country_fact:
            cities_by_country.setdefault(country_fact[0], []).append(city)
    for country in countries:
        own = cities_by_country.get(country)
        capital = rng.choice(own) if own else rng.choice(cities)
        world.entity(country).set_fact("capital", capital)


# ---------------------------------------------------------------------------
# Chunked minting (the streaming mega-compile seam)
# ---------------------------------------------------------------------------
#
# `build_world` materializes every entity in one registry — fine at 10^3
# entities, impossible at 10^6+.  The mega compiler instead mints entities in
# fixed-size chunks: each chunk is derived from (seed, chunk index) alone, so
# chunk k can be regenerated without holding chunks 0..k-1, and every fact
# points either *inside* the chunk (marriages) or at a small shared set of
# **anchor** entities (cities, countries, value pools) taken from a normal
# small world.  Peak resident state is one chunk plus the anchors.

# First-name pool for minted people; the diacritic entries are deliberate —
# they exercise the tokenizer's unicode fold end-to-end (a gazetteer name and
# a typed question must tokenize identically).  Every diacritic decomposes
# under NFD, so each name has an exact ASCII fold.
MEGA_FIRST_NAMES: tuple[str, ...] = (
    "ada", "amos", "bela", "carl", "dina", "elio", "faye", "gus",
    "hana", "ivan", "juno", "kira", "liam", "mona", "nils", "otis",
    "pia", "remy", "sana", "tomas", "ursula", "vera", "wade", "yara",
    "josé", "rené", "zoë", "chloé", "andrés", "françois", "maría", "joão",
    "sören", "björn", "agnès", "inés",
)

# Base tokens for minted cities (again with decomposable diacritics).
MEGA_CITY_BASES: tuple[str, ...] = (
    "alder", "birch", "cedar", "dunmore", "elkton", "fairview", "granby",
    "harlow", "istra", "jasper", "keswick", "lorne", "medina", "norwood",
    "orillia", "pernik", "quarry", "rosetta", "sutton", "tambov",
    "são vicente", "córdoba nueva", "orléans", "valparaíso",
)

_MEGA_PERSON_TRIPLES = 8  # name + 2 category + dob/pob/residence/height/profession
_MEGA_CITY_TRIPLES = 7  # name + 2 category + population/area/country/founded


@dataclass(frozen=True, slots=True)
class MintAnchors:
    """The shared fact targets every minted chunk points at.

    Extracted once from an ordinary (small) anchor world; the whole structure
    is a few hundred node ids + names, which is what makes chunked minting
    memory-bounded.  ``professions`` is restricted to the professions with a
    concept refinement so minted people conceptualize exactly like built
    ones.
    """

    cities: tuple[str, ...]
    countries: tuple[str, ...]
    professions: tuple[tuple[str, str], ...]  # (profession name, pool node)
    names: dict[str, str]  # anchor node -> display name (gold answers)

    @classmethod
    def from_world(cls, world: World) -> "MintAnchors":
        cities = tuple(world.by_type.get("city", ()))
        countries = tuple(world.by_type.get("country", ()))
        professions = tuple(
            (e.name, e.node)
            for e in world.of_type("profession")
            if e.name in PROFESSION_CONCEPTS
        )
        if not (cities and countries and professions):
            raise ValueError("anchor world lacks cities/countries/professions")
        names = {node: world.name_of(node) for node in cities + countries}
        names.update({node: name for name, node in professions})
        return cls(cities, countries, professions, names)

    @property
    def n_entities(self) -> int:
        return len(self.names)


@dataclass(frozen=True, slots=True)
class ChunkSpec:
    """One chunk's coordinates: fully determined by (seed, index, sizes)."""

    seed: int
    index: int
    n_people: int
    n_cities: int
    person_start: int  # global serial of this chunk's first person
    city_start: int


def estimate_chunk_triples(spec: ChunkSpec) -> int:
    """Upper-bound triple count for sizing a run (marriage CVTs excluded)."""
    return spec.n_people * _MEGA_PERSON_TRIPLES + spec.n_cities * _MEGA_CITY_TRIPLES


def mint_chunk(spec: ChunkSpec, anchors: MintAnchors) -> list[WorldEntity]:
    """Mint one chunk of entities with complete fact sets.

    Deterministic in ``(spec.seed, spec.index)`` alone — no dependence on
    other chunks — and serial-suffixed names ("josé p0000123") keep every
    minted name globally unique, so NER resolution over a mega gazetteer is
    unambiguous by construction.  Core facts are always present (not
    probabilistic): the aligned gold QA pairs key on them, and a missing
    fact would turn a gold question into a silent recall loss.
    """
    rng = (
        SeedStream(spec.seed)
        .substream("mega")
        .substream(str(spec.index))
        .rng()
    )
    minted: list[WorldEntity] = []
    people: list[WorldEntity] = []
    for i in range(spec.n_people):
        serial = spec.person_start + i
        first = MEGA_FIRST_NAMES[rng.randrange(len(MEGA_FIRST_NAMES))]
        profession, profession_node = anchors.professions[
            serial % len(anchors.professions)
        ]
        entity = WorldEntity(
            node=f"m.mega_person_{serial:07d}",
            name=f"{first} p{serial:07d}",
            etype="person",
            concepts=_concepts_for("person", profession),
        )
        entity.set_fact("dob", str(rng.randint(1900, 1995)))
        entity.set_fact("profession", profession_node)
        entity.set_fact("pob", anchors.cities[rng.randrange(len(anchors.cities))])
        entity.set_fact(
            "residence", anchors.cities[rng.randrange(len(anchors.cities))]
        )
        entity.set_fact("height", str(rng.randint(150, 210)))
        people.append(entity)
        minted.append(entity)
    # in-chunk marriages: adjacent pairs, ~55% married like `_make_marriages`
    for a, b in zip(people[0::2], people[1::2]):
        if rng.random() < 0.55:
            a.set_fact("spouse", b.node)
            b.set_fact("spouse", a.node)
    for i in range(spec.n_cities):
        serial = spec.city_start + i
        base = MEGA_CITY_BASES[rng.randrange(len(MEGA_CITY_BASES))]
        entity = WorldEntity(
            node=f"m.mega_city_{serial:07d}",
            name=f"{base} c{serial:07d}",
            etype="city",
            concepts=_concepts_for("city"),
        )
        entity.set_fact("population", str(rng.randint(10, 9_999) * 1_000))
        entity.set_fact("area", str(rng.randint(50, 2_500)))
        entity.set_fact(
            "located_country", anchors.countries[rng.randrange(len(anchors.countries))]
        )
        entity.set_fact("founded", str(rng.randint(1400, 1990)))
        minted.append(entity)
    return minted
