"""Synthetic Wikipedia Infobox (Sec 6.3's validation resource).

The paper estimates the useful expansion length ``k`` by checking sampled
``(s, p+, o)`` triples against Infobox facts: a pair is *meaningful* when
some direct Infobox attribute of ``s`` carries the same value.  Our Infobox
is the world's ground truth rendered as per-entity fact sheets — attribute
label plus answer string (literal value, or target entity's name).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.world import LITERAL, SCHEMA_BY_INTENT, World

# Relations real Wikipedia infoboxes do not enumerate (a band's infobox has
# members and origin, never the full track list).  Their CVT paths therefore
# fail the valid(k) check — part of the k=3 collapse of Table 4.
INFOBOX_EXCLUDED_INTENTS = frozenset({"songs"})


@dataclass
class Infobox:
    """Per-entity fact sheets: node -> {(attribute label, value string)}."""

    facts: dict[str, set[tuple[str, str]]] = field(default_factory=dict)
    _values: dict[str, set[str]] = field(default_factory=dict)

    def add(self, node: str, label: str, value: str) -> None:
        self.facts.setdefault(node, set()).add((label, value))
        self._values.setdefault(node, set()).add(value)

    def has_fact(self, node: str, value: str) -> bool:
        """``∃p, (s, p, o) ∈ Infobox`` — the Eq 29 membership test."""
        return value in self._values.get(node, ())

    def attributes(self, node: str) -> set[tuple[str, str]]:
        return set(self.facts.get(node, ()))

    def __len__(self) -> int:
        return sum(len(entries) for entries in self.facts.values())


def build_infobox(world: World) -> Infobox:
    """Render the world's ground truth as an Infobox."""
    infobox = Infobox()
    for node, intent, value in world.iter_facts():
        if intent in INFOBOX_EXCLUDED_INTENTS:
            continue
        schema = SCHEMA_BY_INTENT[intent]
        if schema.value_kind == LITERAL:
            rendered = value
        else:
            rendered = world.name_of(value)
        infobox.add(node, schema.label, rendered)
    return infobox
