"""Synthetic world and knowledge-base construction.

The paper evaluates over a private billion-triple KB (KBA), Freebase and
DBpedia, with Yahoo! Answers as the QA corpus and Wikipedia Infobox as the
validation resource for predicate expansion.  None of those are shippable, so
this package builds a deterministic synthetic world — typed entities with
ground-truth facts — and compiles it into:

* a **Freebase-like** RDF store where several relations run through CVT
  (mediator) nodes, so the spouse intent really is ``marriage->person->name``;
* a **DBpedia-like** RDF store with direct predicates;
* an **Infobox** fact sheet per entity (ground truth, direct facts only).

Everything is seeded; the same seed reproduces the same world.
"""

from repro.data.world import World, WorldEntity, IntentSchema, build_world, WorldConfig
from repro.data.compile import CompiledKB, compile_freebase_like, compile_dbpedia_like
from repro.data.infobox import Infobox, build_infobox
from repro.data.conceptnet import build_taxonomy, build_conceptualizer

__all__ = [
    "World",
    "WorldEntity",
    "IntentSchema",
    "WorldConfig",
    "build_world",
    "CompiledKB",
    "compile_freebase_like",
    "compile_dbpedia_like",
    "Infobox",
    "build_infobox",
    "build_taxonomy",
    "build_conceptualizer",
]
