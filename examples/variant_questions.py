"""Variant questions: ranking, comparison, counting, listing, boolean.

The paper's introduction claims BFQ capability unlocks these forms; this
example runs the extension that implements the claim (``ExtendedKBQA``) on
each form and shows the learned-template probes behind every answer.

Run:  python examples/variant_questions.py
"""

from repro.core.system import KBQA
from repro.core.variants import VariantAnswerer
from repro.suite import build_suite


def main() -> None:
    suite = build_suite("small", seed=7)
    system = KBQA.train(suite.freebase, suite.corpus, suite.conceptualizer)
    variants = VariantAnswerer(system, suite.taxonomy)
    world = suite.world

    country = next(
        c for c in world.of_type("country")
        if sum(
            1 for city in world.of_type("city")
            if city.get_fact("located_country") == (c.node,)
        ) >= 2
    )
    cities = [c for c in world.of_type("city") if c.get_fact("population")][:2]
    person = next(p for p in world.of_type("person") if p.get_fact("spouse"))
    spouse_name = world.name_of(person.get_fact("spouse")[0])

    questions = [
        "which city has the largest population?",
        "which country has the most people?",
        f"which city has more people , {cities[0].name} or {cities[1].name}?",
        f"how many cities are there in {country.name}?",
        f"list all cities in {country.name} ordered by population",
        f"is {person.name} married to {spouse_name}?",
    ]

    for question in questions:
        result = variants.answer(question)
        print(f"Q: {question}")
        if result is None or not result.answered:
            print("   (not answerable as a variant)\n")
            continue
        print(f"   kind:      {result.kind}")
        if result.probed_with:
            print(f"   probe:     {result.probed_with}")
        if result.predicate is not None:
            print(f"   predicate: {result.predicate}")
        shown = ", ".join(result.values[:5])
        suffix = f" (+{len(result.values) - 5} more)" if len(result.values) > 5 else ""
        print(f"   answer:    {shown}{suffix}\n")

    print("every predicate above was recovered through learned templates —")
    print("no keyword matching is involved in variant answering.")


if __name__ == "__main__":
    main()
