"""Quickstart: build a synthetic suite, train KBQA, ask questions.

Run:  python examples/quickstart.py
"""

from repro.core.system import KBQA
from repro.suite import build_suite


def main() -> None:
    print("building the synthetic world, KBs and QA corpus (scale=small)...")
    suite = build_suite("small", seed=7)
    print(f"  world: {suite.world.stats()['total_entities']} entities, "
          f"{suite.world.stats()['facts']} facts")
    print(f"  corpus: {len(suite.corpus)} QA pairs")

    print("\ntraining KBQA on the Freebase-like KB (offline procedure)...")
    system = KBQA.train(suite.freebase, suite.corpus, suite.conceptualizer)
    info = system.describe()
    print(f"  learned {info['templates']} templates over {info['predicates']} "
          f"predicate paths from {info['observations']} observations")

    # Pick demo entities straight from the world's ground truth.
    city = next(e for e in suite.world.of_type("city") if e.get_fact("population"))
    person = next(e for e in suite.world.of_type("person") if e.get_fact("spouse"))

    questions = [
        f"what is the population of {city.name}?",
        f"how many people are there in {city.name}?",   # the anti-keyword paraphrase
        f"how big is {city.name}?",                      # ambiguous surface
        f"who is {person.name} married to?",             # CVT-mediated predicate
        f"what is the head count of {city.name}?",       # unseen paraphrase -> refusal
    ]
    print("\nanswering:")
    for question in questions:
        result = system.answer(question)
        if result.answered:
            print(f"  Q: {question}")
            print(f"     A: {result.value}   [template: {result.template} | "
                  f"predicate: {result.predicate}]")
        else:
            print(f"  Q: {question}")
            print("     A: (refused — no learned template matches)")

    gold = suite.world.gold_values(city.node, "population")
    print(f"\nground truth population of {city.name}: {', '.join(sorted(gold))}")


if __name__ == "__main__":
    main()
