"""Serving tour: start the HTTP answer service in-process, talk to it.

Shows the whole serving story: a trained system behind the coalescing
async front (`repro.serve`), queried over plain HTTP — single answers,
client batches, a live KB edit through /facts, and the serving counters.

Run:  python examples/serving_client.py
(Against a standalone server, start `kbqa serve --scale small --port 8080`
and point the same requests at http://127.0.0.1:8080.)
"""

import json
import threading
import urllib.request

from repro.core.system import KBQA
from repro.kb.triple import make_literal
from repro.serve import BackgroundServer, ServeConfig
from repro.suite import build_suite


def post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def main() -> None:
    print("training KBQA on the small synthetic suite...")
    suite = build_suite("small", seed=7)
    system = KBQA.train(suite.freebase, suite.corpus, suite.conceptualizer)
    city = next(e for e in suite.world.of_type("city") if e.get_fact("population"))
    question = f"what is the population of {city.name}?"

    config = ServeConfig(workers=2, max_batch=8)
    with BackgroundServer(system, config) as bg:
        print(f"\nserver up on {bg.url} (ephemeral port, private event loop)")

        print(f"\nPOST /answer  {question!r}")
        answer = post(bg.url + "/answer", {"question": question})
        print(f"  -> {answer['value']}  (answered={answer['answered']}, "
              f"predicate={answer['predicate']})")

        print("\nPOST /batch with duplicates (the server coalesces in flight)")
        batch = post(bg.url + "/batch", {"questions": [question] * 4})
        values = {r["value"] for r in batch["results"]}
        print(f"  -> {len(batch['results'])} results, {len(values)} distinct value")

        print("\n12 concurrent clients asking the same question...")
        def client():
            post(bg.url + "/answer", {"question": question})
        workers = [threading.Thread(target=client) for _ in range(12)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        stats = get(bg.url + "/stats")["serve"]
        print(f"  serve counters: requests={stats['requests']} "
              f"coalesced={stats['coalesced']} batches={stats['batches']} "
              f"evaluated={stats['evaluated']}")

        print("\nPOST /facts: live-edit the KB through the quiesced write path")
        node = answer["entity"]
        fact = {"subject": node, "predicate": "population",
                "object": make_literal("424242")}
        print(f"  add {fact['subject']} population 424242 -> "
              f"changed={post(bg.url + '/facts', {'op': 'add', **fact})['changed']}")
        edited = post(bg.url + "/answer", {"question": question})
        print(f"  same question now: values={edited['values']}")
        post(bg.url + "/facts", {"op": "delete", **fact})
        restored = post(bg.url + "/answer", {"question": question})
        print(f"  after delete: values={restored['values']}")

        print(f"\nGET /healthz -> {get(bg.url + '/healthz')}")
    print("\nserver stopped, event loop joined — clean shutdown.")


if __name__ == "__main__":
    main()
