"""Predicate expansion tour (Sec 6): CVT paths, valid(k), learned templates.

Shows why multi-edge predicates matter: the spouse relation simply does not
exist as a direct edge in the Freebase-like KB.  Then reproduces the
valid(k) selection and lists what the model learned for the spouse path.

Run:  python examples/predicate_expansion_tour.py
"""

from repro.core.kselect import choose_k, valid_k
from repro.core.system import KBQA
from repro.kb.expansion import expand_predicates
from repro.kb.paths import PredicatePath
from repro.suite import build_suite
from repro.utils.tables import Table


def main() -> None:
    suite = build_suite("small", seed=7)
    store = suite.freebase.store
    person = next(e for e in suite.world.of_type("person") if e.get_fact("spouse"))
    spouse_name = next(iter(suite.world.gold_values(person.node, "spouse")))

    print(f"entity: {person.name} ({person.node}); spouse: {spouse_name}\n")
    print("direct predicates leaving the entity:")
    print(" ", sorted(store.predicates_of(person.node)))
    print("note: no 'spouse' edge — the relation runs through a CVT node.\n")

    expanded = expand_predicates(store, [person.node], max_length=3)
    spouse_path = PredicatePath(("marriage", "person", "name"))
    print(f"expanded predicates from {person.name} "
          f"({len(expanded.distinct_paths())} distinct paths), spouse path:")
    print(f"  V(e, {spouse_path}) = {sorted(expanded.objects(person.node, spouse_path))}\n")

    print("valid(k) against the Infobox (Sec 6.3):")
    counts = valid_k(store, suite.infobox, max_length=3, sample_entities=200)
    table = Table(["k", "valid(k)"])
    for k, count in counts.items():
        table.add_row([k, count])
    table.print()
    print(f"chosen k = {choose_k(counts)} (the paper also chooses 3)\n")

    print("training KBQA to see what the spouse path's templates look like...")
    system = KBQA.train(suite.freebase, suite.corpus, suite.conceptualizer)
    templates = system.model.templates_for_path(spouse_path, count=8)
    print(f"top templates learned for {spouse_path}:")
    for template in templates:
        print(f"  {template}   (support {system.model.support(template):.1f})")


if __name__ == "__main__":
    main()
