"""Complex question answering: decomposition + chained BFQs (Sec 5).

Walks through the paper's Table 15 compositions against the synthetic
world, showing each question's optimal decomposition, the per-step answers,
and the final value against ground truth.

Run:  python examples/complex_questions.py
"""

from repro.core.system import KBQA
from repro.suite import build_suite


def main() -> None:
    suite = build_suite("small", seed=7)
    system = KBQA.train(suite.freebase, suite.corpus, suite.conceptualizer)

    benchmark = suite.benchmark("complex")
    print(f"answering {benchmark.n_total} complex questions "
          "(Table 15 composition patterns)\n")

    correct = 0
    for bq in benchmark.questions:
        result = system.answer_complex(bq.question)
        print(f"Q: {bq.question}")
        print(f"   pattern: {bq.meta['pattern']}")
        sequence = result.decomposition.sequence
        if len(sequence) > 1:
            print(f"   decomposition (score {result.decomposition.score:.3f}):")
            for i, part in enumerate(sequence):
                print(f"     q{i}: {part}")
        else:
            print("   (not decomposed)")
        for i, step in enumerate(result.steps):
            print(f"   step {i}: {step.question!r} -> {step.value}")
        is_right = result.answered and bool(set(result.values) & set(bq.gold_values))
        correct += int(is_right)
        gold_preview = ", ".join(sorted(bq.gold_values)[:3])
        print(f"   final: {result.value}   gold: {gold_preview}   "
              f"{'RIGHT' if is_right else 'WRONG'}\n")

    print(f"{correct}/{benchmark.n_total} complex questions answered correctly")


if __name__ == "__main__":
    main()
