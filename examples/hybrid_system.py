"""Hybrid systems: KBQA in front of each baseline (Sec 7.3.1, Table 11).

Evaluates the keyword, rule and synonym (DEANNA-like) baselines alone and
composed behind KBQA on the QALD-3-like benchmark, printing the uplift.

Run:  python examples/hybrid_system.py
"""

from repro.baselines import HybridSystem, KeywordQA, RuleQA, SynonymQA
from repro.core.system import KBQA
from repro.eval.runner import evaluate_qald
from repro.suite import build_suite
from repro.utils.tables import Table


def main() -> None:
    suite = build_suite("small", seed=7)
    kb = suite.freebase
    print("training KBQA...")
    kbqa = KBQA.train(kb, suite.corpus, suite.conceptualizer)

    baselines = {
        "keyword": KeywordQA(kb),
        "rule": RuleQA(kb),
        "synonym (DEANNA-like)": SynonymQA(kb),
    }
    benchmark = suite.benchmark("qald3")

    table = Table(["system", "#pro", "#ri", "R", "P"], title="QALD-3-like: alone vs hybrid")
    kbqa_metrics, _ = evaluate_qald(kbqa, benchmark, kb)
    table.add_row(["KBQA alone", kbqa_metrics.processed, kbqa_metrics.right,
                   round(kbqa_metrics.recall, 2), round(kbqa_metrics.precision, 2)])
    for name, baseline in baselines.items():
        alone, _ = evaluate_qald(baseline, benchmark, kb)
        hybrid, _ = evaluate_qald(HybridSystem(kbqa, baseline), benchmark, kb)
        table.add_row([name, alone.processed, alone.right,
                       round(alone.recall, 2), round(alone.precision, 2)])
        table.add_row([f"KBQA + {name}", hybrid.processed, hybrid.right,
                       round(hybrid.recall, 2), round(hybrid.precision, 2)])
    table.print()

    print("the hybrid never loses recall and usually gains precision —")
    print("KBQA answers the BFQs it is sure about, the baseline mops up the rest.")


if __name__ == "__main__":
    main()
