"""Train once, persist everything, reload and answer offline.

Demonstrates the artifact lifecycle a production deployment needs: the
knowledge base serializes as tab-separated triples, the corpus as JSONL and
the learned template model as JSON; a fresh process reloads all three and
answers without retraining the EM.

Run:  python examples/train_persist_reload.py
"""

import tempfile
from pathlib import Path

from repro.core.model import TemplateModel
from repro.core.kbview import KBView
from repro.core.online import OnlineAnswerer
from repro.core.system import KBQA
from repro.kb.expansion import expand_predicates
from repro.kb.rdf_io import load_ntriples, save_ntriples
from repro.nlp.ner import EntityRecognizer
from repro.suite import build_suite


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="kbqa-"))
    print(f"workspace: {workdir}\n")

    # ---- phase 1: train and persist ------------------------------------
    suite = build_suite("small", seed=7)
    system = KBQA.train(suite.freebase, suite.corpus, suite.conceptualizer)
    city = next(e for e in suite.world.of_type("city") if e.get_fact("population"))
    question = f"how many people live in {city.name}?"
    print(f"trained; live answer: {system.answer(question).value}")

    kb_path = workdir / "freebase_like.nt"
    model_path = workdir / "model.json"
    corpus_path = workdir / "corpus.jsonl"
    n_triples = save_ntriples(suite.freebase.store, kb_path)
    system.model.save(model_path)
    n_pairs = suite.corpus.save(corpus_path)
    print(f"persisted {n_triples} triples, model "
          f"({system.model.n_templates} templates), {n_pairs} QA pairs\n")

    # ---- phase 2: reload in 'another process' and answer ----------------
    print("reloading from disk (no retraining)...")
    store = load_ntriples(kb_path)
    model = TemplateModel.load(model_path)

    # Rebuild the online machinery around the loaded artifacts.  The
    # gazetteer is recoverable from the store's name edges.
    gazetteer: dict[str, list[str]] = {}
    for triple in store.triples():
        if triple.predicate == "name" and triple.object.startswith('"'):
            gazetteer.setdefault(triple.object[1:], []).append(triple.subject)
    ner = EntityRecognizer(gazetteer)
    seeds = [node for nodes in gazetteer.values() for node in nodes]
    expanded = expand_predicates(store, seeds, max_length=3)
    answerer = OnlineAnswerer(
        KBView(store, expanded), ner, suite.conceptualizer, model
    )

    result = answerer.answer(question)
    print(f"reloaded answer: {result.value}")
    gold = suite.world.gold_values(city.node, "population")
    print(f"ground truth:    {', '.join(sorted(gold))}")
    assert result.value in gold, "reloaded system must agree with ground truth"
    print("\nround trip verified.")


if __name__ == "__main__":
    main()
