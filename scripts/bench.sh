#!/usr/bin/env bash
# Benchmark entry point: perf harness (writes BENCH_perf.json) + timing
# benchmarks.  Usage: scripts/bench.sh [--scale small|default]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

SCALE="${BENCH_SCALE:-default}"
if [[ "${1:-}" == "--scale" && -n "${2:-}" ]]; then
    SCALE="$2"
    shift 2
fi

# Shard counts for the scaling sweep (expansion scan + answer_many per count).
SHARDS="${BENCH_SHARDS:-1 2 4}"

# shellcheck disable=SC2086  # SHARDS is a deliberate word-split list
python -m benchmarks.perf_harness --scale "$SCALE" --shards $SHARDS --output BENCH_perf.json
python -m pytest tests/test_perf_speedups.py -m perf -q
python -m pytest benchmarks/bench_offline_timecost.py benchmarks/bench_table14_timecost.py -q "$@"
