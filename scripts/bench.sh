#!/usr/bin/env bash
# Benchmark entry point: perf harness (writes BENCH_perf.json) + timing
# benchmarks.  Usage: scripts/bench.sh [--scale small|default]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

SCALE="${BENCH_SCALE:-default}"
if [[ "${1:-}" == "--scale" && -n "${2:-}" ]]; then
    SCALE="$2"
    shift 2
fi

# Shard counts for the scaling sweep (expansion scan + answer_many per count).
SHARDS="${BENCH_SHARDS:-1 2 4}"

# Process-pool worker counts for the exec-backend sweep (`proc_sweep` in
# BENCH_perf.json: serial vs thread vs process expansion scan + serving A/B).
PROC_WORKERS="${BENCH_PROC_WORKERS:-1 2 4}"

# Serving QPS sweep (repro.serve async front): closed-loop concurrency levels,
# duplicate rates, and requests per cell; lands as the `qps` section of
# BENCH_perf.json with a coalescing on/off A/B per cell.
QPS_CONCURRENCY="${BENCH_QPS_CONCURRENCY:-4 16 64}"
QPS_DUP_RATES="${BENCH_QPS_DUP_RATES:-0.0 0.5 0.9}"
QPS_REQUESTS="${BENCH_QPS_REQUESTS:-512}"

# batch_window_ms linger values for the window x offered-rate sweep
# (`qps.batch_window` in BENCH_perf.json); cpus is recorded top-level.
WINDOWS_MS="${BENCH_WINDOWS_MS:-0 2 5}"

# Mega-world triple target for the scenario sweep (`scenarios` in
# BENCH_perf.json: streamed compile accounting + recall/p50/p99 for the
# skew / churn / temporal / paraphrase axes).  0 skips the sweep.
SCENARIO_N="${BENCH_SCENARIO_N:-200000}"

# shellcheck disable=SC2086  # SHARDS / PROC_WORKERS / QPS_* / WINDOWS_MS are word-split lists
python -m benchmarks.perf_harness --scale "$SCALE" --shards $SHARDS \
    --proc-workers $PROC_WORKERS \
    --qps-requests "$QPS_REQUESTS" --qps-concurrency $QPS_CONCURRENCY \
    --qps-dup-rates $QPS_DUP_RATES --windows-ms $WINDOWS_MS \
    --output BENCH_perf.json
if [[ "$SCENARIO_N" -gt 0 ]]; then
    python -m benchmarks.bench_scenarios --triples "$SCENARIO_N" \
        --merge BENCH_perf.json
fi
python -m pytest tests/test_perf_speedups.py -m perf -q
python -m pytest benchmarks/bench_offline_timecost.py benchmarks/bench_table14_timecost.py -q "$@"
