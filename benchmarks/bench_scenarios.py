"""Scenario benchmark: mega-world compile + the four serving-realism axes.

Stream-compiles an N-triple mega world (:func:`repro.corpus.mega.compile_mega`
— bounded-memory chunked minting through the batched ingest seam) and drives
the scenario harness (:func:`repro.eval.scenarios.run_scenarios`) over it:

* ``skew``       — Zipf hot-set traffic at an offered Poisson rate,
* ``churn``      — sustained ``/facts``-style writes during serving,
* ``temporal``   — fact supersession (the fresh answer must win),
* ``paraphrase`` — unicode perturbation + held-out-surface abstention,
  plus the semantic-fallback recovery cell (held-out recall with the
  embedding lane on), published as ``scenarios.paraphrase.fallback``.

Each axis reports recall plus p50/p99; the compile itself contributes
triples/sec and the peak-RSS accounting from ``manifest.json``.  The payload
lands as the ``scenarios`` section of ``BENCH_perf.json``::

    PYTHONPATH=src python -m benchmarks.bench_scenarios --triples 200000 \
        --merge BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.corpus.mega import MegaSpec, compile_mega
from repro.eval.scenarios import ALL_AXES, ScenarioSpec, run_scenarios


def measure_scenarios(
    triples: int,
    *,
    seed: int = 7,
    requests: int = 400,
    rate_qps: float = 200.0,
    axes: tuple[str, ...] = ALL_AXES,
    out_dir: str | None = None,
    fallback: bool = True,
) -> dict:
    """One compile + one scenario sweep; returns the ``scenarios`` payload."""
    with tempfile.TemporaryDirectory(prefix="kbqa-mega-") as scratch:
        target = out_dir or scratch
        start = time.perf_counter()
        build = compile_mega(MegaSpec(triples=triples, seed=seed), target)
        compile_s = time.perf_counter() - start
        build.kb.store.close()

        report = run_scenarios(
            target,
            ScenarioSpec(
                axes=axes,
                requests=requests,
                rate_qps=rate_qps,
                seed=seed,
                fallback=fallback and "paraphrase" in axes,
            ),
        )
    manifest = build.manifest
    return {
        "compile": {
            "triples": manifest["triples"],
            "chunks": manifest["chunks"],
            "compile_s": round(compile_s, 3),
            "triples_per_sec": int(manifest["triples"] / compile_s)
            if compile_s > 0
            else None,
            "peak_resident_entities": manifest["peak_resident_entities"],
            "total_entities": manifest["total_entities"],
            "ru_maxrss_kb": manifest.get("ru_maxrss_kb"),
        },
        "axes": report["axes"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="KBQA scenario benchmark")
    parser.add_argument(
        "--triples", type=int, default=200_000,
        help="mega-world triple target (default: 200,000)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--requests", type=int, default=400,
        help="open-loop arrivals for the skew/churn axes",
    )
    parser.add_argument(
        "--rate-qps", type=float, default=200.0,
        help="offered Poisson rate for the skew/churn axes",
    )
    parser.add_argument(
        "--axes", default=",".join(ALL_AXES),
        help=f"comma-separated axes (default: {','.join(ALL_AXES)})",
    )
    parser.add_argument(
        "--merge", metavar="PATH", default=None,
        help="merge the scenarios section into an existing BENCH_perf.json",
    )
    parser.add_argument(
        "--no-fallback", action="store_true",
        help="skip the paraphrase axis's semantic-fallback recovery cell",
    )
    args = parser.parse_args(argv)

    axes = tuple(a.strip() for a in args.axes.split(",") if a.strip())
    payload = measure_scenarios(
        args.triples,
        seed=args.seed,
        requests=args.requests,
        rate_qps=args.rate_qps,
        axes=axes,
        fallback=not args.no_fallback,
    )
    compile_row = payload["compile"]
    print(
        f"compile: {compile_row['triples']:,} triples in "
        f"{compile_row['compile_s']}s ({compile_row['triples_per_sec']:,}/s), "
        f"peak resident {compile_row['peak_resident_entities']:,} of "
        f"{compile_row['total_entities']:,} entities, "
        f"rss {compile_row['ru_maxrss_kb']} KiB"
    )
    for axis, row in payload["axes"].items():
        keys = ("recall", "checked", "incorrect", "p50_ms", "p99_ms")
        rendered = " ".join(f"{k}={row[k]}" for k in keys if k in row)
        print(f"{axis}: {rendered}")
        cell = row.get("fallback")
        if cell is not None:
            keys = ("recall", "recovered", "wrong", "abstained", "benign_incorrect")
            rendered = " ".join(f"{k}={cell[k]}" for k in keys if k in cell)
            print(f"paraphrase.fallback: {rendered}")
    if args.merge:
        path = Path(args.merge)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(
                f"bench_scenarios: cannot merge into {path}: {error}",
                file=sys.stderr,
            )
            return 1
        doc["scenarios"] = payload
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        print(f"merged scenarios section into {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
