"""Perf harness: measures the hot paths and emits ``BENCH_perf.json``.

Tracks the performance trajectory from this PR onward.  One run measures,
on the same machine and the same inputs:

* **expansion** — the Sec 6.2 scan, ID-native vs the string-level baseline,
  plus materialization throughput (expanded triples/second);
* **em** — one full estimation, array-based vs the dict-of-dict reference,
  on the real encoded observations of the offline pipeline;
* **online** — per-question latency (mean/p50) over the qald3 BFQ set,
  before (no precompute, no caches) and after (ranked arrays + memoized
  lookups), and a warm pass through the answer cache;
* **offline_train_s** — end-to-end ``KBQA.train`` wall-clock;
* **shard_sweep** — the Sec 6.2 expansion scan and ``answer_many`` against
  the same KB compiled into 1/2/4 subject shards
  (:class:`~repro.kb.sharded.ShardedTripleStore`), so the perf trajectory
  records *scaling*, not just single-store speedups;
* **cold_start** — time-to-first-answer after a restart per persistence
  format: v1 (JSON lines, full re-parse), v2 (mmap + dict materialization),
  v3 (served straight from the mapped index sections) and ``disk`` (the KB
  itself reopened from the compiled SQLite file — a full restart with
  nothing rebuilt from the source world);
* **qps** — serving throughput through the async front
  (:mod:`repro.serve`): closed-loop load over concurrency x duplicate-rate,
  coalescing on vs off on identical request streams, plus the open-loop
  Poisson latency cells and the end-to-end HTTP socket cell
  (``benchmarks/bench_qps.py``);
* **proc_sweep** — the execution-backend A/B (`repro.exec`): the Sec 6.2
  expansion scan on the 4-shard bench KB under serial / thread / process
  backends across worker counts — each process cell measured both
  *per-call* (fresh pool + table shipping every expansion) and on a
  *persistent* :class:`~repro.exec.pool.ExecutorPool` (warm workers, one
  shared-memory shard-table publish) — and a serving cell dispatching
  ``answer_many`` micro-batches to thread vs process workers.  Records
  ``cpus`` alongside, because process scaling is physically bounded by the
  cores the runner actually has.  The ``qps.batch_window`` section sweeps
  the ``batch_window_ms`` linger knob against offered Poisson rates.

Usage::

    PYTHONPATH=src python -m benchmarks.perf_harness --scale default \
        --shards 1 2 4 --proc-workers 1 2 4 --output BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import time
from pathlib import Path

from repro.core.em import EMConfig, run_em, run_em_reference
from repro.core.kbview import KBView
from repro.core.learner import LearnerConfig, OfflineLearner
from repro.core.online import OnlineAnswerer
from repro.core.system import KBQA
from repro.data.compile import compile_freebase_like
from repro.kb.expansion import expand_predicates, expand_predicates_baseline
from repro.suite import build_suite


def _available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine; CI runners and cgroup-limited
    containers pin the process to a subset, and every scaling claim in this
    payload is bounded by *that* number, so record the affinity mask where
    the platform exposes it.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        return len(getaffinity(0))
    return os.cpu_count() or 1


def _best_of(fn, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _latencies_ms(answer, questions) -> list[float]:
    out = []
    for question in questions:
        start = time.perf_counter()
        answer(question)
        out.append((time.perf_counter() - start) * 1000.0)
    return out


def _shard_sweep(suite, system, seeds, questions, shard_counts, repeats) -> dict:
    """Expansion-scan and ``answer_many`` wall-clock per shard count.

    Each step recompiles the same world into N subject shards, re-runs the
    Sec 6.2 scan (asserting the materialized triple count matches the
    single-store run) and serves the qald3 BFQ set through a fresh answerer
    whose KB lookups fan out per shard.
    """
    sweep: dict[str, dict] = {}
    reference_spo: int | None = None
    for n in shard_counts:
        kb = compile_freebase_like(suite.world, shards=n)
        expand_s, expanded = _best_of(
            lambda: expand_predicates(kb.store, seeds, max_length=3), repeats
        )
        if reference_spo is None:
            reference_spo = len(expanded)
        assert len(expanded) == reference_spo, "shard equivalence violated"
        answerer = OnlineAnswerer(
            KBView(kb.store, expanded),
            system.learn_result.ner,
            system.conceptualizer,
            system.model,
            max_concepts=system.config.max_concepts_online,
        )
        start = time.perf_counter()
        answerer.answer_many(questions)
        cold_ms = (time.perf_counter() - start) * 1000.0
        start = time.perf_counter()
        answerer.answer_many(questions)
        warm_ms = (time.perf_counter() - start) * 1000.0
        sweep[str(n)] = {
            "shards": n,
            "expand_s": round(expand_s, 4),
            "spo_triples": len(expanded),
            "answer_many_cold_ms": round(cold_ms, 3),
            "answer_many_warm_ms": round(warm_ms, 3),
            "cold_ms_per_q": round(cold_ms / max(len(questions), 1), 3),
        }
    return sweep


def _cold_start(suite, system, expanded, questions, repeats) -> dict:
    """Time-to-first-answer after a restart, per persistence format.

    Simulates the restart path: the trained expansion is saved once per
    artifact format, then each timed run loads the artifact, builds a fresh
    answerer over it and answers one question — v1 re-parses JSON lines,
    v2 mmaps then materializes the dict indexes, v3 answers straight from
    the mapped index sections.  The ``disk`` cell goes further: it also
    reopens the KB itself from a pre-compiled SQLite file
    (:class:`~repro.kb.disk.DiskTripleStore`), i.e. a restart where
    *nothing* is rebuilt from the source world.  Every cell's first answer
    is asserted equal to the live system's.
    """
    import tempfile

    from repro.kb.disk import DiskTripleStore
    from repro.kb.expansion import ExpandedStore

    store = suite.freebase.store
    question = questions[0]
    reference = system.answer(question)

    def first_answer(kb_store, loaded):
        answerer = OnlineAnswerer(
            KBView(kb_store, loaded),
            system.learn_result.ner,
            system.conceptualizer,
            system.model,
            max_concepts=system.config.max_concepts_online,
        )
        return answerer.answer(question)

    cells: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="kbqa-coldstart-") as tmp:
        for fmt in ("v1", "v2", "v3"):
            path = os.path.join(tmp, f"expansion.{fmt}")
            expanded.save(path, format=fmt)

            def run(path=path):
                loaded = ExpandedStore.load(path)
                return first_answer(store, loaded)

            total_s, result = _best_of(run, repeats)
            assert result == reference, f"cold-start {fmt} answer diverged"
            load_s, _ = _best_of(lambda path=path: ExpandedStore.load(path), repeats)
            cells[fmt] = {
                "artifact_bytes": os.path.getsize(path),
                "load_ms": round(load_s * 1000.0, 3),
                "first_answer_ms": round(total_s * 1000.0, 3),
            }

        db_path = os.path.join(tmp, "freebase.db")
        compile_freebase_like(suite.world, backend="disk", db_path=db_path).store.close()
        v3_path = os.path.join(tmp, "expansion.v3")

        def run_disk():
            kb_store = DiskTripleStore(db_path)
            loaded = ExpandedStore.load(v3_path)
            return first_answer(kb_store, loaded)

        total_s, result = _best_of(run_disk, repeats)
        assert result == reference, "cold-start disk answer diverged"
        open_s, _ = _best_of(lambda: DiskTripleStore(db_path), repeats)
        cells["disk"] = {
            "artifact_bytes": os.path.getsize(v3_path) + os.path.getsize(db_path),
            "kb_open_ms": round(open_s * 1000.0, 3),
            "first_answer_ms": round(total_s * 1000.0, 3),
        }

    return {
        **cells,
        "speedup_v3_vs_v1": round(
            cells["v1"]["first_answer_ms"] / max(cells["v3"]["first_answer_ms"], 1e-9), 2
        ),
        "note": (
            "first_answer_ms = artifact load + answerer build + one answered "
            "question, best-of-N; v1/v2/v3 reuse the in-memory KB, disk also "
            "reopens the KB from SQLite (full restart, nothing rebuilt)"
        ),
    }


def _proc_sweep(suite, system, seeds, questions, proc_workers, repeats) -> dict:
    """The execution-backend A/B on the bench KB (4 subject shards).

    Expansion: serial vs thread(4) vs process at each worker count —
    equivalence asserted on the materialized triple count every run.
    Serving: one closed-loop cell each for thread- and process-backed
    micro-batch dispatch (same stream, answer cache off).
    """
    from repro.exec.backend import resolve_workers
    from repro.serve.loadgen import LoadSpec, run_load_cell

    from benchmarks.bench_qps import _fresh_target

    kb = compile_freebase_like(suite.world, shards=4)
    serial_s, serial_expanded = _best_of(
        lambda: expand_predicates(kb.store, seeds, max_length=3, executor="serial"),
        repeats,
    )
    reference_spo = len(serial_expanded)
    thread_s, thread_expanded = _best_of(
        lambda: expand_predicates(
            kb.store, seeds, max_length=3, executor="thread", workers=4
        ),
        repeats,
    )
    assert len(thread_expanded) == reference_spo, "thread equivalence violated"
    process_cells: dict[str, dict] = {}
    for workers in proc_workers:
        workers = resolve_workers(workers)
        # per-call: every expansion pays pool start + per-worker table pickle
        process_s, process_expanded = _best_of(
            lambda: expand_predicates(
                kb.store, seeds, max_length=3, executor="process", workers=workers
            ),
            repeats,
        )
        assert len(process_expanded) == reference_spo, "process equivalence violated"
        # persistent: one warm pool + one shared-memory shard-table publish
        # serve every timed call (the KBQA-owned ExecutorPool steady state)
        from repro.exec.pool import ExecutorPool

        with ExecutorPool("process", workers) as pool:
            warm = expand_predicates(kb.store, seeds, max_length=3, executor=pool)
            assert len(warm) == reference_spo, "pool equivalence violated"
            persistent_s, persistent_expanded = _best_of(
                lambda: expand_predicates(kb.store, seeds, max_length=3, executor=pool),
                repeats,
            )
            assert len(persistent_expanded) == reference_spo, "pool equivalence violated"
            pool_starts, pool_publishes = pool.starts, pool.publishes
        process_cells[str(workers)] = {
            "workers": workers,
            "expand_s": round(process_s, 4),
            "speedup_vs_serial": round(serial_s / max(process_s, 1e-9), 2),
            "persistent_expand_s": round(persistent_s, 4),
            "speedup_persistent_vs_per_call": round(
                process_s / max(persistent_s, 1e-9), 2
            ),
            "pool_starts": pool_starts,  # 1 = all timed calls reused the pool
            "pool_publishes": pool_publishes,  # 1 = tables crossed once
        }

    spec = LoadSpec(requests=256, concurrency=32, duplicate_rate=0.0, seed=7)
    serve_cells = {}
    for backend in ("thread", "process"):
        cell = run_load_cell(
            _fresh_target(system),
            questions,
            spec,
            coalesce=True,
            max_batch=8,
            workers=2,
            executor=backend,
        )
        serve_cells[backend] = {
            "qps": cell["qps"],
            "evaluated": cell["evaluated"],
            "rejected": cell["rejected"],
        }

    last = process_cells[str(resolve_workers(proc_workers[-1]))]
    return {
        "shards": 4,
        "cpus": _available_cpus(),
        "spo_triples": reference_spo,
        "serial_s": round(serial_s, 4),
        "thread": {
            "workers": 4,
            "expand_s": round(thread_s, 4),
            "speedup_vs_serial": round(serial_s / max(thread_s, 1e-9), 2),
        },
        "process": process_cells,
        "speedup_process_max_workers_vs_serial": last["speedup_vs_serial"],
        "serve_exec": {
            **serve_cells,
            "process_vs_thread_qps": round(
                serve_cells["process"]["qps"]
                / max(serve_cells["thread"]["qps"], 1e-9),
                2,
            ),
        },
        "note": (
            "scan wall-clock is best-of-N on the 4-shard bench KB; process "
            "cells include pool start + shard-table shipping; real speedup "
            "requires real cores (see cpus)"
        ),
    }


def measure(
    scale: str,
    seed: int,
    repeats: int,
    shard_counts: list[int],
    qps_requests: int = 512,
    qps_concurrency: list[int] | None = None,
    qps_dup_rates: list[float] | None = None,
    proc_workers: list[int] | None = None,
    windows_ms: list[float] | None = None,
) -> dict:
    """Run every measurement; returns the BENCH_perf payload."""
    suite = build_suite(scale, seed=seed)
    store = suite.freebase.store

    # -- expansion: ID-native scan vs string-level baseline ------------------
    seeds = [e.node for e in suite.world.of_type("person")]
    seeds += [e.node for e in suite.world.of_type("city")]
    after_s, expanded = _best_of(
        lambda: expand_predicates(store, seeds, max_length=3), repeats
    )
    before_s, baseline = _best_of(
        lambda: expand_predicates_baseline(store, seeds, max_length=3), repeats
    )
    assert len(expanded) == len(baseline), "equivalence violated"
    expansion = {
        "seeds": len(seeds),
        "spo_triples": len(expanded),
        "before_s": round(before_s, 4),
        "after_s": round(after_s, 4),
        "speedup": round(before_s / max(after_s, 1e-9), 2),
        "triples_per_sec": round(len(expanded) / max(after_s, 1e-9)),
    }

    # -- EM: array-based vs dict-of-dict reference ---------------------------
    learner = OfflineLearner(suite.freebase, suite.conceptualizer, LearnerConfig())
    encoded, _templates, _paths = learner.encode_corpus(suite.corpus).encoded
    config = EMConfig(max_iterations=25, tolerance=0.0)
    em_after_s, em_fast = _best_of(lambda: run_em(encoded, config), repeats)
    em_before_s, em_slow = _best_of(lambda: run_em_reference(encoded, config), repeats)
    em = {
        "observations": len(encoded),
        "candidates": encoded.n_candidates,
        "iterations": em_fast.iterations,
        "before_s": round(em_before_s, 4),
        "after_s": round(em_after_s, 4),
        "speedup": round(em_before_s / max(em_after_s, 1e-9), 2),
        "before_iter_ms": round(em_before_s * 1000 / max(em_slow.iterations, 1), 3),
        "after_iter_ms": round(em_after_s * 1000 / max(em_fast.iterations, 1), 3),
    }

    # -- offline train + online serving --------------------------------------
    train_start = time.perf_counter()
    system = KBQA.train(suite.freebase, suite.corpus, suite.conceptualizer)
    offline_train_s = time.perf_counter() - train_start

    questions = [q.question for q in suite.benchmark("qald3").bfqs()]
    legacy = OnlineAnswerer(
        system.learn_result.kbview,
        system.learn_result.ner,
        system.conceptualizer,
        system.model,
        max_concepts=system.config.max_concepts_online,
        answer_cache_size=0,
        lookup_cache_size=0,
        precompute=False,
    )
    before_ms = _latencies_ms(legacy.answer, questions)
    system.answerer.clear_caches()
    cold_ms = _latencies_ms(system.answer, questions)
    warm_ms = _latencies_ms(system.answer, questions)
    assert system.answer_many(questions) == [system.answer(q) for q in questions]
    online = {
        "questions": len(questions),
        "before_mean_ms": round(statistics.fmean(before_ms), 3),
        "before_p50_ms": round(statistics.median(before_ms), 3),
        "after_mean_ms": round(statistics.fmean(cold_ms), 3),
        "after_p50_ms": round(statistics.median(cold_ms), 3),
        "warm_mean_ms": round(statistics.fmean(warm_ms), 3),
        "warm_p50_ms": round(statistics.median(warm_ms), 3),
        "speedup_cold": round(
            statistics.fmean(before_ms) / max(statistics.fmean(cold_ms), 1e-9), 2
        ),
        "speedup_warm": round(
            statistics.fmean(before_ms) / max(statistics.fmean(warm_ms), 1e-9), 2
        ),
    }

    shard_sweep = _shard_sweep(suite, system, seeds, questions, shard_counts, repeats)

    # -- cold start: time-to-first-answer per persistence format -------------
    cold_start = _cold_start(suite, system, expanded, questions, repeats)

    # -- execution backends: serial vs thread vs process ---------------------
    proc_sweep = _proc_sweep(
        suite, system, seeds, questions, proc_workers or [1, 2, 4], repeats
    )

    # -- serving QPS: coalescing A/B under concurrency x duplicate rate ------
    from benchmarks.bench_qps import (
        measure_adaptive,
        measure_batch_window,
        measure_http_qps,
        measure_open_loop,
        measure_qps,
    )

    qps = measure_qps(
        system,
        questions,
        concurrency_levels=qps_concurrency,
        duplicate_rates=qps_dup_rates,
        requests=qps_requests,
        seed=seed,
    )
    qps["open_loop"] = measure_open_loop(
        system, questions, requests=min(qps_requests, 256), seed=seed
    )
    qps["batch_window"] = measure_batch_window(
        system,
        questions,
        windows_ms=windows_ms,
        requests=min(qps_requests, 192),
        seed=seed,
    )
    qps["http_e2e"] = measure_http_qps(system, questions)
    qps["adaptive"] = measure_adaptive(system, questions, seed=seed)

    return {
        "benchmark": "BENCH_perf",
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": _available_cpus(),
        "kb_triples": len(store),
        "offline_train_s": round(offline_train_s, 3),
        "expansion": expansion,
        "em": em,
        "online": online,
        "shard_sweep": shard_sweep,
        "cold_start": cold_start,
        "proc_sweep": proc_sweep,
        "qps": qps,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; writes the JSON artifact and prints a summary."""
    parser = argparse.ArgumentParser(description="KBQA perf harness")
    parser.add_argument("--scale", default="default", choices=["small", "default"])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4],
        help="shard counts for the scaling sweep (default: 1 2 4)",
    )
    parser.add_argument(
        "--qps-requests", type=int, default=512,
        help="requests per QPS sweep cell (default: 512)",
    )
    parser.add_argument(
        "--qps-concurrency", type=int, nargs="+", default=None,
        help="closed-loop client counts for the QPS sweep (default: 4 16 64)",
    )
    parser.add_argument(
        "--qps-dup-rates", type=float, nargs="+", default=None,
        help="duplicate rates for the QPS sweep (default: 0.0 0.5 0.9)",
    )
    parser.add_argument(
        "--proc-workers", type=int, nargs="+", default=[1, 2, 4],
        help="process-pool worker counts for the exec-backend sweep",
    )
    parser.add_argument(
        "--windows-ms", type=float, nargs="+", default=None,
        help="batch_window_ms values for the linger x rate sweep "
             "(default: 0 2 5)",
    )
    parser.add_argument("--output", default="BENCH_perf.json")
    args = parser.parse_args(argv)

    payload = measure(
        args.scale,
        args.seed,
        args.repeats,
        args.shards,
        qps_requests=args.qps_requests,
        qps_concurrency=args.qps_concurrency,
        qps_dup_rates=args.qps_dup_rates,
        proc_workers=args.proc_workers,
        windows_ms=args.windows_ms,
    )
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    print(
        f"expansion: {payload['expansion']['before_s']}s -> "
        f"{payload['expansion']['after_s']}s "
        f"({payload['expansion']['speedup']}x, "
        f"{payload['expansion']['triples_per_sec']:,} spo/s)"
    )
    print(
        f"em:        {payload['em']['before_s']}s -> {payload['em']['after_s']}s "
        f"({payload['em']['speedup']}x)"
    )
    print(
        f"online:    {payload['online']['before_mean_ms']}ms -> "
        f"{payload['online']['after_mean_ms']}ms cold / "
        f"{payload['online']['warm_mean_ms']}ms warm per question "
        f"({payload['online']['speedup_cold']}x cold, "
        f"{payload['online']['speedup_warm']}x warm)"
    )
    print(f"train:     {payload['offline_train_s']}s offline")
    for key, row in payload["shard_sweep"].items():
        print(
            f"shards={key}:  expand {row['expand_s']}s, "
            f"answer_many {row['answer_many_cold_ms']}ms cold / "
            f"{row['answer_many_warm_ms']}ms warm"
        )
    cold = payload["cold_start"]
    for fmt in ("v1", "v2", "v3", "disk"):
        print(
            f"cold_start {fmt}: {cold[fmt]['first_answer_ms']}ms to first answer "
            f"({cold[fmt]['artifact_bytes']:,} bytes)"
        )
    proc = payload["proc_sweep"]
    print(
        f"exec (cpus={proc['cpus']}): serial {proc['serial_s']}s, "
        f"thread x{proc['thread']['workers']} {proc['thread']['expand_s']}s"
    )
    for key, cell in proc["process"].items():
        print(
            f"  process x{key}: {cell['expand_s']}s per-call / "
            f"{cell['persistent_expand_s']}s persistent pool "
            f"({cell['speedup_vs_serial']}x vs serial, "
            f"{cell['speedup_persistent_vs_per_call']}x persistent vs per-call)"
        )
    print(
        f"  serve process/thread qps: "
        f"{proc['serve_exec']['process_vs_thread_qps']}x"
    )
    for cell in payload["qps"]["sweep"]:
        print(
            f"qps c={cell['concurrency']:<3} dup={cell['duplicate_rate']}: "
            f"{cell['qps_coalesce_on']} on / {cell['qps_coalesce_off']} off "
            f"({cell['coalesce_speedup']}x)"
        )
    print(
        f"coalescing advantage at high dup: "
        f"{payload['qps']['coalescing_advantage_at_high_dup']}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
