"""Table 18 — examples of learned expanded predicates.

Paper lists meaningful expanded predicates *learned by KBQA* with their
semantics (``marriage->person->name`` = spouse, ``group_member->member->
name`` = group's member, ...).  We rank the model's multi-edge predicate
paths by the total support of the templates mapping to them and map each
back to its schema semantics.
"""

from collections import defaultdict

from repro.data.world import SCHEMA_BY_INTENT
from repro.kb.paths import PredicatePath
from repro.utils.tables import Table

from benchmarks.conftest import emit

PAPER_ROWS = [
    ["marriage->person->name", "spouse"],
    ["organization_members->member->alias", "organization's member"],
    ["nutrition_fact->nutrient->alias", "nutritional value"],
    ["group_member->member->name", "group's member"],
    ["songs->musical_game_song->name", "songs of a game"],
]


def _learned_expanded_paths(model):
    """Multi-edge paths weighted by the support of templates they explain."""
    support = defaultdict(float)
    for template in model.templates():
        best = model.best_path(template)
        if best is None or best[0].is_direct:
            continue
        support[str(best[0])] += model.support(template)
    return sorted(support.items(), key=lambda kv: (-kv[1], kv[0]))


def test_table18_expanded_predicate_examples(benchmark, bench_suite, fb_system):
    ranked = _learned_expanded_paths(fb_system.model)
    top = ranked[:8]
    kb = bench_suite.freebase

    table = Table(
        ["paper expanded predicate", "paper semantic", "learned path", "semantic", "support"],
        title="Table 18: examples of learned expanded predicates",
    )
    for i in range(max(len(PAPER_ROWS), len(top))):
        paper_path, paper_sem = PAPER_ROWS[i] if i < len(PAPER_ROWS) else ("", "")
        if i < len(top):
            path_str, support = top[i]
            intent = kb.intent_of(PredicatePath.parse(path_str))
            semantic = SCHEMA_BY_INTENT[intent].label if intent else "(discovered, unlabelled)"
            table.add_row([paper_path, paper_sem, path_str, semantic, round(support)])
        else:
            table.add_row([paper_path, paper_sem, "", "", ""])
    emit(table, "table18_expanded_predicates.txt")

    top_paths = {path for path, _s in ranked}
    assert "marriage->person->name" in top_paths, "spouse CVT path must be learned"
    assert "group_member->member->name" in top_paths, "band-member CVT path must be learned"
    # the strongest learned expanded predicates are schema-meaningful
    labelled = sum(
        1 for path, _s in top[:5] if kb.intent_of(PredicatePath.parse(path))
    )
    assert labelled >= 4

    benchmark(_learned_expanded_paths, fb_system.model)
