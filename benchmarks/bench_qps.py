"""QPS load benchmark: serving throughput under concurrency x duplicate rate.

Measures the serving layer the ROADMAP asks for: a closed-loop load
generator (``repro.serve.loadgen``) drives :class:`AsyncAnswerer` over the
qald3 BFQ question pool, sweeping

* **concurrency** — outstanding closed-loop clients,
* **duplicate_rate** — fraction of requests drawn from an 8-question hot
  set (head-heavy traffic), and
* **coalescing on/off** — the A/B that isolates what in-flight coalescing
  buys.

Beyond the closed-loop sweep, :func:`measure_open_loop` drives fixed-rate
Poisson arrivals (open loop: arrivals never wait for responses) and records
p50/p99 response latency per offered rate, and :func:`measure_http_qps`
measures the full socket path — request bytes into a live ``KBQAServer``,
response bytes out — as an end-to-end QPS + latency cell.
:func:`measure_adaptive` is the control-plane proof cell: a 10x open-loop
ramp over a simulated fixed-cost backend, run twice (static knobs vs the
SLO feedback controller), reporting per-step p99 and the spread ratio,
plus a per-tenant fairness sub-cell under ``--quota``-style token buckets.

Every cell uses a *fresh* ``OnlineAnswerer`` with the answer cache disabled,
so duplicate work is real and the measured difference is the serving
layer's coalescing + micro-batching, not the target's own memoization (the
lookup LRUs stay on: entity/concept reuse is part of serving, coalescing
dedups whole evaluations).  The on/off runs of a cell replay the *same*
seeded request stream.

The ``qps`` payload lands in ``BENCH_perf.json`` via the perf harness
(``scripts/bench.sh``); standalone::

    PYTHONPATH=src python -m benchmarks.bench_qps --scale default \
        --merge BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from pathlib import Path

from repro.core.online import OnlineAnswerer
from repro.core.system import KBQA
from repro.exec.backend import resolve_workers
from repro.serve.async_answerer import normalized_key
from repro.serve.loadgen import (
    LoadSpec,
    OpenLoadSpec,
    RampSpec,
    latency_percentiles,
    run_load_cell,
    run_open_load_cell,
    run_ramp_cell,
)
from repro.suite import build_suite

DEFAULT_CONCURRENCY = [4, 16, 64]
DEFAULT_DUP_RATES = [0.0, 0.5, 0.9]
DEFAULT_OPEN_RATES = [100.0, 400.0, 1600.0]
DEFAULT_WINDOWS_MS = [0.0, 2.0, 5.0]
DEFAULT_RAMP_RATES = [8.0, 16.0, 32.0, 56.0, 80.0]
HIGH_DUP = 0.9


def _fresh_target(system: KBQA) -> OnlineAnswerer:
    """A serving target with the answer cache off (duplicate work is real)."""
    return OnlineAnswerer(
        system.learn_result.kbview,
        system.learn_result.ner,
        system.conceptualizer,
        system.model,
        max_concepts=system.config.max_concepts_online,
        answer_cache_size=0,
    )


def measure_qps(
    system: KBQA,
    questions: list[str],
    *,
    concurrency_levels: list[int] | None = None,
    duplicate_rates: list[float] | None = None,
    requests: int = 512,
    max_batch: int = 16,
    workers: int = 2,
    seed: int = 7,
) -> dict:
    """The ``qps`` section: one sweep cell per (concurrency, dup-rate),
    each with a coalescing-on and a coalescing-off run over the same
    request stream."""
    concurrency_levels = concurrency_levels or DEFAULT_CONCURRENCY
    duplicate_rates = duplicate_rates or DEFAULT_DUP_RATES

    sweep: list[dict] = []
    for concurrency in concurrency_levels:
        for dup_rate in duplicate_rates:
            spec = LoadSpec(
                requests=requests,
                concurrency=concurrency,
                duplicate_rate=dup_rate,
                seed=seed,
            )
            cells = {}
            for coalesce in (True, False):
                cells[coalesce] = run_load_cell(
                    _fresh_target(system),
                    questions,
                    spec,
                    coalesce=coalesce,
                    max_batch=max_batch,
                    workers=workers,
                )
            on, off = cells[True], cells[False]
            sweep.append(
                {
                    "concurrency": concurrency,
                    "duplicate_rate": dup_rate,
                    "qps_coalesce_on": on["qps"],
                    "qps_coalesce_off": off["qps"],
                    "coalesce_speedup": round(on["qps"] / max(off["qps"], 1e-9), 2),
                    "evaluated_on": on["evaluated"],
                    "evaluated_off": off["evaluated"],
                    "coalesced_on": on["coalesced"],
                    "rejected_on": on["rejected"],
                    "rejected_off": off["rejected"],
                }
            )

    # Coalescing dedups across the whole in-flight window; with
    # concurrency <= max_batch one dispatched batch *is* the window and
    # answer_many's own in-batch dedup already covers it, so the headline
    # number is taken where the window spans multiple batches.
    high_dup = [
        c
        for c in sweep
        if c["duplicate_rate"] >= HIGH_DUP and c["concurrency"] > max_batch
    ]
    advantage = (
        round(
            sum(c["coalesce_speedup"] for c in high_dup) / len(high_dup), 2
        )
        if high_dup
        else None
    )
    return {
        "requests_per_cell": requests,
        "question_pool": len(questions),
        "hot_set": LoadSpec().hot_set,
        "max_batch": max_batch,
        "workers": workers,
        "seed": seed,
        "note": (
            "closed-loop load; target answer cache disabled so coalescing "
            "dedups real evaluations; on/off runs replay the same stream; "
            "advantage is averaged over cells with duplicate_rate >= "
            f"{HIGH_DUP} and concurrency > max_batch (where the in-flight "
            "window spans multiple micro-batches)"
        ),
        "sweep": sweep,
        "coalescing_advantage_at_high_dup": advantage,
    }


def measure_open_loop(
    system: KBQA,
    questions: list[str],
    *,
    rates: list[float] | None = None,
    requests: int = 256,
    duplicate_rate: float = 0.5,
    max_batch: int = 16,
    workers: int | None = None,
    seed: int = 7,
) -> dict:
    """The ``open_loop`` section: fixed-rate Poisson arrivals, p50/p99 per
    offered rate (the ROADMAP's serving-latency-trajectory item).

    Unlike closed-loop QPS, the offered rate does not adapt to the server;
    a rate past capacity shows up honestly as p99 growth and rejections.
    """
    rates = rates or DEFAULT_OPEN_RATES
    workers = resolve_workers(workers, fallback=2)
    cells = []
    for rate in rates:
        spec = OpenLoadSpec(
            rate_qps=rate,
            requests=requests,
            duplicate_rate=duplicate_rate,
            seed=seed,
        )
        cells.append(
            run_open_load_cell(
                _fresh_target(system),
                questions,
                spec,
                max_batch=max_batch,
                workers=workers,
            )
        )
    return {
        "requests_per_cell": requests,
        "duplicate_rate": duplicate_rate,
        "workers": workers,
        "seed": seed,
        "note": (
            "fixed-rate Poisson arrivals (seeded exponential gaps), open "
            "loop: arrivals never wait for responses; latency percentiles "
            "are over completed requests, rejections counted separately"
        ),
        "cells": cells,
    }


def measure_batch_window(
    system: KBQA,
    questions: list[str],
    *,
    windows_ms: list[float] | None = None,
    rates: list[float] | None = None,
    requests: int = 192,
    duplicate_rate: float = 0.5,
    max_batch: int = 16,
    workers: int | None = None,
    seed: int = 7,
) -> dict:
    """The ``batch_window`` section: ``batch_window_ms`` x offered rate.

    The linger knob trades first-request latency for fuller batches: an
    under-filled micro-batch waits ``batch_window_ms`` for more arrivals
    before dispatching.  Each cell replays the same seeded Poisson stream
    at one offered rate under one window and records the latency
    percentiles *and* the realized batching (dispatch count, mean batch
    size), so the trade is visible on both axes — at low rates a window
    only adds latency; near saturation it amortizes dispatch overhead into
    larger batches.  Closes the ROADMAP "batch_window_ms sweep" item.
    """
    windows_ms = windows_ms if windows_ms is not None else DEFAULT_WINDOWS_MS
    rates = rates or DEFAULT_OPEN_RATES
    workers = resolve_workers(workers, fallback=2)
    cells = []
    for window_ms in windows_ms:
        for rate in rates:
            spec = OpenLoadSpec(
                rate_qps=rate,
                requests=requests,
                duplicate_rate=duplicate_rate,
                seed=seed,
            )
            cell = run_open_load_cell(
                _fresh_target(system),
                questions,
                spec,
                max_batch=max_batch,
                workers=workers,
                batch_window_ms=window_ms,
            )
            batches = max(cell.get("batches", 0), 1)
            cells.append(
                {
                    "batch_window_ms": window_ms,
                    "offered_qps": cell["offered_qps"],
                    "completed": cell["completed"],
                    "rejected": cell["rejected"],
                    "completion_qps": cell["completion_qps"],
                    "p50_ms": cell["p50_ms"],
                    "p95_ms": cell["p95_ms"],
                    "p99_ms": cell["p99_ms"],
                    "batches": cell.get("batches", 0),
                    "mean_batch": round(cell.get("evaluated", 0) / batches, 2),
                    "max_batch_seen": cell.get("max_batch_seen", 0),
                }
            )
    return {
        "requests_per_cell": requests,
        "duplicate_rate": duplicate_rate,
        "max_batch": max_batch,
        "workers": workers,
        "seed": seed,
        "note": (
            "open-loop Poisson arrivals per cell; same seeded stream across "
            "windows at a given rate, so latency deltas are the linger's — "
            "mean_batch shows what the window buys in batching"
        ),
        "cells": cells,
    }


def print_batch_window(payload: dict) -> None:
    """Human-readable window x rate table."""
    print(
        f"batch_window sweep ({payload['requests_per_cell']} req/cell, "
        f"dup {payload['duplicate_rate']}, workers {payload['workers']})"
    )
    print(
        f"{'win_ms':>7} {'offered':>8} {'p50ms':>8} {'p99ms':>8} "
        f"{'batches':>8} {'mean_b':>7}"
    )
    for cell in payload["cells"]:
        print(
            f"{cell['batch_window_ms']:>7} {cell['offered_qps']:>8} "
            f"{cell['p50_ms']:>8} {cell['p99_ms']:>8} "
            f"{cell['batches']:>8} {cell['mean_batch']:>7}"
        )


def measure_http_qps(
    system: KBQA,
    questions: list[str],
    *,
    clients: int | None = None,
    requests_per_client: int = 24,
    max_batch: int = 16,
    workers: int | None = None,
) -> dict:
    """The end-to-end socket cell: closed-loop HTTP clients against a real
    ``KBQAServer`` socket (request bytes in, response bytes out), measuring
    what the in-process cells cannot — HTTP parse, JSON encode, asyncio
    stream write — as delivered QPS and per-request latency percentiles.
    """
    import urllib.request

    from repro.serve import BackgroundServer, ServeConfig

    clients = resolve_workers(clients, fallback=8)
    config = ServeConfig(
        max_batch=max_batch,
        workers=resolve_workers(workers, fallback=2),
        max_pending=max(clients * 4, 256),
    )
    latencies_ms: list[float] = []
    failures: list[str] = []
    lock = threading.Lock()

    with BackgroundServer(system, config) as bg:
        url = bg.url + "/answer"

        def client(worker: int) -> None:
            for i in range(requests_per_client):
                question = questions[(worker + i) % len(questions)]
                body = json.dumps({"question": question}).encode("utf-8")
                request = urllib.request.Request(
                    url, data=body, headers={"Content-Type": "application/json"}
                )
                start = time.perf_counter()
                try:
                    with urllib.request.urlopen(request, timeout=30) as resp:
                        resp.read()
                        status = resp.status
                except Exception as error:  # noqa: BLE001 - report, don't crash
                    with lock:
                        failures.append(repr(error))
                    continue
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                with lock:
                    latencies_ms.append(elapsed_ms)
                    if status != 200:
                        failures.append(f"status {status}")

        threads = [
            threading.Thread(target=client, args=(n,), name=f"http-bench-{n}")
            for n in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - start

    completed = len(latencies_ms)
    return {
        "clients": clients,
        "requests": clients * requests_per_client,
        "completed": completed,
        "failures": len(failures),
        "wall_s": round(wall_s, 4),
        "qps": round(completed / wall_s, 1) if wall_s > 0 else None,
        "mean_ms": round(statistics.fmean(latencies_ms), 3) if latencies_ms else None,
        **latency_percentiles(latencies_ms),
        "note": (
            "closed-loop urllib clients against a live KBQAServer socket: "
            "end-to-end bytes-in/bytes-out including HTTP parse + JSON"
        ),
    }


class _SimulatedKB:
    """The ramp target: the real answerer plus a fixed per-item service
    cost, emulating corpus-scale per-candidate KB work (the 30M-factoid
    regime the ROADMAP's serving north star names).

    The bench KB answers in tens of microseconds, so no generatable
    offered rate saturates it and a rate ramp exercises nothing.  The
    sleep — per *item*, so batching cannot amortize it away — gives the
    cell a well-defined capacity (``workers / service_s``) independent of
    the runner's CPU, which is what makes the 1x -> 10x ramp a real swing
    from under-load to overload.  Answers are delegated unchanged, so the
    correctness guard still checks the real pipeline.
    """

    def __init__(self, target: OnlineAnswerer, service_ms_per_item: float):
        self._target = target
        self._service_s = service_ms_per_item / 1000.0

    def answer_many(self, questions):
        time.sleep(self._service_s * len(questions))
        return self._target.answer_many(questions)


def _expected_answers(system: KBQA, questions: list[str]) -> dict:
    """Reference answers from a fresh target, keyed by ``normalized_key``.

    The ramp cells count completions that disagree with these as
    ``incorrect`` — the guard that an adaptive run cannot win the latency
    race by corrupting answers."""
    reference = _fresh_target(system)
    results = reference.answer_many(questions)
    return {
        normalized_key(question): tuple(result.values)
        for question, result in zip(questions, results)
    }


def _p99_spread(cell: dict, skip_steps: int = 0) -> float | None:
    """max/min of per-step p99 across the ramp (1.0 == perfectly flat),
    optionally skipping leading warm-up steps."""
    p99s = [
        step["p99_ms"]
        for step in cell["steps"][skip_steps:]
        if step.get("p99_ms") and step["completed"] > 0
    ]
    if not p99s:
        return None
    return round(max(p99s) / max(min(p99s), 1e-9), 2)


def measure_adaptive(
    system: KBQA,
    questions: list[str],
    *,
    rates: list[float] | None = None,
    step_duration_s: float = 2.0,
    warmup_steps: int = 2,
    slo_ms: float = 50.0,
    static_window_ms: float = 8.0,
    service_ms_per_item: float = 25.0,
    max_batch: int = 16,
    workers: int = 1,
    seed: int = 7,
) -> dict:
    """The ``qps.adaptive`` section: SLO controller vs static knobs on an
    open-loop rate ramp, plus a per-tenant fairness sub-cell.

    Both arms replay the *same* seeded Poisson ramp (1x -> 10x, constant
    wall-clock per step) against a :class:`_SimulatedKB` with capacity
    ``workers / service_ms_per_item`` (~40 qps at the defaults), from
    the same starting knobs — a mis-tuned ``batch_window_ms`` linger and a
    deep static admission queue.  The static arm holds them for the whole
    ramp: linger-bound p99 under light load, then queue growth once the
    ramp crosses capacity — a large p99 spread across steps.  The
    adaptive arm gets a p99 SLO: the controller shrinks the linger on
    breach, widens it back under headroom, and re-derives the admission
    depth from the measured service rate, so excess load is shed at the
    door instead of aging in a deep queue and the p99 of served requests
    stays in the SLO band across the whole swing.  The ramp's leading
    ``warmup_steps`` repeats of the base rate give the controller its
    convergence transient; they are reported but excluded from the spread
    for both arms alike.  Every completion is checked against reference
    answers, so a controller that traded correctness for latency would
    show up as ``incorrect`` > 0.

    The fairness sub-cell tags arrivals 90/10 across two tenants under a
    token-bucket quota sized between the two offered rates: the hog must
    see quota rejections while the small tenant rides through untouched.
    """
    rates = rates or DEFAULT_RAMP_RATES
    workers = max(workers, 1)
    expected = _expected_answers(system, questions)
    ramp = [float(rates[0])] * warmup_steps + [float(r) for r in rates]
    spec = RampSpec(
        rates_qps=tuple(ramp),
        step_duration_s=step_duration_s,
        duplicate_rate=0.0,
        seed=seed,
    )
    arms = {}
    for adaptive in (False, True):
        arms[adaptive] = run_ramp_cell(
            _SimulatedKB(_fresh_target(system), service_ms_per_item),
            questions,
            spec,
            adaptive=adaptive,
            slo_ms=slo_ms if adaptive else 0.0,
            max_batch=max_batch,
            workers=workers,
            batch_window_ms=static_window_ms,
            expected=expected,
        )
    static, adaptive = arms[False], arms[True]
    static_spread = _p99_spread(static, skip_steps=warmup_steps)
    adaptive_spread = _p99_spread(adaptive, skip_steps=warmup_steps)

    # fairness: one sustained step at the ramp's peak (past capacity, so
    # the work-conserving bypass cannot absorb the hog), 90/10 tenant mix,
    # quota sized between the two offered rates so only the hog exhausts
    # its bucket while the small tenant never touches its limit
    peak_rate = max(rates)
    fairness_spec = RampSpec(
        rates_qps=(peak_rate,),
        step_duration_s=max(step_duration_s, 3.0),
        duplicate_rate=0.0,
        seed=seed,
        tenants=(("hog", 0.9), ("payg", 0.1)),
    )
    quota_rate = round(peak_rate * 0.2, 1)
    # a fixed moderate box isolates quota + weighted drain semantics from
    # the controller: the hog's uncharged backlog is capped at its share of
    # the box while the small tenant always finds admission headroom
    fairness_cell = run_ramp_cell(
        _SimulatedKB(_fresh_target(system), service_ms_per_item),
        questions,
        fairness_spec,
        quota=f"{quota_rate}:{quota_rate / 2}",
        max_batch=max_batch,
        workers=workers,
        max_pending=32,
        batch_window_ms=static_window_ms,
        expected=expected,
    )
    hog = fairness_cell["tenants"].get("hog", {})
    payg = fairness_cell["tenants"].get("payg", {})
    payg_served = (
        round(payg["completed"] / payg["requests"], 4)
        if payg.get("requests")
        else None
    )
    return {
        "slo_ms": slo_ms,
        "static_window_ms": static_window_ms,
        "rates_qps": [round(r, 1) for r in rates],
        "step_duration_s": step_duration_s,
        "warmup_steps": warmup_steps,
        "service_ms_per_item": service_ms_per_item,
        "capacity_qps": round(workers * 1000.0 / service_ms_per_item, 1),
        "max_batch": max_batch,
        "workers": workers,
        "seed": seed,
        "static": static,
        "adaptive": adaptive,
        "static_p99_spread": static_spread,
        "adaptive_p99_spread": adaptive_spread,
        "flatness_gain": (
            round(static_spread / adaptive_spread, 2)
            if static_spread and adaptive_spread
            else None
        ),
        "incorrect_static": static["incorrect"],
        "incorrect_adaptive": adaptive["incorrect"],
        "controller_adjustments": (adaptive.get("controller") or {}).get(
            "adjustments"
        ),
        "fairness": {
            "offered_qps": round(peak_rate, 1),
            "quota": fairness_cell["quota"],
            "tenants": fairness_cell["tenants"],
            "hog_quota_rejected": hog.get("quota", 0),
            "payg_served_fraction": payg_served,
            "incorrect": fairness_cell["incorrect"],
        },
        "note": (
            "open-loop Poisson ramp against the real answerer plus a "
            "fixed per-item service cost (simulated corpus-scale KB, "
            "capacity = workers/service); both arms replay the same "
            "seeded streams from the same mis-tuned starting knobs; "
            "spread is max/min of per-step p99 excluding the warm-up "
            "steps (1.0 == flat); completions are checked against "
            "reference answers (incorrect must be 0); fairness runs a "
            "90/10 tenant mix under a token-bucket quota sized so only "
            "the hog exhausts its bucket"
        ),
    }


def print_adaptive(payload: dict) -> None:
    """Human-readable adaptive-vs-static ramp tables."""
    print(
        f"adaptive ramp (slo {payload['slo_ms']}ms, start window "
        f"{payload['static_window_ms']}ms, capacity "
        f"{payload['capacity_qps']} qps, {payload['step_duration_s']}s/step, "
        f"workers {payload['workers']})"
    )
    print(
        f"{'offered':>8} {'mode':>9} {'done':>6} {'rej':>5} {'p50ms':>8} "
        f"{'p99ms':>8} {'win_ms':>7} {'maxpend':>8}"
    )
    warm = payload["warmup_steps"]
    for mode in ("static", "adaptive"):
        for index, step in enumerate(payload[mode]["steps"]):
            tag = " (warm)" if index < warm else ""
            print(
                f"{step['offered_qps']:>8} {mode:>9} {step['completed']:>6} "
                f"{step['rejected']:>5} {step['p50_ms']:>8} "
                f"{step['p99_ms']:>8} {step['batch_window_ms']:>7} "
                f"{step['max_pending']:>8}{tag}"
            )
    print(
        f"p99 spread: static {payload['static_p99_spread']}x vs adaptive "
        f"{payload['adaptive_p99_spread']}x (flatness gain "
        f"{payload['flatness_gain']}x); incorrect "
        f"{payload['incorrect_static']}/{payload['incorrect_adaptive']}"
    )
    fairness = payload["fairness"]
    print(
        f"fairness @ {fairness['offered_qps']} qps, quota "
        f"{fairness['quota']}: hog 429s {fairness['hog_quota_rejected']}, "
        f"payg served {fairness['payg_served_fraction']}"
    )


def print_qps(payload: dict) -> None:
    """Human-readable sweep table."""
    print(
        f"qps sweep ({payload['requests_per_cell']} req/cell, "
        f"pool {payload['question_pool']}, hot set {payload['hot_set']}, "
        f"max_batch {payload['max_batch']}, workers {payload['workers']})"
    )
    header = f"{'conc':>5} {'dup':>5} {'qps on':>10} {'qps off':>10} {'x':>6} {'evald on/off':>14}"
    print(header)
    for cell in payload["sweep"]:
        print(
            f"{cell['concurrency']:>5} {cell['duplicate_rate']:>5} "
            f"{cell['qps_coalesce_on']:>10} {cell['qps_coalesce_off']:>10} "
            f"{cell['coalesce_speedup']:>6} "
            f"{str(cell['evaluated_on']) + '/' + str(cell['evaluated_off']):>14}"
        )
    print(
        f"coalescing advantage at dup>={HIGH_DUP}, conc>max_batch: "
        f"{payload['coalescing_advantage_at_high_dup']}x"
    )


def print_open_loop(payload: dict) -> None:
    """Human-readable open-loop latency table."""
    print(
        f"open-loop (Poisson, {payload['requests_per_cell']} req/cell, "
        f"dup {payload['duplicate_rate']}, workers {payload['workers']})"
    )
    print(f"{'offered':>8} {'done':>6} {'rej':>5} {'p50ms':>8} {'p99ms':>8}")
    for cell in payload["cells"]:
        print(
            f"{cell['offered_qps']:>8} {cell['completed']:>6} "
            f"{cell['rejected']:>5} {cell['p50_ms']:>8} {cell['p99_ms']:>8}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="KBQA serving QPS benchmark")
    parser.add_argument("--scale", default="default", choices=["small", "default"])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--requests", type=int, default=512)
    parser.add_argument(
        "--concurrency", type=int, nargs="+", default=DEFAULT_CONCURRENCY
    )
    parser.add_argument(
        "--dup-rates", type=float, nargs="+", default=DEFAULT_DUP_RATES
    )
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="evaluation workers (default: $KBQA_WORKERS, else 2; clamped >= 1)",
    )
    parser.add_argument(
        "--open-rates", type=float, nargs="+", default=DEFAULT_OPEN_RATES,
        help="offered Poisson rates for the open-loop latency cells",
    )
    parser.add_argument(
        "--open-requests", type=int, default=256,
        help="arrivals per open-loop cell",
    )
    parser.add_argument(
        "--windows-ms", type=float, nargs="+", default=DEFAULT_WINDOWS_MS,
        help="batch_window_ms values for the linger x rate sweep",
    )
    parser.add_argument(
        "--ramp-rates", type=float, nargs="+", default=DEFAULT_RAMP_RATES,
        help="offered rates for the adaptive-vs-static ramp",
    )
    parser.add_argument(
        "--slo-ms", type=float, default=50.0,
        help="p99 SLO handed to the adaptive arm of the ramp",
    )
    parser.add_argument(
        "--http-clients", type=int, default=None,
        help="closed-loop HTTP clients for the socket cell "
             "(default: $KBQA_WORKERS, else 8; clamped >= 1)",
    )
    parser.add_argument(
        "--merge", metavar="PATH", default=None,
        help="merge the qps section into an existing BENCH_perf.json",
    )
    args = parser.parse_args(argv)

    suite = build_suite(args.scale, seed=args.seed)
    system = KBQA.train(suite.freebase, suite.corpus, suite.conceptualizer)
    questions = [q.question for q in suite.benchmark("qald3").bfqs()]
    workers = resolve_workers(args.workers, fallback=2)
    payload = measure_qps(
        system,
        questions,
        concurrency_levels=args.concurrency,
        duplicate_rates=args.dup_rates,
        requests=args.requests,
        max_batch=args.max_batch,
        workers=workers,
        seed=args.seed,
    )
    payload["open_loop"] = measure_open_loop(
        system,
        questions,
        rates=args.open_rates,
        requests=args.open_requests,
        max_batch=args.max_batch,
        workers=workers,
        seed=args.seed,
    )
    payload["batch_window"] = measure_batch_window(
        system,
        questions,
        windows_ms=args.windows_ms,
        rates=args.open_rates,
        max_batch=args.max_batch,
        workers=workers,
        seed=args.seed,
    )
    payload["http_e2e"] = measure_http_qps(
        system,
        questions,
        clients=args.http_clients,
        max_batch=args.max_batch,
        workers=workers,
    )
    payload["adaptive"] = measure_adaptive(
        system,
        questions,
        rates=args.ramp_rates,
        slo_ms=args.slo_ms,
        max_batch=args.max_batch,
        seed=args.seed,
    )
    print_qps(payload)
    print_open_loop(payload["open_loop"])
    print_batch_window(payload["batch_window"])
    print_adaptive(payload["adaptive"])
    http = payload["http_e2e"]
    print(
        f"http e2e: {http['qps']} qps over {http['clients']} clients "
        f"(p50 {http['p50_ms']}ms, p99 {http['p99_ms']}ms, "
        f"{http['failures']} failures)"
    )
    if args.merge:
        path = Path(args.merge)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"bench_qps: cannot merge into {path}: {error}", file=sys.stderr)
            return 1
        doc["qps"] = payload
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        print(f"merged qps section into {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
