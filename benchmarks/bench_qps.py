"""QPS load benchmark: serving throughput under concurrency x duplicate rate.

Measures the serving layer the ROADMAP asks for: a closed-loop load
generator (``repro.serve.loadgen``) drives :class:`AsyncAnswerer` over the
qald3 BFQ question pool, sweeping

* **concurrency** — outstanding closed-loop clients,
* **duplicate_rate** — fraction of requests drawn from an 8-question hot
  set (head-heavy traffic), and
* **coalescing on/off** — the A/B that isolates what in-flight coalescing
  buys.

Every cell uses a *fresh* ``OnlineAnswerer`` with the answer cache disabled,
so duplicate work is real and the measured difference is the serving
layer's coalescing + micro-batching, not the target's own memoization (the
lookup LRUs stay on: entity/concept reuse is part of serving, coalescing
dedups whole evaluations).  The on/off runs of a cell replay the *same*
seeded request stream.

The ``qps`` payload lands in ``BENCH_perf.json`` via the perf harness
(``scripts/bench.sh``); standalone::

    PYTHONPATH=src python -m benchmarks.bench_qps --scale default \
        --merge BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.online import OnlineAnswerer
from repro.core.system import KBQA
from repro.serve.loadgen import LoadSpec, run_load_cell
from repro.suite import build_suite

DEFAULT_CONCURRENCY = [4, 16, 64]
DEFAULT_DUP_RATES = [0.0, 0.5, 0.9]
HIGH_DUP = 0.9


def _fresh_target(system: KBQA) -> OnlineAnswerer:
    """A serving target with the answer cache off (duplicate work is real)."""
    return OnlineAnswerer(
        system.learn_result.kbview,
        system.learn_result.ner,
        system.conceptualizer,
        system.model,
        max_concepts=system.config.max_concepts_online,
        answer_cache_size=0,
    )


def measure_qps(
    system: KBQA,
    questions: list[str],
    *,
    concurrency_levels: list[int] | None = None,
    duplicate_rates: list[float] | None = None,
    requests: int = 512,
    max_batch: int = 16,
    workers: int = 2,
    seed: int = 7,
) -> dict:
    """The ``qps`` section: one sweep cell per (concurrency, dup-rate),
    each with a coalescing-on and a coalescing-off run over the same
    request stream."""
    concurrency_levels = concurrency_levels or DEFAULT_CONCURRENCY
    duplicate_rates = duplicate_rates or DEFAULT_DUP_RATES

    sweep: list[dict] = []
    for concurrency in concurrency_levels:
        for dup_rate in duplicate_rates:
            spec = LoadSpec(
                requests=requests,
                concurrency=concurrency,
                duplicate_rate=dup_rate,
                seed=seed,
            )
            cells = {}
            for coalesce in (True, False):
                cells[coalesce] = run_load_cell(
                    _fresh_target(system),
                    questions,
                    spec,
                    coalesce=coalesce,
                    max_batch=max_batch,
                    workers=workers,
                )
            on, off = cells[True], cells[False]
            sweep.append(
                {
                    "concurrency": concurrency,
                    "duplicate_rate": dup_rate,
                    "qps_coalesce_on": on["qps"],
                    "qps_coalesce_off": off["qps"],
                    "coalesce_speedup": round(on["qps"] / max(off["qps"], 1e-9), 2),
                    "evaluated_on": on["evaluated"],
                    "evaluated_off": off["evaluated"],
                    "coalesced_on": on["coalesced"],
                    "rejected_on": on["rejected"],
                    "rejected_off": off["rejected"],
                }
            )

    # Coalescing dedups across the whole in-flight window; with
    # concurrency <= max_batch one dispatched batch *is* the window and
    # answer_many's own in-batch dedup already covers it, so the headline
    # number is taken where the window spans multiple batches.
    high_dup = [
        c
        for c in sweep
        if c["duplicate_rate"] >= HIGH_DUP and c["concurrency"] > max_batch
    ]
    advantage = (
        round(
            sum(c["coalesce_speedup"] for c in high_dup) / len(high_dup), 2
        )
        if high_dup
        else None
    )
    return {
        "requests_per_cell": requests,
        "question_pool": len(questions),
        "hot_set": LoadSpec().hot_set,
        "max_batch": max_batch,
        "workers": workers,
        "seed": seed,
        "note": (
            "closed-loop load; target answer cache disabled so coalescing "
            "dedups real evaluations; on/off runs replay the same stream; "
            "advantage is averaged over cells with duplicate_rate >= "
            f"{HIGH_DUP} and concurrency > max_batch (where the in-flight "
            "window spans multiple micro-batches)"
        ),
        "sweep": sweep,
        "coalescing_advantage_at_high_dup": advantage,
    }


def print_qps(payload: dict) -> None:
    """Human-readable sweep table."""
    print(
        f"qps sweep ({payload['requests_per_cell']} req/cell, "
        f"pool {payload['question_pool']}, hot set {payload['hot_set']}, "
        f"max_batch {payload['max_batch']}, workers {payload['workers']})"
    )
    header = f"{'conc':>5} {'dup':>5} {'qps on':>10} {'qps off':>10} {'x':>6} {'evald on/off':>14}"
    print(header)
    for cell in payload["sweep"]:
        print(
            f"{cell['concurrency']:>5} {cell['duplicate_rate']:>5} "
            f"{cell['qps_coalesce_on']:>10} {cell['qps_coalesce_off']:>10} "
            f"{cell['coalesce_speedup']:>6} "
            f"{str(cell['evaluated_on']) + '/' + str(cell['evaluated_off']):>14}"
        )
    print(
        f"coalescing advantage at dup>={HIGH_DUP}, conc>max_batch: "
        f"{payload['coalescing_advantage_at_high_dup']}x"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="KBQA serving QPS benchmark")
    parser.add_argument("--scale", default="default", choices=["small", "default"])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--requests", type=int, default=512)
    parser.add_argument(
        "--concurrency", type=int, nargs="+", default=DEFAULT_CONCURRENCY
    )
    parser.add_argument(
        "--dup-rates", type=float, nargs="+", default=DEFAULT_DUP_RATES
    )
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--merge", metavar="PATH", default=None,
        help="merge the qps section into an existing BENCH_perf.json",
    )
    args = parser.parse_args(argv)

    suite = build_suite(args.scale, seed=args.seed)
    system = KBQA.train(suite.freebase, suite.corpus, suite.conceptualizer)
    questions = [q.question for q in suite.benchmark("qald3").bfqs()]
    payload = measure_qps(
        system,
        questions,
        concurrency_levels=args.concurrency,
        duplicate_rates=args.dup_rates,
        requests=args.requests,
        max_batch=args.max_batch,
        workers=args.workers,
        seed=args.seed,
    )
    print_qps(payload)
    if args.merge:
        path = Path(args.merge)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"bench_qps: cannot merge into {path}: {error}", file=sys.stderr)
            return 1
        doc["qps"] = payload
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        print(f"merged qps section into {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
