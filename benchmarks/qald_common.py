"""Shared helpers for the QALD result tables (Tables 7, 8, 9, 11)."""

from __future__ import annotations

from repro.eval.metrics import QALDMetrics
from repro.eval.runner import evaluate_qald
from repro.utils.tables import Table


def qald_row(label: str, metrics: QALDMetrics) -> list:
    return [
        label, metrics.processed, metrics.right, metrics.partial,
        round(metrics.recall, 2), round(metrics.recall_bfq, 2),
        round(metrics.recall_star, 2), round(metrics.recall_star_bfq, 2),
        round(metrics.precision, 2), round(metrics.precision_star, 2),
    ]


QALD_COLUMNS = ["system", "#pro", "#ri", "#par", "R", "R_BFQ", "R*", "R*_BFQ", "P", "P*"]


def paper_row(label: str, pro, ri, par, r, r_bfq, r_star, r_star_bfq, p, p_star) -> list:
    """A row quoted verbatim from the paper (systems we do not re-run)."""
    return [label, pro, ri, par, r, r_bfq, r_star, r_star_bfq, p, p_star]


def run_and_row(label: str, system, benchmark, kb) -> tuple[list, QALDMetrics]:
    metrics, _records = evaluate_qald(system, benchmark, kb)
    return qald_row(label, metrics), metrics


def make_table(title: str) -> Table:
    return Table(QALD_COLUMNS, title=title)
