"""Sec 7.5 — precision of entity & value identification.

Paper: on 50 QA pairs whose answers are covered by the KB, joint
entity-value extraction identifies the entity correctly for 72% versus 30%
for independent Stanford-NER-style extraction — 'joint extraction of
entities is better than the independent extraction'.

Our version judges the full (entity, value) pair on generator-labelled QA
pairs: *independent* extraction takes the first NER mention's first
candidate and the first literal in the answer; *joint* extraction keeps
only KB-connected, type-compatible pairs (Eq 8 + refinement) and picks the
best-supported one.
"""

from repro.core.extraction import ExtractionConfig, ValueIndex, extract_observations
from repro.core.kbview import KBView
from repro.kb.expansion import expand_predicates
from repro.nlp.ner import EntityRecognizer
from repro.nlp.tokenizer import tokenize
from repro.utils.tables import Table

from benchmarks.conftest import emit

SAMPLE = 200


def test_sec75_entity_value_identification(benchmark, bench_suite):
    kb = bench_suite.freebase
    world = bench_suite.world
    ner = EntityRecognizer(kb.gazetteer)
    value_index = ValueIndex(kb.store)
    pairs = [p for p in bench_suite.corpus if p.meta.get("kind") == "factoid"][:SAMPLE]
    seeds = {
        e for p in pairs for e in ner.lookup(world.name_of(p.meta["entity"]))
    }
    kbview = KBView(kb.store, expand_predicates(kb.store, seeds, 3))

    joint_right = independent_right = 0
    for pair in pairs:
        gold_entity = pair.meta["entity"]
        gold_values = {v.lower() for v in pair.meta["values"]}

        # Independent extraction: first mention candidate + first value span.
        q_tokens = tokenize(pair.question)
        a_tokens = tokenize(pair.answer)
        mentions = ner.find_mentions(q_tokens)
        values = value_index.find_values(a_tokens)
        if mentions and values:
            entity = mentions[0].candidates[0]
            value = values[0][1:].lower()
            if entity == gold_entity and value in gold_values:
                independent_right += 1

        # Joint extraction (Eq 8 + refinement): best-weighted surviving pair.
        observations, _stats = extract_observations(
            [(pair.question, pair.answer)], kbview, ner, value_index,
            kb.answer_type_for_path, ExtractionConfig(),
        )
        if observations:
            best = max(observations, key=lambda o: (o.entity_weight, o.value))
            if best.entity == gold_entity and best.value[1:].lower() in gold_values:
                joint_right += 1

    joint_acc = joint_right / len(pairs)
    independent_acc = independent_right / len(pairs)

    table = Table(
        ["approach", "paper accuracy", "measured accuracy"],
        title=f"Sec 7.5: entity & value identification over {SAMPLE} QA pairs",
    )
    table.add_row(["independent (Stanford-NER-style)", "30%", f"{independent_acc:.0%}"])
    table.add_row(["joint extraction (KBQA)", "72%", f"{joint_acc:.0%}"])
    emit(table, "sec75_entity_identification.txt")

    assert joint_acc > independent_acc, "joint extraction must beat independent"
    assert joint_acc > 0.6

    pair = pairs[0]
    benchmark(
        extract_observations,
        [(pair.question, pair.answer)], kbview, ner, value_index,
        kb.answer_type_for_path, ExtractionConfig(),
    )
