"""Table 7 — results on QALD-5.

Paper: KBQA processes few questions (BFQs only) but with the highest
precision of all systems; recall against BFQs (R_BFQ) is far above overall
recall.  Competitor rows are quoted from the paper (their systems are not
part of this reproduction); KBQA rows are measured over both compiled KBs.

    paper KBQA+Freebase: P* = 1.00, R_BFQ = 0.42
    paper KBQA+DBpedia:  P  = 1.00, R_BFQ = 0.67
"""

from benchmarks.conftest import emit
from benchmarks.qald_common import make_table, paper_row, run_and_row


def test_table07_qald5(benchmark, bench_suite, fb_system, dbp_system):
    bench = bench_suite.benchmark("qald5")
    table = make_table("Table 7: results on QALD-5-like benchmark")

    table.add_row(paper_row("Xser (paper)", 42, 26, 7, 0.52, "-", 0.66, "-", 0.62, 0.79))
    table.add_row(paper_row("APEQ (paper)", 26, 8, 5, 0.16, "-", 0.26, "-", 0.31, 0.50))
    table.add_row(paper_row("QAnswer (paper)", 37, 9, 4, 0.18, "-", 0.26, "-", 0.24, 0.35))
    table.add_row(paper_row("SemGraphQA (paper)", 31, 7, 3, 0.14, "-", 0.20, "-", 0.23, 0.32))
    table.add_row(paper_row("YodaQA (paper)", 33, 8, 2, 0.16, "-", 0.20, "-", 0.24, 0.30))
    table.add_row(paper_row("KBQA+Freebase (paper)", 6, 5, 1, 0.10, 0.42, 0.12, 0.50, 0.83, 1.00))
    table.add_row(paper_row("KBQA+DBpedia (paper)", 8, 8, 0, 0.16, 0.67, 0.16, 0.67, 1.00, 1.00))

    fb_row, fb_metrics = run_and_row("KBQA+freebase-like", fb_system, bench, bench_suite.freebase)
    dbp_row, dbp_metrics = run_and_row("KBQA+dbpedia-like", dbp_system, bench, bench_suite.dbpedia)
    table.add_row(fb_row)
    table.add_row(dbp_row)
    emit(table, "table07_qald5.txt")

    for metrics in (fb_metrics, dbp_metrics):
        assert metrics.precision >= 0.6, "KBQA precision must stay high"
        assert metrics.recall_bfq > metrics.recall, "recall is BFQ-bounded"
        # beats the best quoted competitor precision (0.62)
        assert metrics.precision > 0.62

    benchmark(fb_system.answer, bench.questions[0].question)
