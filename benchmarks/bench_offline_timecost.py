"""Offline time cost — the Sec 6.2/6.3 tractability claim, measured.

Paper: the offline procedure stays tractable because predicate expansion is
index+scan+join (not a per-node graph walk) and each EM iteration is O(m)
over pre-pruned candidates.  This benchmark reports the wall-clock of both
offline hot paths, before (string-level scan, dict-of-dict EM) and after
(ID-native scan, array-based EM), on the same inputs — the offline companion
to ``bench_table14_timecost.py``'s online numbers.
"""

import time

from repro.core.em import EMConfig, run_em, run_em_reference
from repro.core.learner import LearnerConfig, OfflineLearner
from repro.kb.expansion import expand_predicates, expand_predicates_baseline
from repro.utils.tables import Table

from benchmarks.conftest import emit


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_offline_expansion_timecost(bench_suite):
    store = bench_suite.freebase.store
    seeds = [e.node for e in bench_suite.world.of_type("person")]
    fast_s, expanded = _best_of(lambda: expand_predicates(store, seeds, max_length=3))
    slow_s, baseline = _best_of(
        lambda: expand_predicates_baseline(store, seeds, max_length=3)
    )
    assert len(expanded) == len(baseline)

    table = Table(
        ["stage", "implementation", "wall-clock", "throughput"],
        title="Offline time cost: predicate expansion (Sec 6.2)",
    )
    table.add_row([
        "expansion", "string scan (baseline)", f"{slow_s * 1000:.1f}ms",
        f"{len(baseline) / max(slow_s, 1e-9):,.0f} spo/s",
    ])
    table.add_row([
        "expansion", "ID-native scan", f"{fast_s * 1000:.1f}ms",
        f"{len(expanded) / max(fast_s, 1e-9):,.0f} spo/s",
    ])
    table.add_row(["expansion", "speedup", f"{slow_s / max(fast_s, 1e-9):.1f}x", ""])
    emit(table, "offline_timecost_expansion.txt")

    assert fast_s < slow_s, "ID-native expansion must beat the string-level scan"


def test_offline_em_timecost(bench_suite):
    learner = OfflineLearner(
        bench_suite.freebase, bench_suite.conceptualizer, LearnerConfig()
    )
    encoded, _templates, _paths = learner.encode_corpus(bench_suite.corpus).encoded
    config = EMConfig(max_iterations=25, tolerance=0.0)
    fast_s, fast = _best_of(lambda: run_em(encoded, config))
    slow_s, slow = _best_of(lambda: run_em_reference(encoded, config))
    assert fast.iterations == slow.iterations

    table = Table(
        ["stage", "implementation", "wall-clock", "per-iteration"],
        title="Offline time cost: EM estimation (Sec 4.2, Algorithm 1)",
    )
    table.add_row([
        "em", "dict-of-dict (baseline)", f"{slow_s * 1000:.1f}ms",
        f"{slow_s * 1000 / max(slow.iterations, 1):.2f}ms",
    ])
    table.add_row([
        "em", "array-based", f"{fast_s * 1000:.1f}ms",
        f"{fast_s * 1000 / max(fast.iterations, 1):.2f}ms",
    ])
    table.add_row(["em", "speedup", f"{slow_s / max(fast_s, 1e-9):.1f}x", ""])
    emit(table, "offline_timecost_em.txt")

    assert fast_s < slow_s, "array-based EM must beat the dict-of-dict reference"
