"""Table 13 — precision of predicate inference.

Paper: manual inspection of the argmax predicate for the top-100 templates
(by frequency) gives 100% precision; for 100 random templates with
frequency > 1, 67% right + 19% partially right.

Our judge replaces manual inspection with the generator's ground truth: each
learned template maps back to the surface that generated its questions, and
the surface's majority generating intent is the gold predicate.  Partial =
the argmax path resolves to a sibling intent (area for population etc.).
"""

from collections import Counter, defaultdict

from repro.nlp.tokenizer import tokenize
from repro.data.world import SCHEMA_BY_INTENT
from repro.utils.rng import SeedStream
from repro.utils.tables import Table

from benchmarks.conftest import emit

_SLOT = "entityslot"


def _surface_key(surface_text: str) -> str:
    tokens = tokenize(surface_text.format(e=_SLOT))
    return " ".join("$e" if t == _SLOT else t for t in tokens)


def _template_key(template_text: str) -> str:
    tokens = template_text.split()
    return " ".join("$e" if t.startswith("$") else t for t in tokens)


def _gold_intents(corpus) -> dict[str, Counter]:
    """surface key -> Counter of generating intents (corpus ground truth)."""
    counts: dict[str, Counter] = defaultdict(Counter)
    for pair in corpus:
        if pair.meta.get("kind") != "factoid":
            continue
        counts[_surface_key(pair.meta["surface"])][pair.meta["intent"]] += 1
    return counts


def _judge_templates(templates, model, kb, gold_by_surface):
    right = partial = wrong = unmapped = 0
    for template in templates:
        gold_counter = gold_by_surface.get(_template_key(template))
        if not gold_counter:
            unmapped += 1
            continue
        gold_intent = gold_counter.most_common(1)[0][0]
        best = model.best_path(template)
        predicted_intent = kb.intent_of(best[0]) if best else None
        if predicted_intent == gold_intent:
            right += 1
        elif predicted_intent in SCHEMA_BY_INTENT[gold_intent].related:
            partial += 1
        else:
            wrong += 1
    return right, partial, wrong, unmapped


def test_table13_predicate_inference_precision(benchmark, bench_suite, fb_system):
    model = fb_system.model
    kb = bench_suite.freebase
    gold_by_surface = _gold_intents(bench_suite.corpus)

    top100 = model.top_templates(100)
    eligible = [t for t in model.templates() if model.support(t) > 1.0]
    random100 = SeedStream(7).substream("table13").shuffled(sorted(eligible))[:100]

    rows = []
    for label, templates, paper in [
        ("Top 100", top100, (100, 0, "100%", "100%")),
        ("Random 100", random100, (67, 19, "67%", "86%")),
    ]:
        right, partial, wrong, unmapped = _judge_templates(
            templates, model, kb, gold_by_surface
        )
        judged = right + partial + wrong
        precision = right / judged if judged else 0.0
        precision_star = (right + partial) / judged if judged else 0.0
        rows.append((label, paper, right, partial, precision, precision_star, unmapped))

    table = Table(
        ["templates", "paper #right", "paper P/P*", "#right", "#partial", "P", "P*"],
        title="Table 13: precision of predicate inference",
    )
    for label, paper, right, partial, precision, precision_star, _unmapped in rows:
        table.add_row([
            label, paper[0], f"{paper[2]}/{paper[3]}",
            right, partial, f"{precision:.0%}", f"{precision_star:.0%}",
        ])
    emit(table, "table13_precision.txt")

    top_precision = rows[0][4]
    random_star = rows[1][5]
    assert top_precision >= 0.9, "top templates must be nearly perfect"
    assert random_star >= 0.6, "random templates mostly right or partial"
    assert rows[0][4] >= rows[1][4], "top templates at least as precise as random"

    benchmark(model.top_templates, 100)
