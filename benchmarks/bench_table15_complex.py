"""Table 15 — complex question answering.

Paper: 8 typical complex questions; KBQA answers all 8, Wolfram Alpha 2,
gAnswer 0.  Our benchmark poses the 8 analogous compositions against the
synthetic world (capital->population, spouse->dob, author->works,
capital->area, members->instrument, ceo->dob, headquarters->country) and
checks the decompose-then-chain pipeline end to end.
"""

from repro.utils.tables import Table

from benchmarks.conftest import emit

# Wolfram Alpha / gAnswer columns quoted from the paper for the analogous
# composition patterns.
PAPER_WA_GA = {
    "capital -> population": ("Y", "N"),
    "spouse -> dob": ("Y", "N"),
    "author -> works_written": ("N", "N"),
    "capital -> area": ("N", "N"),
    "capital -> area (ambiguous surface)": ("N", "N"),
    "members -> instrument": ("N", "N"),
    "ceo -> dob": ("N", "N"),
    "headquarters -> country": ("N", "N"),
}


def test_table15_complex_questions(benchmark, bench_suite, fb_system):
    bench = bench_suite.benchmark("complex")
    table = Table(
        ["question", "KBQA", "WA (paper)", "gA (paper)"],
        title="Table 15: complex question answering",
    )

    answered = 0
    for bq in bench.questions:
        result = fb_system.answer_complex(bq.question)
        correct = result.answered and bool(set(result.values) & set(bq.gold_values))
        answered += int(correct)
        wa, ga = PAPER_WA_GA.get(bq.meta["pattern"], ("-", "-"))
        table.add_row([bq.question, "Y" if correct else "N", wa, ga])
    emit(table, "table15_complex.txt")

    # Paper: KBQA answers all 8 (we allow one miss at reduced scale).
    assert answered >= bench.n_total - 1, f"only {answered}/{bench.n_total} complex questions"

    benchmark(fb_system.answer_complex, bench.questions[0].question)
