"""Shared fixtures for the benchmark harness.

Everything trains once per session at the ``default`` scale: the world, both
compiled KBs, KBQA systems (with and without expansion) and the baselines.
Each ``bench_tableNN`` module regenerates one table of the paper's
evaluation section, prints it, and archives it under
``benchmarks/results/``; EXPERIMENTS.md records the paper-vs-measured
comparison.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.baselines.keyword import KeywordQA
from repro.baselines.rule import RuleQA
from repro.baselines.synonym import SynonymQA
from repro.core.system import KBQA, train_without_expansion
from repro.suite import build_suite
from repro.utils.tables import Table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_suite():
    return build_suite("default", seed=7)


@pytest.fixture(scope="session")
def fb_system(bench_suite) -> KBQA:
    return KBQA.train(bench_suite.freebase, bench_suite.corpus, bench_suite.conceptualizer)


@pytest.fixture(scope="session")
def dbp_system(bench_suite) -> KBQA:
    return KBQA.train(bench_suite.dbpedia, bench_suite.corpus, bench_suite.conceptualizer)


@pytest.fixture(scope="session")
def fb_system_noexp(bench_suite) -> KBQA:
    return train_without_expansion(
        bench_suite.freebase, bench_suite.corpus, bench_suite.conceptualizer
    )


@pytest.fixture(scope="session")
def synonym_fb(bench_suite) -> SynonymQA:
    return SynonymQA(bench_suite.freebase)


@pytest.fixture(scope="session")
def synonym_dbp(bench_suite) -> SynonymQA:
    return SynonymQA(bench_suite.dbpedia)


@pytest.fixture(scope="session")
def keyword_dbp(bench_suite) -> KeywordQA:
    return KeywordQA(bench_suite.dbpedia)


@pytest.fixture(scope="session")
def rule_dbp(bench_suite) -> RuleQA:
    return RuleQA(bench_suite.dbpedia)


def emit(table: Table, filename: str) -> None:
    """Print a result table and archive it under benchmarks/results/."""
    table.print()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(table.render() + "\n", encoding="utf-8")
