"""Table 9 — results on QALD-1: KBQA vs DEANNA (synonym-based).

Unlike Tables 7/8, the competitor here IS re-implemented and re-run: the
synonym-based baseline is this reproduction's DEANNA.  The paper's claim:
template-based beats synonym-based decisively on precision.

    paper DEANNA:        #pro 20, #ri 10, R_BFQ 0.37, P 0.50
    paper KBQA+DBpedia:  #pro 20, #ri 18, R_BFQ 0.67, P 0.90
"""

from benchmarks.conftest import emit
from benchmarks.qald_common import make_table, paper_row, run_and_row


def test_table09_qald1(benchmark, bench_suite, fb_system, dbp_system, synonym_dbp):
    bench = bench_suite.benchmark("qald1")
    table = make_table("Table 9: results on QALD-1-like benchmark (vs DEANNA)")

    table.add_row(paper_row("DEANNA (paper)", 20, 10, 0, "-", 0.37, "-", 0.37, 0.50, 0.50))
    table.add_row(paper_row("KBQA+KBA (paper)", 13, 12, 0, "-", 0.48, "-", 0.48, 0.92, 0.92))
    table.add_row(paper_row("KBQA+Freebase (paper)", 14, 13, 0, "-", 0.52, "-", 0.52, 0.93, 0.92))
    table.add_row(paper_row("KBQA+DBpedia (paper)", 20, 18, 1, "-", 0.67, "-", 0.70, 0.90, 0.95))

    deanna_row, deanna_metrics = run_and_row(
        "DEANNA-like (synonym)", synonym_dbp, bench, bench_suite.dbpedia
    )
    fb_row, fb_metrics = run_and_row("KBQA+freebase-like", fb_system, bench, bench_suite.freebase)
    dbp_row, dbp_metrics = run_and_row("KBQA+dbpedia-like", dbp_system, bench, bench_suite.dbpedia)
    table.add_row(deanna_row)
    table.add_row(fb_row)
    table.add_row(dbp_row)
    emit(table, "table09_qald1.txt")

    # The paper's claim: template-based precision >> synonym-based precision.
    assert fb_metrics.precision > deanna_metrics.precision
    assert dbp_metrics.precision > deanna_metrics.precision
    assert dbp_metrics.precision - deanna_metrics.precision > 0.1

    benchmark(synonym_dbp.answer, bench.questions[0].question)
