"""Ablations of the design choices DESIGN.md calls out.

Not a paper table — these isolate the contribution of each mechanism:

* **EM vs count-and-vote init** (Eq 23 alone): does iterating EM sharpen
  ``P(p|t)`` on ambiguous templates?
* **EV refinement on/off** (Sec 4.1): does the answer-type filter improve
  the learned model's predicate-inference precision?
* **Expansion length k in {1, 2, 3}**: coverage growth per length.
"""

import pytest

from repro.core.em import EMConfig
from repro.core.learner import LearnerConfig, OfflineLearner
from repro.core.system import KBQA, KBQAConfig
from repro.eval.runner import evaluate_qald
from repro.kb.paths import PredicatePath
from repro.utils.tables import Table

from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def init_only_model(bench_suite):
    """Zero EM iterations: theta stays the Eq 23 initializer (uniform over
    the predicates co-occurring with each template)."""
    config = LearnerConfig(em=EMConfig(max_iterations=0))
    learner = OfflineLearner(bench_suite.freebase, bench_suite.conceptualizer, config)
    return learner.learn(bench_suite.corpus).model


def test_ablation_em_iterations(benchmark, bench_suite, fb_system, init_only_model):
    """EM must not lose (and typically sharpens) the majority predicate on
    ambiguous templates compared to the initializer."""
    ambiguous = "how big is $city ?"
    full = fb_system.model.predicates_for(ambiguous)
    init = init_only_model.predicates_for(ambiguous)
    population = PredicatePath.single("population")

    table = Table(
        ["estimator", "theta(population | 'how big is $city ?')", "templates"],
        title="Ablation: EM iterations vs initializer",
    )
    table.add_row(["initializer only (Eq 23)", round(init.get(population, 0.0), 3), init_only_model.n_templates])
    table.add_row(["full EM", round(full.get(population, 0.0), 3), fb_system.model.n_templates])
    emit(table, "ablation_em.txt")

    # The initializer spreads mass uniformly over co-occurring predicates;
    # EM concentrates it on the majority explanation.
    assert full.get(population, 0.0) > init.get(population, 0.0)
    assert full.get(population, 0.0) > 0.5

    benchmark(
        lambda: OfflineLearner(
            bench_suite.freebase,
            bench_suite.conceptualizer,
            LearnerConfig(em=EMConfig(max_iterations=3)),
        ).learn(bench_suite.corpus.head(500))
    )


def _observation_noise_rate(bench_suite, use_refinement: bool, sample: int = 1500):
    """Fraction of extracted observations whose value is NOT the generating
    pair's gold value — the training noise the EM has to overcome."""
    from repro.core.extraction import ExtractionConfig, ValueIndex, extract_observations
    from repro.core.kbview import KBView
    from repro.kb.expansion import expand_predicates
    from repro.nlp.ner import EntityRecognizer

    kb = bench_suite.freebase
    ner = EntityRecognizer(kb.gazetteer)
    value_index = ValueIndex(kb.store)
    pairs = [p for p in bench_suite.corpus if p.meta.get("kind") == "factoid"][:sample]
    seeds = {e for p in pairs for e in ner.lookup(bench_suite.world.name_of(p.meta["entity"]))}
    kbview = KBView(kb.store, expand_predicates(kb.store, seeds, 3))
    config = ExtractionConfig(use_refinement=use_refinement)

    total = noisy = 0
    for pair in pairs:
        observations, _stats = extract_observations(
            [(pair.question, pair.answer)], kbview, ner, value_index,
            kb.answer_type_for_path, config,
        )
        gold_values = {v.lower() for v in pair.meta["values"]}
        for obs in observations:
            total += 1
            if obs.value[1:].lower() not in gold_values:
                noisy += 1
    return noisy / total if total else 0.0, total


def test_ablation_refinement(benchmark, bench_suite, fb_system):
    """The Sec 4.1 answer-type filter cuts training noise: without it, more
    wrong (entity, value) pairs survive extraction (Example 2's trap)."""
    noise_with, n_with = _observation_noise_rate(bench_suite, use_refinement=True)
    noise_without, n_without = _observation_noise_rate(bench_suite, use_refinement=False)

    config = KBQAConfig(learner=LearnerConfig(use_refinement=False))
    system_noref = KBQA.train(
        bench_suite.freebase, bench_suite.corpus, bench_suite.conceptualizer, config
    )
    bench = bench_suite.benchmark("qald3")
    with_ref, _ = evaluate_qald(fb_system, bench, bench_suite.freebase)
    without_ref, _ = evaluate_qald(system_noref, bench, bench_suite.freebase)

    table = Table(
        ["variant", "observations", "noisy obs rate", "P", "P*", "R_BFQ"],
        title="Ablation: entity-value refinement",
    )
    table.add_row([
        "with refinement", n_with, f"{noise_with:.1%}",
        round(with_ref.precision, 2), round(with_ref.precision_star, 2),
        round(with_ref.recall_bfq, 2),
    ])
    table.add_row([
        "without refinement", n_without, f"{noise_without:.1%}",
        round(without_ref.precision, 2), round(without_ref.precision_star, 2),
        round(without_ref.recall_bfq, 2),
    ])
    emit(table, "ablation_refinement.txt")

    assert noise_without > noise_with, "refinement must cut observation noise"
    assert with_ref.precision >= without_ref.precision - 0.02

    benchmark(fb_system.answer, bench.questions[0].question)


def test_ablation_expansion_length(benchmark, bench_suite, fb_system):
    """Template coverage per expansion length k (Table 4/16 mechanism)."""
    counts = {}
    for k in (1, 2, 3):
        config = LearnerConfig(
            max_path_length=k, use_expansion=k > 1, em=EMConfig(max_iterations=5)
        )
        learner = OfflineLearner(bench_suite.freebase, bench_suite.conceptualizer, config)
        model = learner.learn(bench_suite.corpus).model
        counts[k] = (model.n_templates, model.n_predicates)

    table = Table(
        ["k", "#templates", "#predicates"],
        title="Ablation: expansion length",
    )
    for k, (templates, predicates) in counts.items():
        table.add_row([k, templates, predicates])
    emit(table, "ablation_k.txt")

    assert counts[2][0] > counts[1][0], "k=2 unlocks entity-valued intents"
    assert counts[3][0] > counts[2][0], "k=3 unlocks CVT intents"
    assert counts[3][1] > counts[1][1]

    benchmark(fb_system.model.stats_by_path_length)
