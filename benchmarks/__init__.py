"""Benchmark harness: one module per table of the paper's evaluation.

Run with ``pytest benchmarks/ --benchmark-only``.  Each module prints its
paper-vs-measured table and archives it under ``benchmarks/results/``.
"""
