"""Table 17 — learned templates for ``marriage -> person -> name``.

Paper lists five templates learned for the spouse path ("Who is $person
marry to?", "Who is $person's husband?", ...).  We print the top templates
whose argmax predicate is that expanded path and assert they are spouse
phrasings.
"""

from repro.kb.paths import PredicatePath
from repro.utils.tables import Table

from benchmarks.conftest import emit

PAPER_TEMPLATES = [
    "who is $person marry to?",
    "who is $person's husband?",
    "what is $person's wife's name?",
    "who is the husband of $person?",
    "who is marry to $person?",
]

SPOUSE_WORDS = ("wife", "husband", "marry", "married", "spouse", "knot")


def test_table17_spouse_templates(benchmark, fb_system):
    spouse_path = PredicatePath(("marriage", "person", "name"))
    learned = fb_system.model.templates_for_path(spouse_path, count=10)

    table = Table(
        ["paper template", "measured template"],
        title="Table 17: templates for marriage->person->name",
    )
    for i in range(max(len(PAPER_TEMPLATES), min(len(learned), 10))):
        paper = PAPER_TEMPLATES[i] if i < len(PAPER_TEMPLATES) else ""
        ours = learned[i] if i < len(learned) else ""
        table.add_row([paper, ours])
    emit(table, "table17_spouse_templates.txt")

    assert len(learned) >= 5, "at least five spouse templates learned"
    spouse_like = [
        t for t in learned if any(w in t for w in SPOUSE_WORDS)
    ]
    assert len(spouse_like) >= 0.8 * len(learned), learned
    # conceptualization variety: more than one concept appears in the slot
    concepts = {tok for t in learned for tok in t.split() if tok.startswith("$")}
    assert len(concepts) >= 2

    benchmark(fb_system.model.templates_for_path, spouse_path, 10)
