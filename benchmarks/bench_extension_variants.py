"""Extension — variant questions (the paper's Sec 1 claim, implemented).

Not a paper table: the paper asserts that BFQ capability unlocks ranking,
comparison, listing and counting questions but never evaluates them.  This
benchmark does: ExtendedKBQA answers the non-BFQ strata of the QALD-3-like
and WebQuestions-like sets through learned-template probes, and the table
reports the recall uplift over plain KBQA at unchanged precision.
"""

from repro.core.variants import ExtendedKBQA
from repro.eval.runner import evaluate_qald
from repro.utils.tables import Table

from benchmarks.conftest import emit


def test_extension_variant_questions(benchmark, bench_suite, fb_system):
    extended = ExtendedKBQA(fb_system, bench_suite.taxonomy)

    table = Table(
        ["benchmark", "system", "#pro", "#ri", "R", "P"],
        title="Extension: variant questions (ranking/comparison/listing/counting/boolean)",
    )
    uplift_checked = False
    for name in ("qald3", "webquestions"):
        bench = bench_suite.benchmark(name)
        base, _ = evaluate_qald(fb_system, bench, bench_suite.freebase)
        ext, _ = evaluate_qald(extended, bench, bench_suite.freebase)
        table.add_row([name, "KBQA", base.processed, base.right,
                       round(base.recall, 2), round(base.precision, 2)])
        table.add_row([name, "KBQA+variants", ext.processed, ext.right,
                       round(ext.recall, 2), round(ext.precision, 2)])
        assert ext.right > base.right, name
        assert ext.recall > base.recall, name
        assert ext.precision >= base.precision - 0.1, name
        uplift_checked = True
    emit(table, "extension_variants.txt")
    assert uplift_checked

    benchmark(extended.answer, "which city has the largest population?")
