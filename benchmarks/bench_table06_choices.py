"""Table 6 — average candidate counts per random variable.

Paper (over KBA): P(e|q) 18.7 entities/question, P(t|e,q) 2.3 templates per
entity-question, P(p|t) 119.0 predicates per template, P(v|e,p) 3.69 values
per entity-predicate.  The magnitudes scale with KB size; the reproduction
must show the same *uncertainty structure*: every variable has more than one
candidate on average, which is what justifies the probabilistic framework
(Sec 7.2).
"""

from repro.nlp.tokenizer import tokenize
from repro.utils.tables import Table

from benchmarks.conftest import emit

PAPER = {"P(e|q)": 18.7, "P(t|e,q)": 2.3, "P(p|t)": 119.0, "P(v|e,p)": 3.69}


def _measure(fb_system, bench_suite):
    questions = [q.question for q in bench_suite.benchmark("qald3").questions]
    ner = fb_system.learn_result.ner
    conceptualizer = fb_system.conceptualizer

    entity_counts, concept_counts = [], []
    for question in questions:
        tokens = tuple(tokenize(question))
        mentions = ner.find_mentions(tokens)
        candidates = [e for m in mentions for e in m.candidates]
        if not candidates:
            continue
        entity_counts.append(len(candidates))
        for mention in mentions:
            context = tokens[: mention.start] + tokens[mention.end :]
            for entity in mention.candidates:
                concepts = conceptualizer.conceptualize(entity, context)
                if concepts:
                    concept_counts.append(len(concepts))

    model = fb_system.model
    predicate_counts = [
        len(model.predicates_for(t)) for t in model.templates()
    ]

    expanded = fb_system.learn_result.expanded
    value_counts = []
    for subject, path, _obj in list(expanded.triples())[:20000]:
        value_counts.append(expanded.value_count(subject, path))

    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    return {
        "P(e|q)": mean(entity_counts),
        "P(t|e,q)": mean(concept_counts),
        "P(p|t)": mean(predicate_counts),
        "P(v|e,p)": mean(value_counts),
    }


def test_table06_choice_statistics(benchmark, fb_system, bench_suite):
    measured = _measure(fb_system, bench_suite)

    table = Table(
        ["probability", "explanation", "paper avg", "measured avg"],
        title="Table 6: average choices per random variable",
    )
    explanations = {
        "P(e|q)": "#entities for a question",
        "P(t|e,q)": "#templates for an entity-question pair",
        "P(p|t)": "#predicates for a template",
        "P(v|e,p)": "#values for an entity-predicate pair",
    }
    for key in PAPER:
        table.add_row([key, explanations[key], PAPER[key], round(measured[key], 2)])
    emit(table, "table06_choices.txt")

    # The uncertainty structure: more than one candidate on average for the
    # variables the paper highlights as ambiguous.
    assert measured["P(t|e,q)"] > 1.0, "conceptualization is ambiguous"
    assert measured["P(p|t)"] > 1.0, "templates map to several predicates"
    assert measured["P(v|e,p)"] >= 1.0

    conceptualizer = fb_system.conceptualizer
    entity = next(iter(bench_suite.world.entities))
    benchmark(conceptualizer.conceptualize, entity, ("how", "big", "is"))
