"""Table 4 — valid(k): meaningful expanded predicates per length.

Paper (Sec 6.3): valid(k) rises from k=1 to k=2 and collapses at k=3; k=3 is
still chosen because the survivors are the meaningful CVT relations.

    paper KBA:     k=1 14005   k=2 16028   k=3 2438
    paper DBpedia: k=1 352811  k=2 496964  k=3 2364

Expected reproduction shape: valid(2) > valid(1) on the Freebase-like KB, a
collapse at k=3 on both KBs (severe on the DBpedia-like one, which has no
CVT mediators at all), and choose_k = 3.
"""

from repro.core.kselect import choose_k, valid_k
from repro.utils.tables import Table

from benchmarks.conftest import emit

PAPER = {"KBA": {1: 14005, 2: 16028, 3: 2438}, "DBpedia": {1: 352811, 2: 496964, 3: 2364}}
SAMPLE_ENTITIES = 800


def test_table04_valid_k(benchmark, bench_suite):
    fb_counts = valid_k(
        bench_suite.freebase.store, bench_suite.infobox, 3, sample_entities=SAMPLE_ENTITIES
    )
    dbp_counts = valid_k(
        bench_suite.dbpedia.store, bench_suite.infobox, 3, sample_entities=SAMPLE_ENTITIES
    )

    table = Table(
        ["KB", "k=1", "k=2", "k=3", "chosen k"],
        title=f"Table 4: valid(k), sampled over top {SAMPLE_ENTITIES} entities",
    )
    table.add_row(["paper KBA", PAPER["KBA"][1], PAPER["KBA"][2], PAPER["KBA"][3], 3])
    table.add_row(["paper DBpedia", PAPER["DBpedia"][1], PAPER["DBpedia"][2], PAPER["DBpedia"][3], 3])
    table.add_row(["freebase-like", fb_counts[1], fb_counts[2], fb_counts[3], choose_k(fb_counts)])
    table.add_row(["dbpedia-like", dbp_counts[1], dbp_counts[2], dbp_counts[3], choose_k(dbp_counts)])
    emit(table, "table04_valid_k.txt")

    # Paper shape assertions.
    assert fb_counts[2] > fb_counts[1], "KBA shape: valid(2) > valid(1)"
    assert fb_counts[3] < fb_counts[2], "collapse at k=3"
    assert dbp_counts[3] < 0.1 * dbp_counts[2], "DBpedia k=3 collapse is severe"
    assert choose_k(fb_counts) == 3

    # Benchmark the valid(k) computation itself on a smaller sample.
    benchmark(valid_k, bench_suite.freebase.store, bench_suite.infobox, 3, 100)
