"""Table 16 — effectiveness of predicate expansion.

Paper: expanded predicates (length 2..k) contribute 26.7M templates over
2536 predicates versus 467K templates over 246 direct predicates — a 57x
template and 10.3x predicate multiplier.  The magnitude tracks how much of
the KB is CVT-encoded; the shape to reproduce is that expansion multiplies
both counts substantially.
"""

from repro.utils.tables import Table

from benchmarks.conftest import emit

PAPER = {"len1": (467393, 246), "len2k": (26658962, 2536), "ratio": (57.0, 10.3)}


def test_table16_expansion_effect(benchmark, fb_system, fb_system_noexp):
    by_length = fb_system.model.stats_by_path_length()
    len1 = by_length.get(1, {"templates": 0, "predicates": 0})
    len2k_templates = sum(
        v["templates"] for length, v in by_length.items() if length >= 2
    )
    len2k_predicates = sum(
        v["predicates"] for length, v in by_length.items() if length >= 2
    )

    table = Table(
        ["length", "paper #templates", "paper #predicates", "#templates", "#predicates"],
        title="Table 16: effectiveness of predicate expansion",
    )
    table.add_row(["1", PAPER["len1"][0], PAPER["len1"][1], len1["templates"], len1["predicates"]])
    table.add_row(["2 to k", PAPER["len2k"][0], PAPER["len2k"][1], len2k_templates, len2k_predicates])
    ratio_t = len2k_templates / max(len1["templates"], 1)
    ratio_p = len2k_predicates / max(len1["predicates"], 1)
    table.add_row(["ratio", PAPER["ratio"][0], PAPER["ratio"][1], round(ratio_t, 1), round(ratio_p, 1)])

    # Cross-check against the ablated system (trained without expansion).
    noexp = fb_system_noexp.model
    table.add_row([
        "no-expansion ablation", "-", "-", noexp.n_templates, noexp.n_predicates,
    ])
    emit(table, "table16_expansion.txt")

    assert len2k_templates > len1["templates"], "expansion adds the majority of templates"
    assert len2k_predicates > 0.5 * len1["predicates"]
    assert fb_system.model.n_templates > 1.5 * noexp.n_templates
    assert fb_system.model.n_predicates > 1.3 * noexp.n_predicates

    benchmark(fb_system.model.stats_by_path_length)
