"""Table 11 — hybrid systems on QALD-3 over DBpedia.

Paper: composing KBQA in front of every baseline lifts both recall and
precision (e.g. SWIP R 0.15 -> 0.33, P 0.71 -> 0.87).  We compose KBQA with
this reproduction's three baselines (synonym / keyword / rule) and verify
the uplift holds for each.
"""

from repro.baselines.hybrid import HybridSystem
from repro.eval.runner import evaluate_qald
from repro.utils.tables import Table

from benchmarks.conftest import emit

PAPER_ROWS = [
    ["SWIP (paper)", 0.15, 0.17, 0.71, 0.81],
    ["KBQA+SWIP (paper)", 0.33, 0.35, 0.87, 0.92],
    ["CASIA (paper)", 0.29, 0.37, 0.56, 0.71],
    ["KBQA+CASIA (paper)", 0.38, 0.44, 0.66, 0.76],
    ["RTV (paper)", 0.30, 0.34, 0.34, 0.62],
    ["KBQA+RTV (paper)", 0.39, 0.42, 0.66, 0.71],
    ["Scalewelis (paper)", 0.32, 0.33, 0.46, 0.47],
    ["KBQA+Scalewelis (paper)", 0.44, 0.45, 0.60, 0.62],
]


def test_table11_hybrid_systems(
    benchmark, bench_suite, dbp_system, synonym_dbp, keyword_dbp, rule_dbp
):
    bench = bench_suite.benchmark("qald3")
    kb = bench_suite.dbpedia
    table = Table(
        ["system", "R", "R*", "P", "P*"],
        title="Table 11: hybrid systems on QALD-3-like over dbpedia-like KB",
    )
    for row in PAPER_ROWS:
        table.add_row(row)

    uplifts = []
    for label, baseline in [
        ("synonym", synonym_dbp), ("keyword", keyword_dbp), ("rule", rule_dbp),
    ]:
        alone, _ = evaluate_qald(baseline, bench, kb)
        hybrid, _ = evaluate_qald(HybridSystem(dbp_system, baseline), bench, kb)
        table.add_row([
            f"{label} (measured)",
            round(alone.recall, 2), round(alone.recall_star, 2),
            round(alone.precision, 2), round(alone.precision_star, 2),
        ])
        table.add_row([
            f"KBQA+{label} (measured)",
            round(hybrid.recall, 2), round(hybrid.recall_star, 2),
            round(hybrid.precision, 2), round(hybrid.precision_star, 2),
        ])
        uplifts.append((label, alone, hybrid))
    emit(table, "table11_hybrid.txt")

    for label, alone, hybrid in uplifts:
        assert hybrid.recall >= alone.recall, f"hybrid must not lose recall ({label})"
        assert hybrid.right >= alone.right, label
    # at least the weaker baselines gain precision from KBQA going first
    gains = [hybrid.precision - alone.precision for _l, alone, hybrid in uplifts]
    assert max(gains) > 0.0

    question = bench.questions[0].question
    hybrid_system = HybridSystem(dbp_system, synonym_dbp)
    benchmark(hybrid_system.answer, question)
