"""Table 5 — benchmark inventories (#total, #BFQ, ratio).

Paper: WebQuestions 2032 (BFQ count unreported), QALD-5 50/12 (0.24),
QALD-3 99/41 (0.41), QALD-1 50/27 (0.54).  Our synthetic sets reproduce the
QALD totals and BFQ ratios exactly; the WebQuestions-like set is scaled down
but keeps a minority-BFQ mix.
"""

from repro.corpus.benchmark import build_qald_like
from repro.utils.tables import Table

from benchmarks.conftest import emit

PAPER = {
    "qald1": (50, 27),
    "qald3": (99, 41),
    "qald5": (50, 12),
    "webquestions": (2032, None),
}


def test_table05_benchmark_inventory(benchmark, bench_suite):
    table = Table(
        ["benchmark", "paper #total", "paper #BFQ", "ours #total", "ours #BFQ", "ours ratio"],
        title="Table 5: evaluation benchmarks",
    )
    for name in ("webquestions", "qald5", "qald3", "qald1"):
        bench = bench_suite.benchmark(name)
        paper_total, paper_bfq = PAPER[name]
        table.add_row([
            name, paper_total, paper_bfq if paper_bfq is not None else "-",
            bench.n_total, bench.n_bfq, round(bench.bfq_ratio, 2),
        ])
    emit(table, "table05_benchmarks.txt")

    for name in ("qald1", "qald3", "qald5"):
        bench = bench_suite.benchmark(name)
        assert (bench.n_total, bench.n_bfq) == PAPER[name]

    benchmark(
        build_qald_like, "bench", bench_suite.world,
        7, 9, 2, 1, 38,
    )
