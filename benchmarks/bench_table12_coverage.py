"""Table 12 — coverage of predicate inference: KBQA vs bootstrapping.

Paper: KBQA learns 27,126,355 templates / 2782 predicates on KBA (and
1.17M/4690 on Freebase, 863K/1434 on DBpedia) versus bootstrapping's 471,920
BOA patterns / 283 predicates — despite bootstrapping using a larger corpus.
Shape to reproduce: template learning covers an order of magnitude more
templates and strictly more predicates than pattern bootstrapping, because
(a) conceptualized templates multiply per surface and (b) bootstrapping
cannot reach CVT-mediated relations from flat sentences.
"""

from repro.baselines.bootstrapping import BootstrapLearner
from repro.utils.tables import Table

from benchmarks.conftest import emit

PAPER_ROWS = [
    ["KBQA+KBA (paper)", "41M QA", 27126355, 2782, 9751],
    ["KBQA+Freebase (paper)", "41M QA", 1171303, 4690, 250],
    ["KBQA+DBpedia (paper)", "41M QA", 862758, 1434, 602],
    ["Bootstrapping (paper)", "256M sentences", 471920, 283, 4639],
]


def test_table12_coverage(benchmark, bench_suite, fb_system, dbp_system):
    boot = BootstrapLearner(bench_suite.freebase).learn(bench_suite.sentences)

    table = Table(
        ["system", "corpus", "templates", "predicates", "templates/predicate"],
        title="Table 12: coverage of predicate inference",
    )
    for row in PAPER_ROWS:
        table.add_row(row)
    for label, model in [
        ("KBQA+freebase-like (measured)", fb_system.model),
        ("KBQA+dbpedia-like (measured)", dbp_system.model),
    ]:
        table.add_row([
            label, f"{len(bench_suite.corpus)} QA",
            model.n_templates, model.n_predicates,
            round(model.templates_per_predicate(), 1),
        ])
    table.add_row([
        "Bootstrapping (measured)", f"{len(bench_suite.sentences)} sentences",
        boot.n_patterns, boot.n_predicates, round(boot.n_patterns / max(boot.n_predicates, 1), 1),
    ])
    emit(table, "table12_coverage.txt")

    assert fb_system.model.n_templates > 10 * boot.n_patterns
    assert fb_system.model.n_predicates > boot.n_predicates
    assert dbp_system.model.n_templates > 10 * boot.n_patterns

    learner = BootstrapLearner(bench_suite.freebase)
    benchmark(learner.learn, bench_suite.sentences[:500])
