"""Table 14 — online time cost and complexity.

Paper: KBQA answers in 79 ms — 13x faster than gAnswer (990 ms) and 98x
faster than DEANNA (7738 ms) — because question parsing is O(|q|^4) and
probabilistic inference O(|P|), versus NP-hard stages in both competitors.

Measured here: wall-clock per question for KBQA's online procedure vs the
synonym (DEANNA-like) baseline's phrase x predicate similarity search.  The
absolute numbers are machine- and scale-specific; the claim is the gap.
"""

import time

from repro.utils.tables import Table

from benchmarks.conftest import emit

PAPER_ROWS = [
    ["DEANNA (paper)", "7738ms", "NP-hard", "NP-hard"],
    ["gAnswer (paper)", "990ms", "O(|V|^3)", "NP-hard"],
    ["KBQA (paper)", "79ms", "O(|q|^4) parsing", "O(|P|) inference"],
]


def _mean_latency_ms(system, questions, repeats: int = 3) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        for question in questions:
            system.answer(question)
    elapsed = time.perf_counter() - start
    return elapsed * 1000.0 / (repeats * len(questions))


def _bfq_questions(bench_suite, count=30):
    return [q.question for q in bench_suite.benchmark("qald3").bfqs()][:count]


def test_table14_time_cost(benchmark, bench_suite, fb_system, synonym_fb):
    questions = _bfq_questions(bench_suite)
    kbqa_ms = _mean_latency_ms(fb_system, questions)
    deanna_ms = _mean_latency_ms(synonym_fb, questions)

    table = Table(
        ["system", "time/question", "understanding", "evaluation"],
        title="Table 14: online time cost",
    )
    for row in PAPER_ROWS:
        table.add_row(row)
    table.add_row(["DEANNA-like (measured)", f"{deanna_ms:.2f}ms", "phrase x predicate search", "KB lookup"])
    table.add_row(["KBQA (measured)", f"{kbqa_ms:.2f}ms", "template lookup", "O(|P|) inference"])
    emit(table, "table14_timecost.txt")

    # The gap is the claim: KBQA must be decisively faster.
    assert kbqa_ms < deanna_ms, "KBQA online must beat the synonym baseline"
    assert deanna_ms / max(kbqa_ms, 1e-6) > 2.0, "expect a multi-x gap"

    benchmark(fb_system.answer, questions[0])


def test_table14_deanna_latency(benchmark, bench_suite, synonym_fb):
    """Companion benchmark: the synonym baseline's per-question latency, so
    pytest-benchmark's own table shows the KBQA vs DEANNA-like gap."""
    questions = _bfq_questions(bench_suite)
    benchmark(synonym_fb.answer, questions[0])
