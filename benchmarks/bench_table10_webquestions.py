"""Table 10 — results on the WebQuestions-like test set.

Paper: KBQA has by far the highest precision (0.85) but low recall (0.22)
because WebQuestions is mostly non-BFQs; its F1 (0.34) trails neural systems
that attempt everything.  Neural competitor rows are quoted (they are cited
systems, not part of the paper's artifact).
"""

from repro.eval.runner import evaluate_webquestions
from repro.utils.tables import Table

from benchmarks.conftest import emit

PAPER_ROWS = [
    ["Bordes et al. 2014 (paper)", "-", 0.40, "-", 0.39],
    ["Zheng et al. 2015 (paper)", 0.38, "-", "-", "-"],
    ["Li et al. 2015 (paper)", "-", 0.45, "-", 0.41],
    ["Yao 2015 (paper)", 0.53, "-", 0.55, 0.44],
    ["KBQA (paper)", 0.85, 0.52, 0.22, 0.34],
]


def test_table10_webquestions(benchmark, bench_suite, fb_system):
    bench = bench_suite.benchmark("webquestions")
    metrics, _records = evaluate_webquestions(fb_system, bench)

    table = Table(
        ["system", "P", "P@1", "R", "F1"],
        title="Table 10: results on the WebQuestions-like test set",
    )
    for row in PAPER_ROWS:
        table.add_row(row)
    table.add_row([
        "KBQA (measured)",
        round(metrics.precision, 2),
        round(metrics.precision_at_1, 2),
        round(metrics.recall, 2),
        round(metrics.f1, 2),
    ])
    emit(table, "table10_webquestions.txt")

    # Shape: precision far above recall; recall bounded by the BFQ share.
    assert metrics.precision > 0.7
    assert metrics.recall < bench.bfq_ratio + 0.05
    assert metrics.precision > metrics.recall + 0.3

    benchmark(fb_system.answer, bench.questions[0].question)
