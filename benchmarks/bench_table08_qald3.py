"""Table 8 — results on QALD-3.

Paper: KBQA+DBpedia reaches P = 0.96 with R_BFQ = 0.61; all KBQA variants
beat every competitor on precision except squall2sparql (which uses human
annotation).  The recall analysis (Sec 7.3.1) attributes most BFQ misses to
rare predicates lacking training support — reproduced here by the
``bfq_rare`` and ``bfq_unseen`` benchmark strata.
"""

from benchmarks.conftest import emit
from benchmarks.qald_common import make_table, paper_row, run_and_row


def test_table08_qald3(benchmark, bench_suite, fb_system, dbp_system):
    bench = bench_suite.benchmark("qald3")
    table = make_table("Table 8: results on QALD-3-like benchmark")

    table.add_row(paper_row("squall2sparql (paper, human-assisted)", 96, 80, 13, 0.78, 0.81, 0.91, 0.94, 0.84, 0.97))
    table.add_row(paper_row("SWIP (paper)", 21, 14, 2, 0.14, 0.24, 0.16, 0.24, 0.67, 0.76))
    table.add_row(paper_row("CASIA (paper)", 52, 29, 8, 0.29, 0.56, 0.37, 0.61, 0.56, 0.71))
    table.add_row(paper_row("RTV (paper)", 55, 30, 4, 0.30, 0.56, 0.34, 0.56, 0.55, 0.62))
    table.add_row(paper_row("gAnswer (paper)", 76, 32, 11, 0.32, 0.54, 0.43, "-", 0.42, 0.57))
    table.add_row(paper_row("Intui2 (paper)", 99, 28, 4, 0.28, 0.54, 0.32, 0.56, 0.28, 0.32))
    table.add_row(paper_row("Scalewelis (paper)", 70, 32, 1, 0.32, 0.41, 0.33, 0.41, 0.46, 0.47))
    table.add_row(paper_row("KBQA+KBA (paper)", 25, 17, 2, 0.17, 0.42, 0.19, 0.46, 0.68, 0.76))
    table.add_row(paper_row("KBQA+Freebase (paper)", 21, 15, 3, 0.15, 0.37, 0.18, 0.44, 0.71, 0.86))
    table.add_row(paper_row("KBQA+DBpedia (paper)", 26, 25, 0, 0.25, 0.61, 0.25, 0.61, 0.96, 0.96))

    fb_row, fb_metrics = run_and_row("KBQA+freebase-like", fb_system, bench, bench_suite.freebase)
    dbp_row, dbp_metrics = run_and_row("KBQA+dbpedia-like", dbp_system, bench, bench_suite.dbpedia)
    table.add_row(fb_row)
    table.add_row(dbp_row)
    emit(table, "table08_qald3.txt")

    for metrics in (fb_metrics, dbp_metrics):
        # KBQA beats all non-human-assisted competitors on precision (>0.67)
        assert metrics.precision > 0.67
        assert metrics.recall_bfq > 0.4
        # bounded recall: KBQA only attempts BFQs
        assert metrics.processed <= bench.n_bfq + 3

    benchmark(dbp_system.answer, bench.questions[0].question)
