"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so editable
installs must go through ``setup.py develop`` rather than PEP 660.  All
metadata lives in ``pyproject.toml``; setuptools >= 61 reads it from there.
"""

from setuptools import setup

setup()
