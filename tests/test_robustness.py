"""Failure injection and adversarial-input tests.

A production QA system faces malformed questions, corrupted artifacts and
degenerate corpora; every failure here must be a clean refusal or a clear
exception — never a crash or a silent wrong answer.
"""

import json

import pytest

from repro.core.em import EMConfig
from repro.core.learner import LearnerConfig, OfflineLearner
from repro.core.model import TemplateModel
from repro.corpus.qa import QACorpus, QAPair


class TestAdversarialQuestions:
    @pytest.mark.parametrize("question", [
        "",
        "?",
        "???",
        "        ",
        "$person $city $company",
        "' or 1=1 --",
        "\\n\\t\\r",
        "🦊🦊🦊",
        "a" * 500,
        "when was when was when was born born born?",
    ])
    def test_garbage_questions_refused_cleanly(self, kbqa_fb, question):
        result = kbqa_fb.answer(question)
        assert not result.answered

    def test_very_long_question_decomposes_without_blowup(self, suite, kbqa_fb):
        city = next(e for e in suite.world.of_type("city") if e.get_fact("population"))
        long_question = ("really " * 30) + f"what is the population of {city.name}?"
        result = kbqa_fb.answer_complex(long_question)
        # over the 23-token pattern cap: fine to refuse, must not hang/crash
        assert result is not None

    def test_question_that_is_only_an_entity(self, suite, kbqa_fb):
        city = suite.world.of_type("city")[0]
        result = kbqa_fb.answer(city.name)
        # a bare entity has no learnable template ('$city' alone)
        assert result.value is None or isinstance(result.value, str)

    def test_entity_at_question_start_and_end(self, suite, kbqa_fb):
        person = next(p for p in suite.world.of_type("person") if p.get_fact("dob"))
        for question in (
            f"{person.name} was born when?",
            f"when was {person.name}",
        ):
            result = kbqa_fb.answer(question)  # must not raise
            assert result.question == question

    def test_unicode_apostrophe_variants(self, suite, kbqa_fb):
        person = next(p for p in suite.world.of_type("person") if p.get_fact("spouse"))
        ascii_q = f"who is {person.name} 's wife?"
        unicode_q = f"who is {person.name}’s wife?"
        assert kbqa_fb.answer(ascii_q).value == kbqa_fb.answer(unicode_q).value


class TestCorruptedArtifacts:
    def test_truncated_model_file(self, kbqa_fb, tmp_path):
        path = tmp_path / "model.json"
        kbqa_fb.model.save(path)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        with pytest.raises(json.JSONDecodeError):
            TemplateModel.load(path)

    def test_model_with_negative_probability(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(json.dumps({
            "format_version": 1,
            "n_observations": 1,
            "templates": {"t $x": {"support": 1.0, "theta": {"p": -0.5}}},
        }))
        with pytest.raises(ValueError):
            TemplateModel.load(path)

    def test_corrupted_corpus_line(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text('{"qid": "a", "question": "x?", "answer": "y."}\nnot json\n')
        with pytest.raises(json.JSONDecodeError):
            QACorpus.load(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TemplateModel.load(tmp_path / "ghost.json")


class TestDegenerateTraining:
    def test_empty_corpus_yields_empty_model(self, suite):
        learner = OfflineLearner(
            suite.freebase, suite.conceptualizer,
            LearnerConfig(em=EMConfig(max_iterations=2)),
        )
        result = learner.learn(QACorpus())
        assert result.model.n_templates == 0
        assert result.n_observations == 0

    def test_chitchat_only_corpus(self, suite):
        corpus = QACorpus([
            QAPair(f"c{i}", "what should i eat tonight?", "pizza, always pizza.")
            for i in range(20)
        ])
        learner = OfflineLearner(
            suite.freebase, suite.conceptualizer,
            LearnerConfig(em=EMConfig(max_iterations=2)),
        )
        result = learner.learn(corpus)
        assert result.model.n_templates == 0

    def test_system_with_empty_model_refuses_everything(self, suite):
        from repro.core.system import KBQA, KBQAConfig

        system = KBQA.train(
            suite.freebase, QACorpus(), suite.conceptualizer, KBQAConfig()
        )
        assert not system.answer("what is the population of anything?").answered
        complex_result = system.answer_complex("how big is the capital of x?")
        assert not complex_result.answered

    def test_contradictory_corpus_still_trains(self, suite):
        """A corpus asserting wrong values for every question must not crash
        training — connecting paths simply do not exist (Eq 8 filters)."""
        city = next(e for e in suite.world.of_type("city") if e.get_fact("population"))
        corpus = QACorpus([
            QAPair(f"w{i}", f"what is the population of {city.name}?", "it 's 123456789.")
            for i in range(10)
        ])
        learner = OfflineLearner(
            suite.freebase, suite.conceptualizer,
            LearnerConfig(em=EMConfig(max_iterations=2)),
        )
        result = learner.learn(corpus)
        template = "what is the population of $city ?"
        # nothing learnable from unconnected values
        assert template not in result.model or result.model.support(template) == 0


class TestValueCollisions:
    def test_colliding_year_values_do_not_confuse_intents(self, suite, kbqa_fb):
        """A founding year can equal a birth year; templates must still map
        to their own intents because EM aggregates over many instances."""
        dob_best = kbqa_fb.model.best_path("when was $person born ?")
        founded_best = kbqa_fb.model.best_path("when was $city founded ?")
        assert dob_best is not None and str(dob_best[0]) == "dob"
        if founded_best is not None:
            assert str(founded_best[0]) == "founded"
