"""Tests for the KBQA facade, the suite assembly and the CLI."""

import pytest

from repro.cli import main
from repro.core.system import KBQAConfig, train_without_expansion
from repro.suite import build_suite

from tests.conftest import pick_entity


class TestKBQAFacade:
    def test_describe_inventory(self, kbqa_fb):
        info = kbqa_fb.describe()
        assert info["kb"] == "freebase"
        assert info["templates"] > 100
        assert info["predicates"] > 20
        assert info["expanded_spo"] > 0
        assert info["em_iterations"] >= 1

    def test_train_without_expansion_helper(self, suite):
        system = train_without_expansion(suite.freebase, suite.corpus, suite.conceptualizer)
        assert system.describe()["expanded_spo"] == 0

    def test_answer_and_answer_complex_agree_on_bfq(self, suite, kbqa_fb):
        city = pick_entity(suite.world, "city", "population")
        question = f"what is the population of {city.name}?"
        simple = kbqa_fb.answer(question)
        complex_result = kbqa_fb.answer_complex(question)
        assert complex_result.value == simple.value

    def test_config_threading(self, suite):
        from repro.core.em import EMConfig
        from repro.core.learner import LearnerConfig

        config = KBQAConfig(
            learner=LearnerConfig(em=EMConfig(max_iterations=2)),
            pattern_max_questions=100,
        )
        from repro.core.system import KBQA

        system = KBQA.train(suite.freebase, suite.corpus, suite.conceptualizer, config)
        assert system.learn_result.em.iterations <= 2
        assert system.decomposer.statistics.questions_indexed <= 100


class TestSuite:
    def test_components_present(self, suite):
        assert suite.world.entities
        assert len(suite.freebase.store) > len(suite.dbpedia.store)
        assert len(suite.corpus) == 4000
        assert suite.sentences
        assert len(suite.infobox) > 0
        assert set(suite.benchmarks) == {"qald1", "qald3", "qald5", "webquestions", "complex"}

    def test_deterministic_rebuild(self, suite):
        rebuilt = build_suite("small", seed=7)
        assert rebuilt.world.stats() == suite.world.stats()
        assert [p.question for p in rebuilt.corpus.pairs[:50]] == [
            p.question for p in suite.corpus.pairs[:50]
        ]
        assert [q.question for q in rebuilt.benchmark("qald3").questions] == [
            q.question for q in suite.benchmark("qald3").questions
        ]

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            build_suite("enormous")

    def test_benchmark_lookup(self, suite):
        assert suite.benchmark("qald1").name == "qald1"
        with pytest.raises(KeyError):
            suite.benchmark("nope")


class TestCLI:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "kbqa" in capsys.readouterr().out

    def test_stats_command(self, capsys):
        assert main(["stats", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "world" in out
        assert "benchmark" in out

    def test_demo_command(self, suite, capsys):
        city = pick_entity(suite.world, "city", "population")
        code = main(["demo", "--scale", "small", f"what is the population of {city.name}?"])
        assert code == 0
        out = capsys.readouterr().out
        assert "A:" in out
        gold = suite.world.gold_values(city.node, "population")
        assert any(v in out for v in gold)

    def test_train_command_saves_model(self, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        assert main(["train", "--scale", "small", "--model", str(model_path)]) == 0
        assert model_path.exists()
        from repro.core.model import TemplateModel

        loaded = TemplateModel.load(model_path)
        assert loaded.n_templates > 0

    def test_eval_command(self, capsys):
        assert main(["eval", "--scale", "small", "--benchmark", "qald5"]) == 0
        out = capsys.readouterr().out
        assert "P" in out and "R" in out


class TestEndToEnd:
    def test_full_pipeline_fresh_build(self, tmp_path):
        """Train, persist, reload, answer — the complete user journey on a
        freshly built (tiny) suite, independent of session fixtures."""
        from repro.core.em import EMConfig
        from repro.core.learner import LearnerConfig
        from repro.core.model import TemplateModel
        from repro.core.system import KBQA

        fresh = build_suite("small", seed=11)
        config = KBQAConfig(learner=LearnerConfig(em=EMConfig(max_iterations=8)))
        system = KBQA.train(fresh.freebase, fresh.corpus, fresh.conceptualizer, config)

        model_path = tmp_path / "model.json"
        system.model.save(model_path)
        reloaded = TemplateModel.load(model_path)
        assert reloaded.n_templates == system.model.n_templates

        city = pick_entity(fresh.world, "city", "population")
        result = system.answer(f"how many people live in {city.name}?")
        assert result.answered
        assert result.value in fresh.world.gold_values(city.node, "population")


class TestCLIDecompose:
    def test_decompose_complex_question(self, suite, capsys):
        from tests.conftest import pick_entity

        person = pick_entity(suite.world, "person", "spouse")
        question = f"when was {person.name} 's wife born?"
        assert main(["decompose", "--scale", "small", question]) == 0
        out = capsys.readouterr().out
        assert "q0:" in out and "q1:" in out
        assert "$e" in out

    def test_decompose_simple_question(self, suite, capsys):
        from tests.conftest import pick_entity

        city = pick_entity(suite.world, "city", "population")
        assert main(["decompose", "--scale", "small",
                     f"what is the population of {city.name}?"]) == 0
        assert "primitive BFQ" in capsys.readouterr().out


class TestCLIVariants:
    def test_superlative_through_cli(self, suite, capsys):
        best = max(
            (c for c in suite.world.of_type("city") if c.get_fact("population")),
            key=lambda c: int(c.get_fact("population")[0]),
        )
        assert main(["variants", "--scale", "small",
                     "which city has the largest population?"]) == 0
        out = capsys.readouterr().out
        assert best.name in out
        assert "variant:superlative" in out


class TestCrossProcessDeterminism:
    def test_model_identical_across_interpreters(self, tmp_path):
        """Two fresh interpreter runs must produce byte-identical models —
        the reproducibility guarantee the whole suite rests on."""
        import subprocess
        import sys

        script = (
            "import sys; "
            "from repro.suite import build_suite; "
            "from repro.core.system import KBQA, KBQAConfig; "
            "from repro.core.learner import LearnerConfig; "
            "from repro.core.em import EMConfig; "
            "s = build_suite('small', seed=23); "
            "cfg = KBQAConfig(learner=LearnerConfig(em=EMConfig(max_iterations=5))); "
            "k = KBQA.train(s.freebase, s.corpus, s.conceptualizer, cfg); "
            "k.model.save(sys.argv[1])"
        )
        paths = [tmp_path / "run_a.json", tmp_path / "run_b.json"]
        for path in paths:
            subprocess.run(
                [sys.executable, "-c", script, str(path)],
                check=True, timeout=300,
            )
        import json

        a = json.loads(paths[0].read_text())
        b = json.loads(paths[1].read_text())
        assert a == b
