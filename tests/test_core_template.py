"""Tests for the Template representation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.template import Template
from repro.nlp.tokenizer import tokenize


class TestTemplateConstruction:
    def test_from_question(self):
        tokens = tokenize("how many people are there in honolulu?")
        template = Template.from_question(tokens, (6, 7), "$city")
        assert template.text == "how many people are there in $city ?"
        assert template.concept == "$city"

    def test_multi_token_mention_collapses(self):
        tokens = tokenize("when was barack obama born?")
        template = Template.from_question(tokens, (2, 4), "$person")
        assert template.text == "when was $person born ?"
        assert template.slot == 2

    def test_bad_span_rejected(self):
        with pytest.raises(ValueError):
            Template.from_question(["a", "b"], (1, 1), "$c")
        with pytest.raises(ValueError):
            Template.from_question(["a", "b"], (0, 3), "$c")

    def test_slot_must_be_concept(self):
        with pytest.raises(ValueError):
            Template(("when", "was", "obama"), 2)

    def test_from_text_roundtrip(self):
        template = Template.from_text("when was $person born ?")
        assert template.concept == "$person"
        assert template.slot == 2
        assert Template.from_text(template.text) == template

    def test_from_text_without_concept_rejected(self):
        with pytest.raises(ValueError):
            Template.from_text("when was obama born ?")


class TestTemplateBehaviour:
    def test_instantiate_inverse_of_from_question(self):
        tokens = tuple(tokenize("when was barack obama born?"))
        template = Template.from_question(tokens, (2, 4), "$person")
        assert template.instantiate(("barack", "obama")) == tokens

    def test_identity_by_text(self):
        a = Template.from_text("when was $person born ?")
        b = Template.from_text("when was $person born ?")
        assert a == b and hash(a) == hash(b)

    def test_different_concepts_different_templates(self):
        a = Template.from_text("when was $person born ?")
        b = Template.from_text("when was $politician born ?")
        assert a != b

    @given(st.integers(min_value=0, max_value=4))
    def test_property_roundtrip(self, start):
        tokens = tuple("t0 t1 t2 t3 t4 t5".split())
        end = start + 2
        if end > len(tokens):
            return
        template = Template.from_question(tokens, (start, end), "$x")
        assert template.instantiate(tokens[start:end]) == tokens
        assert Template.from_text(template.text).text == template.text
