"""Tests for the scan-based predicate expansion (Sec 6.2)."""

import pytest

from repro.kb.expansion import ExpandedStore, expand_predicates
from repro.kb.paths import PredicatePath, follow
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal


@pytest.fixture
def cvt_kb() -> TripleStore:
    kb = TripleStore()
    # Two married couples, one seed each direction.
    kb.add("a", "name", make_literal("alice"))
    kb.add("a", "marriage", "cvt1")
    kb.add("cvt1", "person", "b")
    kb.add("cvt1", "date", make_literal("1990"))
    kb.add("b", "name", make_literal("bob"))
    kb.add("b", "dob", make_literal("1960"))
    kb.add("a", "pob", "city")
    kb.add("city", "name", make_literal("springfield"))
    kb.add("city", "mayor", "m")
    kb.add("m", "name", make_literal("mel"))
    return kb


class TestExpandPredicates:
    def test_length_one_paths_always_recorded(self, cvt_kb):
        expanded = expand_predicates(cvt_kb, ["a"], max_length=1)
        assert expanded.objects("a", PredicatePath.single("pob")) == {"city"}

    def test_cvt_path_found_at_length_three(self, cvt_kb):
        expanded = expand_predicates(cvt_kb, ["a"], max_length=3)
        path = PredicatePath(("marriage", "person", "name"))
        assert expanded.objects("a", path) == {make_literal("bob")}

    def test_non_name_tails_not_recorded(self, cvt_kb):
        expanded = expand_predicates(cvt_kb, ["a"], max_length=3)
        assert PredicatePath(("marriage", "person", "dob")) not in expanded.distinct_paths()
        # ...but name-tailed length-2 via pob is recorded.
        assert PredicatePath(("pob", "name")) in expanded.distinct_paths()

    def test_traversal_continues_through_unrecorded_paths(self, cvt_kb):
        """marriage -> person is discarded, but marriage -> person -> name
        must still be reachable through it."""
        expanded = expand_predicates(cvt_kb, ["a"], max_length=3)
        assert PredicatePath(("marriage", "person")) not in expanded.distinct_paths()
        assert PredicatePath(("marriage", "person", "name")) in expanded.distinct_paths()

    def test_only_seeds_expanded(self, cvt_kb):
        expanded = expand_predicates(cvt_kb, ["a"], max_length=3)
        assert set(expanded.subjects()) <= {"a"}
        assert expanded.objects("city", PredicatePath(("mayor", "name"))) == set()

    def test_seeds_missing_from_store_ignored(self, cvt_kb):
        expanded = expand_predicates(cvt_kb, ["ghost"], max_length=3)
        assert len(expanded) == 0

    def test_max_length_zero_rejected(self, cvt_kb):
        with pytest.raises(ValueError):
            expand_predicates(cvt_kb, ["a"], max_length=0)

    def test_paths_between_inverse_of_objects(self, cvt_kb):
        expanded = expand_predicates(cvt_kb, ["a"], max_length=3)
        for subject, path, obj in expanded.triples():
            assert path in expanded.paths_between(subject, obj)
            assert obj in expanded.objects(subject, path)

    def test_agrees_with_follow(self, cvt_kb):
        """Materialized expansion must equal on-the-fly traversal."""
        expanded = expand_predicates(cvt_kb, ["a", "city"], max_length=3)
        for subject, path, obj in expanded.triples():
            assert obj in follow(cvt_kb, subject, path)

    def test_custom_tail_whitelist(self, cvt_kb):
        expanded = expand_predicates(
            cvt_kb, ["a"], max_length=3, tail_predicates=frozenset({"dob"})
        )
        assert PredicatePath(("marriage", "person", "dob")) in expanded.distinct_paths()
        assert PredicatePath(("marriage", "person", "name")) not in expanded.distinct_paths()


class TestExpandedStore:
    def test_record_deduplicates(self):
        store = ExpandedStore(max_length=3)
        path = PredicatePath.single("p")
        store.record("s", path, "o")
        store.record("s", path, "o")
        assert len(store) == 1

    def test_value_count(self):
        store = ExpandedStore(max_length=3)
        path = PredicatePath.single("p")
        store.record("s", path, "o1")
        store.record("s", path, "o2")
        assert store.value_count("s", path) == 2

    def test_stats_split_direct_and_expanded(self):
        store = ExpandedStore(max_length=3)
        store.record("s", PredicatePath.single("p"), "o")
        store.record("s", PredicatePath(("p", "name")), "o2")
        stats = store.stats()
        assert stats["direct_paths"] == 1
        assert stats["expanded_paths"] == 1
        assert stats["spo_triples"] == 2

    def test_paths_of(self):
        store = ExpandedStore(max_length=3)
        store.record("s", PredicatePath.single("p"), "o")
        assert store.paths_of("s") == {PredicatePath.single("p")}
        assert store.paths_of("ghost") == set()


class TestExpansionOnCompiledKB:
    def test_spouse_reachable_on_freebase_like(self, suite):
        from tests.conftest import pick_entity

        person = pick_entity(suite.world, "person", "spouse")
        expanded = expand_predicates(suite.freebase.store, [person.node], max_length=3)
        path = PredicatePath(("marriage", "person", "name"))
        spouse_names = {make_literal(n) for n in suite.world.gold_values(person.node, "spouse")}
        assert expanded.objects(person.node, path) == spouse_names

    def test_expansion_counts_scale_with_seeds(self, suite):
        store = suite.freebase.store
        people = [e.node for e in suite.world.of_type("person")[:20]]
        small = expand_predicates(store, people[:5], max_length=3)
        large = expand_predicates(store, people, max_length=3)
        assert len(large) > len(small)
