"""Tests for the offline learner (Figure 3's right column)."""


from repro.core.learner import LearnerConfig, OfflineLearner
from repro.core.em import EMConfig
from repro.kb.paths import PredicatePath


class TestLearnedModel:
    def test_core_templates_learned(self, kbqa_fb):
        model = kbqa_fb.model
        for template in [
            "what is the population of $city ?",
            "how many people are there in $city ?",
            "when was $person born ?",
            "who is the wife of $person ?",
        ]:
            assert template in model, template

    def test_population_template_maps_to_population(self, kbqa_fb):
        best = kbqa_fb.model.best_path("how many people are there in $city ?")
        assert best is not None
        assert best[0] == PredicatePath.single("population")
        assert best[1] > 0.8

    def test_spouse_template_maps_to_cvt_path(self, kbqa_fb):
        best = kbqa_fb.model.best_path("who is the wife of $person ?")
        assert best is not None
        assert best[0] == PredicatePath(("marriage", "person", "name"))

    def test_ambiguous_template_is_distribution(self, kbqa_fb):
        """'how big is $city ?' is used for population (w=0.7) and area
        (w=0.3): the learned P(p|t) must spread mass over both."""
        dist = kbqa_fb.model.predicates_for("how big is $city ?")
        assert dist, "ambiguous template must be learned"
        population = dist.get(PredicatePath.single("population"), 0.0)
        area = dist.get(PredicatePath.single("area"), 0.0)
        assert population > 0.0 and area > 0.0
        assert population > area  # matches the generation weights

    def test_concept_variants_learned(self, kbqa_fb):
        """Conceptualization produces several templates per surface."""
        templates = set(kbqa_fb.model.templates())
        person_variant = "when was $person born ?"
        profession_variants = {
            f"when was ${p} born ?"
            for p in ("politician", "actor", "scientist", "musician", "author")
        }
        assert person_variant in templates
        assert profession_variants & templates

    def test_n_to_one_mapping(self, kbqa_fb):
        """The paper: templates-to-predicates is n:1 — many templates per
        predicate path (Table 12 reports thousands)."""
        model = kbqa_fb.model
        assert model.n_templates > 5 * model.n_predicates

    def test_dbpedia_model_uses_dbp_names(self, kbqa_dbp):
        best = kbqa_dbp.model.best_path("what is the population of $city ?")
        assert best is not None
        assert best[0] == PredicatePath.single("populationTotal")

    def test_dbpedia_spouse_is_two_hops(self, kbqa_dbp):
        best = kbqa_dbp.model.best_path("who is the wife of $person ?")
        assert best is not None
        assert best[0] == PredicatePath(("spouse", "name"))


class TestLearnerConfigurations:
    def test_no_expansion_drops_cvt_templates(self, suite):
        config = LearnerConfig(use_expansion=False, em=EMConfig(max_iterations=5))
        learner = OfflineLearner(suite.freebase, suite.conceptualizer, config)
        result = learner.learn(suite.corpus)
        assert result.expanded is None
        assert "who is the wife of $person ?" not in result.model
        # direct-literal templates still learned
        assert "what is the population of $city ?" in result.model

    def test_expansion_multiplies_coverage(self, suite, kbqa_fb):
        """Table 16's claim: expansion multiplies templates and predicates."""
        config = LearnerConfig(use_expansion=False, em=EMConfig(max_iterations=5))
        without = OfflineLearner(suite.freebase, suite.conceptualizer, config).learn(suite.corpus)
        with_exp = kbqa_fb.model
        assert with_exp.n_templates > 1.5 * without.model.n_templates
        assert with_exp.n_predicates > 1.3 * without.model.n_predicates

    def test_seed_entities_from_corpus(self, kbqa_fb, suite):
        """Sec 6.2's reduction: seeds are corpus entities, far fewer than
        the KB's full entity set."""
        n_seeds = kbqa_fb.learn_result.n_seed_entities
        assert 0 < n_seeds <= len(suite.world.entities)

    def test_em_ran_and_improved(self, kbqa_fb):
        lls = kbqa_fb.learn_result.em.log_likelihood
        assert len(lls) >= 2
        assert lls[-1] >= lls[0]

    def test_refinement_off_keeps_more_pairs(self, suite):
        base = LearnerConfig(em=EMConfig(max_iterations=3))
        no_refine = LearnerConfig(use_refinement=False, em=EMConfig(max_iterations=3))
        with_r = OfflineLearner(suite.freebase, suite.conceptualizer, base).learn(suite.corpus)
        without_r = OfflineLearner(suite.freebase, suite.conceptualizer, no_refine).learn(suite.corpus)
        assert without_r.n_observations >= with_r.n_observations
        assert with_r.extraction.refinement_rejections > 0
